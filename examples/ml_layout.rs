//! ML activation-layout conversion: NCHW <-> NHWC.
//!
//! Deep-learning frameworks constantly repack activation tensors between
//! channels-first (NCHW) and channels-last (NHWC) layouts — a rank-4
//! tensor transposition. With dim 0 fastest-varying, an NCHW activation
//! is stored as `[W, H, C, N]` and NHWC as `[C, W, H, N]`.
//!
//! ```text
//! cargo run -p ttlg-examples --release --example ml_layout
//! ```

use ttlg::{TransposeOptions, Transposer};
use ttlg_examples::describe_report;
use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

fn main() {
    // ResNet-ish activation: N=8, C=64, H=W=56.
    let (n, c, h, w) = (8usize, 64usize, 56usize, 56usize);

    // NCHW with dim0 fastest: extents [W, H, C, N].
    let nchw_shape = Shape::new(&[w, h, c, n]).unwrap();
    // NHWC: extents [C, W, H, N]; output dims (C,W,H,N) come from input
    // dims (C=2, W=0, H=1, N=3).
    let to_nhwc = Permutation::new(&[2, 0, 1, 3]).unwrap();

    let activations: DenseTensor<f64> = DenseTensor::iota(nchw_shape.clone());
    let t = Transposer::new_k40c();

    // NCHW -> NHWC.
    let plan_fwd = t
        .plan::<f64>(&nchw_shape, &to_nhwc, &TransposeOptions::default())
        .unwrap();
    let (nhwc, fwd_report) = t.execute(&plan_fwd, &activations).unwrap();
    println!("{}", describe_report("NCHW -> NHWC", &fwd_report));
    assert_eq!(nhwc.shape().extents(), &[c, w, h, n]);

    // Spot-check the semantics: element (n0, c0, y, x).
    let (n0, c0, y, x) = (3usize, 17usize, 30usize, 41usize);
    assert_eq!(
        activations.get(&[x, y, c0, n0]),
        nhwc.get(&[c0, x, y, n0]),
        "channel value must survive the repack"
    );

    // NHWC -> NCHW is the inverse permutation; a production framework
    // would cache both plans at graph-build time.
    let to_nchw = to_nhwc.inverse();
    let plan_bwd = t
        .plan::<f64>(nhwc.shape(), &to_nchw, &TransposeOptions::default())
        .unwrap();
    let (roundtrip, bwd_report) = t.execute(&plan_bwd, &nhwc).unwrap();
    println!("{}", describe_report("NHWC -> NCHW", &bwd_report));
    assert_eq!(
        roundtrip.data(),
        activations.data(),
        "roundtrip must be lossless"
    );

    // Cross-check the forward pass against the naive reference.
    let expect = reference::transpose_reference(&activations, &to_nhwc).unwrap();
    assert_eq!(nhwc.data(), expect.data());
    println!("layout conversion verified: OK");

    // Repacking is often done once per graph and reused every step; show
    // the amortization the paper's Fig. 12 studies.
    let single = 2.0 * activations.volume() as f64 * 8.0
        / (fwd_report.kernel_time_ns + fwd_report.plan_time_ns);
    println!(
        "bandwidth: first call {single:.1} GB/s, steady-state {:.1} GB/s",
        fwd_report.bandwidth_gbps
    );
}
