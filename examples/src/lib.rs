//! Shared helpers for the TTLG-rs examples (pretty-printing and small
//! demo utilities). The runnable examples live in this package's
//! `examples/` directory:
//!
//! * `quickstart` — plan + execute one transposition, print the report.
//! * `ttgt_contraction` — a TTGT tensor contraction (Transpose-Transpose-
//!   GEMM-Transpose) built on the queryable prediction API.
//! * `ml_layout` — NCHW <-> NHWC activation-layout conversion.
//! * `schema_tour` — drive every kernel schema and compare them.

use ttlg::TransposeReport;

/// Render a transpose report as a short human-readable block.
pub fn describe_report(label: &str, r: &TransposeReport) -> String {
    format!(
        "{label}\n  schema     : {}\n  kernel time: {:.2} us\n  bandwidth  : {:.1} GB/s\n  plan time  : {:.2} us\n  DRAM tx    : {} loads / {} stores\n",
        r.schema,
        r.kernel_time_ns / 1e3,
        r.bandwidth_gbps,
        r.plan_time_ns / 1e3,
        r.stats.dram_load_tx,
        r.stats.dram_store_tx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg::{TransposeOptions, Transposer};
    use ttlg_tensor::{DenseTensor, Permutation, Shape};

    #[test]
    fn describe_report_formats() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[16, 16]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let plan = t
            .plan::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let input: DenseTensor<f64> = DenseTensor::iota(shape);
        let (_, report) = t.execute(&plan, &input).unwrap();
        let s = describe_report("demo", &report);
        assert!(s.contains("schema"));
        assert!(s.contains("GB/s"));
    }
}
