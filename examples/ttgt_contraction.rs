//! TTGT tensor contraction: Transpose-Transpose-GEMM-Transpose.
//!
//! The paper's headline use case for the queryable performance model: a
//! tensor contraction `C[m,n] += A[...] * B[...]` is implemented by
//! transposing `A` and `B` into matrix layouts, running GEMM, and
//! transposing the result back. Several transpose layouts are usually
//! possible; the contraction planner queries TTLG's prediction API to
//! pick the cheapest one *without running anything*.
//!
//! The contraction here is `C[i,j] = sum_{k,l} A[k,i,l] * B[l,j,k]`:
//! both operands need a transposition before they are GEMM-ready.
//!
//! ```text
//! cargo run -p ttlg-examples --release --example ttgt_contraction
//! ```

use ttlg::{TransposeOptions, Transposer};
use ttlg_tensor::{DenseTensor, Permutation, Shape};

/// Plain sequential GEMM: `C[m,n] = sum_k A[m,k] * B[k,n]` on
/// dim-0-fastest matrices (`A` is `m` fast, `k` slow; etc.).
fn gemm(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for kk in 0..k {
        for nn in 0..n {
            let bkn = b[kk + nn * k];
            for mm in 0..m {
                c[mm + nn * m] += a[mm + kk * m] * bkn;
            }
        }
    }
}

/// Reference contraction, straight from the definition.
fn reference_contraction(
    a: &DenseTensor<f64>,
    b: &DenseTensor<f64>,
    ni: usize,
    nj: usize,
    nk: usize,
    nl: usize,
) -> Vec<f64> {
    let mut c = vec![0.0; ni * nj];
    for i in 0..ni {
        for j in 0..nj {
            let mut acc = 0.0;
            for k in 0..nk {
                for l in 0..nl {
                    acc += a.get(&[k, i, l]) * b.get(&[l, j, k]);
                }
            }
            c[i + j * ni] = acc;
        }
    }
    c
}

fn main() {
    let (ni, nj, nk, nl) = (48, 40, 24, 16);
    // A[k,i,l] (k fastest), B[l,j,k] (l fastest).
    let a: DenseTensor<f64> = DenseTensor::iota(Shape::new(&[nk, ni, nl]).unwrap());
    let b: DenseTensor<f64> = DenseTensor::iota(Shape::new(&[nl, nj, nk]).unwrap());

    let t = Transposer::new_k40c();

    // GEMM wants A as [i, (k,l)] (i fastest) and B as [(k,l), j].
    // A[k,i,l] -> A'[i,k,l]: output dims (i,k,l) from input (k,i,l).
    let perm_a = Permutation::new(&[1, 0, 2]).unwrap();
    // B[l,j,k] -> B'[k,l,j]: output dims (k,l,j) from input dims indexed
    // (l=0, j=1, k=2) -> [2, 0, 1].
    let perm_b = Permutation::new(&[2, 0, 1]).unwrap();

    // Query the performance model before committing (the paper's API).
    let cost_a = t.predict_transpose_ns::<f64>(a.shape(), &perm_a).unwrap();
    let cost_b = t.predict_transpose_ns::<f64>(b.shape(), &perm_b).unwrap();
    println!(
        "predicted transpose cost: A' {:.1} us, B' {:.1} us",
        cost_a / 1e3,
        cost_b / 1e3
    );

    // An alternative layout for A ([i,l,k]) also works if GEMM flips its
    // inner dims; ask the model which is cheaper.
    let alt_perm_a = Permutation::new(&[1, 2, 0]).unwrap();
    let alt_cost = t
        .predict_transpose_ns::<f64>(a.shape(), &alt_perm_a)
        .unwrap();
    println!(
        "layout choice for A: [i,k,l] {:.1} us vs [i,l,k] {:.1} us -> using {}",
        cost_a / 1e3,
        alt_cost / 1e3,
        if cost_a <= alt_cost {
            "[i,k,l]"
        } else {
            "[i,l,k]"
        }
    );

    // Execute the TTGT pipeline with the first layout.
    let opts = TransposeOptions::default();
    let plan_a = t.plan::<f64>(a.shape(), &perm_a, &opts).unwrap();
    let (a_t, ra) = t.execute(&plan_a, &a).unwrap();
    let plan_b = t.plan::<f64>(b.shape(), &perm_b, &opts).unwrap();
    let (b_t, rb) = t.execute(&plan_b, &b).unwrap();
    println!(
        "transposed A via {} ({:.1} GB/s), B via {} ({:.1} GB/s)",
        ra.schema, ra.bandwidth_gbps, rb.schema, rb.bandwidth_gbps
    );

    // GEMM: A' is [i, k*l] (i fastest), B' is [k*l, j].
    let mut c = vec![0.0f64; ni * nj];
    gemm(ni, nj, nk * nl, a_t.data(), b_t.data(), &mut c);

    // C is already [i, j]; a final transpose would be needed for a [j, i]
    // consumer — demonstrate the plan without running it.
    let plan_c = t
        .plan::<f64>(
            &Shape::new(&[ni, nj]).unwrap(),
            &Permutation::new(&[1, 0]).unwrap(),
            &opts,
        )
        .unwrap();
    println!(
        "final C transpose would use {} (predicted {:.1} us)",
        plan_c.schema(),
        plan_c.predicted_ns() / 1e3
    );

    // Verify against the direct contraction.
    let expect = reference_contraction(&a, &b, ni, nj, nk, nl);
    assert_eq!(c, expect, "TTGT result must match the direct contraction");
    println!("TTGT contraction verified against the direct loop: OK");
}
