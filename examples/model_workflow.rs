//! The offline performance-modeling workflow (paper Sec. V) end to end:
//! generate a dataset on the simulated device, fit the Table II
//! regressions, inspect the summary, persist the models, and plug them
//! into the planner.
//!
//! ```text
//! cargo run -p ttlg-examples --release --example model_workflow
//! ```

use std::sync::Arc;
use ttlg::{TransposeOptions, Transposer};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::persist;
use ttlg_perfmodel::predictor::TrainedPredictor;
use ttlg_perfmodel::train::{train_models, TrainConfig};
use ttlg_tensor::generator::DatasetConfig;
use ttlg_tensor::{DenseTensor, Permutation, Shape};

fn main() {
    let device = DeviceConfig::k40c();

    // 1. Train on a small dataset (bump these numbers for fidelity).
    let cfg = TrainConfig {
        dataset: DatasetConfig {
            ranks: vec![3, 4],
            volumes: vec![1 << 16, 1 << 18],
            max_perms_per_config: 4,
            seed: 7,
        },
        max_configs_per_case: 8,
        split_seed: 11,
    };
    println!("training Table II models...");
    let models = train_models::<f64>(&device, &cfg).expect("training succeeds");
    println!("{}", models.to_table());

    // 2. Persist and reload (plain-text format, no dependencies).
    let pair = persist::ModelPair {
        od: models.od.fit.model.clone(),
        oa: models.oa.fit.model.clone(),
    };
    let path = std::env::temp_dir().join("ttlg-models.txt");
    persist::save(&pair, &path).expect("writable temp dir");
    let reloaded = persist::load(&path).expect("readable").expect("parseable");
    println!("models persisted to {} and reloaded", path.display());

    // 3. Drive the planner with the trained predictor.
    let predictor = Arc::new(TrainedPredictor::from_models(
        reloaded.od,
        reloaded.oa,
        device.clone(),
    ));
    let t = Transposer::with_predictor(device, predictor);
    let shape = Shape::new(&[24, 18, 20, 12]).unwrap();
    let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
    let plan = t
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .unwrap();
    println!(
        "trained planner picked {} over {} candidates (predicted {:.1} us)",
        plan.schema(),
        plan.candidates_evaluated(),
        plan.predicted_ns() / 1e3
    );
    let input: DenseTensor<f64> = DenseTensor::iota(shape);
    let (_, report) = t.execute(&plan, &input).unwrap();
    println!(
        "executed at {:.1} GB/s (model was off by {:+.1}%)",
        report.bandwidth_gbps,
        (report.predicted_ns - report.kernel_time_ns) / report.kernel_time_ns * 100.0
    );

    // 4. The zero-training alternative: pretrained K40c coefficients.
    let pre = ttlg_perfmodel::predictor_k40c();
    println!(
        "pretrained predictor available: {}",
        ttlg::TimePredictor::name(&pre)
    );
}
