//! A tour of the four TTLG kernels plus the baselines on one problem
//! family: force each schema, run it, and compare against cuTT and the
//! naive kernel.
//!
//! ```text
//! cargo run -p ttlg-examples --release --example schema_tour
//! ```

use ttlg::{Schema, TransposeOptions, Transposer};
use ttlg_baselines::cutt::{CuttLibrary, CuttMode};
use ttlg_baselines::naive::NaiveTranspose;
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

fn run_forced(
    t: &Transposer,
    input: &DenseTensor<f64>,
    perm: &Permutation,
    schema: Schema,
) -> Option<f64> {
    let opts = TransposeOptions {
        forced_schema: Some(schema),
        ..Default::default()
    };
    let plan = t.plan::<f64>(input.shape(), perm, &opts).ok()?;
    let (out, report) = t.execute(&plan, input).ok()?;
    let expect = reference::transpose_reference(input, perm).expect("reference");
    assert_eq!(out.data(), expect.data(), "{schema} must be correct");
    Some(report.bandwidth_gbps)
}

fn tour(title: &str, extents: &[usize], perm: &[usize]) {
    println!("--- {title}: {extents:?} perm {perm:?} ---");
    let shape = Shape::new(extents).unwrap();
    let perm = Permutation::new(perm).unwrap();
    let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());
    let t = Transposer::new_k40c();

    // The planner's own pick.
    let plan = t
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .unwrap();
    let (_, auto) = t.execute(&plan, &input).unwrap();
    println!(
        "  planner pick : {:<22} {:>7.1} GB/s",
        format!("{}", auto.schema),
        auto.bandwidth_gbps
    );

    // Every schema that can run this problem.
    for schema in [
        Schema::FviMatchLarge,
        Schema::FviMatchSmall,
        Schema::OrthogonalDistinct,
        Schema::OrthogonalArbitrary,
        Schema::Naive,
    ] {
        if let Some(bw) = run_forced(&t, &input, &perm, schema) {
            println!(
                "  forced       : {:<22} {bw:>7.1} GB/s",
                format!("{schema}")
            );
        }
    }

    // Baselines.
    let cutt = CuttLibrary::new(DeviceConfig::k40c());
    let cplan = cutt.plan::<f64>(&shape, &perm, CuttMode::Measure);
    let (cout, crep) = cutt.execute(&cplan, &input);
    let expect = reference::transpose_reference(&input, &perm).unwrap();
    assert_eq!(cout.data(), expect.data());
    println!(
        "  cuTT measure : {:<22} {:>7.1} GB/s",
        cplan.label(),
        crep.bandwidth_gbps
    );
    let naive = NaiveTranspose::new(DeviceConfig::k40c());
    let (_, nrep) = naive.execute(&input, &perm);
    println!(
        "  naive        : {:<22} {:>7.1} GB/s",
        "d-nested-loop", nrep.bandwidth_gbps
    );
    println!();
}

fn main() {
    // Matching large FVI: direct copy territory.
    tour("FVI-Match-Large case", &[64, 16, 16, 4], &[0, 3, 2, 1]);
    // Matching small FVI: the b x b x N0 staging kernel.
    tour("FVI-Match-Small case", &[8, 16, 16, 16], &[0, 3, 2, 1]);
    // Non-matching, disjoint combined sets: the padded-tile kernel.
    tour("Orthogonal-Distinct case", &[16, 2, 32, 32], &[3, 2, 1, 0]);
    // Overlapping combined sets: the indirection-array kernel.
    tour(
        "Orthogonal-Arbitrary case",
        &[8, 2, 8, 8, 8],
        &[2, 1, 3, 0, 4],
    );
}
