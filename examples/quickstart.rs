//! Quickstart: transpose a 5D tensor with the model-driven planner and
//! print the paper-style report.
//!
//! ```text
//! cargo run -p ttlg-examples --release --example quickstart
//! ```

use ttlg::{TransposeOptions, Transposer};
use ttlg_examples::describe_report;
use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

fn main() {
    // A 5D tensor (dims 0 fastest-varying) and the permutation
    // [i0,i1,i2,i3,i4] => [i4,i1,i2,i0,i3] — the paper's Fig. 5 family.
    let shape = Shape::new(&[27, 27, 27, 27, 27]).expect("valid shape");
    let perm = Permutation::new(&[4, 1, 2, 0, 3]).expect("valid permutation");
    let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());

    // Plan once (taxonomy -> slice-size search -> kernel build), reuse as
    // often as needed.
    let transposer = Transposer::new_k40c();
    let plan = transposer
        .plan::<f64>(&shape, &perm, &TransposeOptions::default())
        .expect("plannable");
    println!(
        "planned schema {} over {} candidates (predicted {:.2} us)",
        plan.schema(),
        plan.candidates_evaluated(),
        plan.predicted_ns() / 1e3
    );

    let (output, report) = transposer.execute(&plan, &input).expect("executes");
    println!("{}", describe_report("quickstart transpose", &report));

    // Verify against the naive reference.
    let expect = reference::transpose_reference(&input, &perm).expect("reference");
    assert_eq!(
        output.data(),
        expect.data(),
        "kernel output must match the reference"
    );
    println!("verified against the naive reference: OK");

    // The queryable prediction interface (for higher-level libraries).
    let predicted = transposer
        .predict_transpose_ns::<f64>(&shape, &perm)
        .expect("predictable");
    println!(
        "queryable API predicts {:.2} us for this transposition",
        predicted / 1e3
    );
}
