//! A minimal blocking HTTP/1.1 client for loopback testing and the
//! gateway benchmark — keep-alive aware, std-only.
//!
//! This is deliberately not a general HTTP client: it speaks exactly
//! the subset the gateway emits (`Content-Length` framing, lowercase
//! header matching, no chunked encoding) so the bench harness and CI
//! smoke tests have zero external dependencies.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: HashMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Header lookup by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(|s| s.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).to_string()
    }
}

/// A keep-alive connection to the gateway.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connect with a default 30 s I/O timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issue one request and read the full response. Extra headers are
    /// sent verbatim; a body implies `Content-Length`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        let mut req = format!("{method} {path} HTTP/1.1\r\nhost: ttlg\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        if let Some(b) = body {
            req.push_str(&format!("content-length: {}\r\n", b.len()));
        }
        req.push_str("\r\n");
        self.stream.write_all(req.as_bytes())?;
        if let Some(b) = body {
            self.stream.write_all(b)?;
        }
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, &[], None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
        json: &str,
    ) -> std::io::Result<ClientResponse> {
        let mut hs: Vec<(&str, &str)> = vec![("content-type", "application/json")];
        hs.extend_from_slice(headers);
        self.request("POST", path, &hs, Some(json.as_bytes()))
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let head_end = loop {
            if let Some(pos) = find_terminator(&self.buf) {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut headers = HashMap::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}
