//! The TCP edge: a bounded accept/worker model over
//! `std::net::TcpListener` — no async runtime, no external crates.
//!
//! One accept thread hands each connection to its own handler thread
//! (bounded by [`GatewayConfig::max_connections`]; connections beyond
//! the cap receive an immediate 503 and are closed). Handler threads
//! run a keep-alive loop: read with a short timeout, feed the
//! incremental parser, dispatch complete requests to the [`Gateway`],
//! and write responses back — including pipelined requests that arrive
//! back-to-back in one segment.
//!
//! Shutdown is cooperative: [`ServerHandle::stop`] flips a flag, nudges
//! the accept loop awake with a loopback connect, stops the gateway's
//! scheduler (failing queued work explicitly), and joins the accept
//! thread. Handler threads notice the flag at their next read timeout.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ttlg_obs::{next_id, TraceContext};

use crate::gateway::Gateway;
use crate::http::{parse_request, HttpResponse};

/// An error produced at the edge, before any request was parsed. There
/// is no inbound trace context to honor, so a fresh root context and
/// request id are minted — every response path carries both headers.
fn edge_error(status: u16, message: &str) -> HttpResponse {
    HttpResponse::error(status, message)
        .with_header("x-request-id", format!("{:016x}", next_id()))
        .with_header(
            "traceparent",
            TraceContext::generate().traceparent(next_id()),
        )
}

/// How long a handler thread blocks in `read` before re-checking the
/// shutdown flag and idle deadline.
const READ_TICK: Duration = Duration::from_millis(100);

/// Running server; dropping it does NOT stop the server — call
/// [`stop`](Self::stop).
pub struct ServerHandle {
    addr: SocketAddr,
    gateway: Arc<Gateway>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (real port even when spawned on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway behind this listener.
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// Stop accepting, shut the gateway down, and join the accept
    /// thread. Idempotent.
    pub fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.gateway.stop();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
/// `gateway` until [`ServerHandle::stop`].
pub fn spawn(gateway: Arc<Gateway>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));

    let accept_gw = Arc::clone(&gateway);
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::Builder::new()
        .name("ttlg-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let cap = accept_gw.config().max_connections.max(1);
                if active.load(Ordering::SeqCst) >= cap {
                    accept_gw.metrics().connection_rejected();
                    let mut s = stream;
                    let _ =
                        s.write_all(&edge_error(503, "connection limit reached").serialize(false));
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let gw = Arc::clone(&accept_gw);
                let sd = Arc::clone(&accept_shutdown);
                let act = Arc::clone(&active);
                let spawned = std::thread::Builder::new()
                    .name("ttlg-conn".to_string())
                    .spawn(move || {
                        gw.metrics().connection_opened();
                        handle_connection(&gw, stream, &sd);
                        gw.metrics().connection_closed();
                        act.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }
        })?;

    Ok(ServerHandle {
        addr: bound,
        gateway,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// Keep-alive request loop for one connection.
fn handle_connection(gw: &Arc<Gateway>, mut stream: TcpStream, shutdown: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let limits = gw.config().limits;
    let idle_timeout = Duration::from_millis(gw.config().idle_timeout_ms.max(1));
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    // Set when the first byte of the request currently being assembled
    // arrived; cleared once that request is dispatched.
    let mut first_byte_at: Option<Instant> = None;

    loop {
        // Drain every complete request already buffered (pipelining).
        loop {
            match parse_request(&buf, &limits) {
                Ok(Some((req, consumed))) => {
                    buf.drain(..consumed);
                    let network_ns = first_byte_at
                        .take()
                        .map(|t| t.elapsed().as_nanos() as u64)
                        .unwrap_or(0);
                    if !buf.is_empty() {
                        // More pipelined bytes already buffered: the
                        // next request's clock starts now.
                        first_byte_at = Some(Instant::now());
                    }
                    let keep_alive = req.keep_alive;
                    let resp = gw.handle(&req, network_ns);
                    if stream.write_all(&resp.serialize(keep_alive)).is_err() {
                        return;
                    }
                    if !keep_alive {
                        return;
                    }
                    last_activity = Instant::now();
                }
                Ok(None) => break,
                Err(e) => {
                    gw.metrics().parse_error();
                    let resp = edge_error(e.status, &e.message);
                    let _ = stream.write_all(&resp.serialize(false));
                    return;
                }
            }
        }

        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if first_byte_at.is_none() {
                    first_byte_at = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if buf.is_empty() && last_activity.elapsed() > idle_timeout {
                    return; // idle keep-alive expiry
                }
                if !buf.is_empty() && last_activity.elapsed() > idle_timeout {
                    // A half-sent request that stalled: don't hold the
                    // connection (slow-loris guard).
                    let resp = edge_error(408, "request timed out");
                    let _ = stream.write_all(&resp.serialize(false));
                    return;
                }
            }
            Err(_) => return,
        }
    }
}
