//! Admission control: per-tenant token-bucket quotas and the explicit
//! shed decision.
//!
//! The gateway admits a request only after two gates pass:
//!
//! 1. **quota** — the tenant's token bucket ([`TokenBucket`]) has a
//!    token. Buckets refill continuously at `rate_per_sec` up to a
//!    `burst` cap, so a tenant can spike briefly but not sustain more
//!    than its configured rate;
//! 2. **queue** — the tenant's scheduler queue (see
//!    [`crate::scheduler`]) has room.
//!
//! Either failure is an explicit [`Shed`] carrying the HTTP 429
//! `Retry-After` hint: quota sheds report when the next token accrues,
//! queue sheds a fixed one-second backoff. Nothing is silently dropped —
//! the gateway counts every shed in `ttlg_gateway_shed_total`.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Priority class of a request, from the `x-ttlg-priority` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic; weighted ahead of batch.
    Interactive,
    /// Throughput traffic; served with the leftover weight.
    Batch,
}

impl Priority {
    /// Parse a header value. Unknown values are `None` (the gateway
    /// answers 400 rather than guessing).
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// Label for metrics and response bodies.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket was empty.
    QuotaExceeded,
    /// The tenant's bounded queue was full.
    QueueFull,
}

impl ShedReason {
    /// Label for `ttlg_gateway_shed_total{reason=...}`.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::QuotaExceeded => "quota",
            ShedReason::QueueFull => "queue",
        }
    }
}

/// A load-shed decision: HTTP 429 with this `Retry-After`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shed {
    /// Which gate refused the request.
    pub reason: ShedReason,
    /// Seconds the client should wait before retrying (>= 1).
    pub retry_after_secs: u64,
}

/// Quota configuration shared by every tenant.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Sustained admission rate per tenant, requests/second.
    pub rate_per_sec: f64,
    /// Burst capacity per tenant (bucket size), requests.
    pub burst: f64,
    /// Max tenant buckets tracked; beyond this the least-recently-seen
    /// bucket is recycled (an unbounded tenant map would itself be a
    /// memory-exhaustion vector).
    pub max_tenants: usize,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            rate_per_sec: 500.0,
            burst: 100.0,
            max_tenants: 1024,
        }
    }
}

/// One tenant's continuously-refilling token bucket.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    refilled_at: Instant,
    last_seen: Instant,
}

impl TokenBucket {
    fn full(cfg: &QuotaConfig, now: Instant) -> Self {
        TokenBucket {
            tokens: cfg.burst.max(1.0),
            refilled_at: now,
            last_seen: now,
        }
    }

    /// Refill for elapsed time, then try to take one token.
    fn try_take(&mut self, cfg: &QuotaConfig, now: Instant) -> Result<(), Shed> {
        let elapsed = now.duration_since(self.refilled_at).as_secs_f64();
        self.tokens = (self.tokens + elapsed * cfg.rate_per_sec).min(cfg.burst.max(1.0));
        self.refilled_at = now;
        self.last_seen = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            let secs = if cfg.rate_per_sec > 0.0 {
                (deficit / cfg.rate_per_sec).ceil().max(1.0)
            } else {
                // Rate zero: the bucket never refills; tell the client
                // to go away for a while.
                60.0
            };
            Err(Shed {
                reason: ShedReason::QuotaExceeded,
                retry_after_secs: secs as u64,
            })
        }
    }
}

/// Per-tenant quota enforcement. One mutex: the critical section is a
/// couple of float ops, contention is not on the execute path.
pub struct AdmissionController {
    cfg: QuotaConfig,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl AdmissionController {
    /// A controller with the given quota config.
    pub fn new(cfg: QuotaConfig) -> Self {
        AdmissionController {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// The configured quota.
    pub fn config(&self) -> &QuotaConfig {
        &self.cfg
    }

    /// Charge one request against `tenant`'s bucket.
    pub fn check_quota(&self, tenant: &str) -> Result<(), Shed> {
        self.check_quota_at(tenant, Instant::now())
    }

    /// [`Self::check_quota`] with an injected clock (deterministic tests).
    pub fn check_quota_at(&self, tenant: &str, now: Instant) -> Result<(), Shed> {
        let mut buckets = self.buckets.lock().expect("admission poisoned");
        if !buckets.contains_key(tenant) && buckets.len() >= self.cfg.max_tenants.max(1) {
            // Recycle the least-recently-seen bucket. A recycled tenant
            // that returns simply starts from a full bucket again.
            if let Some(stalest) = buckets
                .iter()
                .min_by_key(|(_, b)| b.last_seen)
                .map(|(k, _)| k.clone())
            {
                buckets.remove(&stalest);
            }
        }
        buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::full(&self.cfg, now))
            .try_take(&self.cfg, now)
    }

    /// Tenants currently tracked.
    pub fn tracked_tenants(&self) -> usize {
        self.buckets.lock().expect("admission poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(rate: f64, burst: f64) -> QuotaConfig {
        QuotaConfig {
            rate_per_sec: rate,
            burst,
            max_tenants: 4,
        }
    }

    #[test]
    fn burst_then_shed_then_refill() {
        let adm = AdmissionController::new(cfg(10.0, 3.0));
        let t0 = Instant::now();
        for _ in 0..3 {
            adm.check_quota_at("a", t0).unwrap();
        }
        let shed = adm.check_quota_at("a", t0).unwrap_err();
        assert_eq!(shed.reason, ShedReason::QuotaExceeded);
        assert_eq!(shed.retry_after_secs, 1, "ceil(deficit/rate) >= 1s");
        // 100 ms later one token has accrued.
        let t1 = t0 + Duration::from_millis(100);
        adm.check_quota_at("a", t1).unwrap();
        assert!(adm.check_quota_at("a", t1).is_err());
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let adm = AdmissionController::new(cfg(1.0, 1.0));
        let t0 = Instant::now();
        adm.check_quota_at("a", t0).unwrap();
        assert!(adm.check_quota_at("a", t0).is_err(), "a is out of tokens");
        adm.check_quota_at("b", t0).unwrap();
        assert_eq!(adm.tracked_tenants(), 2);
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let adm = AdmissionController::new(cfg(1000.0, 2.0));
        let t0 = Instant::now();
        adm.check_quota_at("a", t0).unwrap();
        // A long idle period refills to burst, not to rate * elapsed.
        let t1 = t0 + Duration::from_secs(3600);
        adm.check_quota_at("a", t1).unwrap();
        adm.check_quota_at("a", t1).unwrap();
        assert!(adm.check_quota_at("a", t1).is_err());
    }

    #[test]
    fn tenant_map_is_bounded() {
        let adm = AdmissionController::new(cfg(1.0, 1.0));
        let t0 = Instant::now();
        for (i, name) in ["a", "b", "c", "d", "e", "f"].iter().enumerate() {
            adm.check_quota_at(name, t0 + Duration::from_millis(i as u64))
                .unwrap();
        }
        assert!(adm.tracked_tenants() <= 4);
        // A recycled tenant comes back with a fresh (full) bucket.
        adm.check_quota_at("a", t0 + Duration::from_millis(10))
            .unwrap();
    }

    #[test]
    fn zero_rate_sheds_with_long_backoff() {
        let adm = AdmissionController::new(cfg(0.0, 1.0));
        let t0 = Instant::now();
        adm.check_quota_at("a", t0).unwrap();
        let shed = adm.check_quota_at("a", t0).unwrap_err();
        assert_eq!(shed.retry_after_secs, 60);
    }

    #[test]
    fn priority_parsing() {
        assert_eq!(Priority::parse("interactive"), Some(Priority::Interactive));
        assert_eq!(Priority::parse("batch"), Some(Priority::Batch));
        assert_eq!(Priority::parse("Urgent"), None);
        assert_eq!(Priority::Interactive.as_str(), "interactive");
    }
}
