//! Minimal HTTP/1.1 wire protocol: an incremental request parser and a
//! response serializer, both over plain byte buffers so they can be unit
//! tested without sockets.
//!
//! Scope is deliberately small — exactly what the gateway needs:
//!
//! * request line + headers + `Content-Length` bodies (no chunked
//!   transfer encoding: requests carrying `Transfer-Encoding` are
//!   rejected with 501);
//! * keep-alive semantics (HTTP/1.1 default-on, HTTP/1.0 default-off,
//!   `Connection: close`/`keep-alive` override);
//! * hard limits on header-section and body size, enforced *while*
//!   bytes arrive so an oversized request is rejected before it is
//!   buffered whole;
//! * pipelining: [`parse_request`] consumes exactly one request from the
//!   front of the buffer and reports how many bytes it used, so back-to-
//!   back requests in one TCP segment each parse cleanly.
//!
//! Malformed input is never a panic — every failure mode maps to an
//! [`HttpError`] with the status code the connection should answer with
//! before closing.

use std::collections::HashMap;

/// Parser limits. Both are enforced incrementally.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Max bytes in the request line + headers (the pre-body section).
    pub max_head_bytes: usize,
    /// Max bytes in a request body (`Content-Length` above this is
    /// rejected with 413 without waiting for the body).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// A fully parsed request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string, e.g. `/v1/transpose`.
    pub path: String,
    /// Raw query string (no leading `?`), empty if absent.
    pub query: String,
    /// Headers, names lowercased. Duplicate names keep the first value.
    pub headers: HashMap<String, String>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// Header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(|s| s.as_str())
    }

    /// Decode one `key=value` pair from the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// A protocol-level failure and the status the connection must answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code (400, 413, 431, 501, 505).
    pub status: u16,
    /// Human-readable reason, sent as the plain-text body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Try to parse one request from the front of `buf`.
///
/// * `Ok(Some((req, consumed)))` — a complete request; the caller must
///   drain `consumed` bytes from the buffer (pipelining support).
/// * `Ok(None)` — incomplete so far; read more bytes and retry. Limits
///   are already enforced: a buffer that *cannot* become a valid request
///   (oversized head, oversized declared body) errors immediately.
/// * `Err(e)` — protocol violation; answer `e.status` and close.
pub fn parse_request(
    buf: &[u8],
    limits: &HttpLimits,
) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    // Find the end of the head section.
    let head_end = match find_subslice(buf, b"\r\n\r\n") {
        Some(i) => i,
        None => {
            if buf.len() > limits.max_head_bytes {
                return Err(HttpError::new(
                    431,
                    format!("request head exceeds {} bytes", limits.max_head_bytes),
                ));
            }
            return Ok(None);
        }
    };
    if head_end + 4 > limits.max_head_bytes {
        return Err(HttpError::new(
            431,
            format!("request head exceeds {} bytes", limits.max_head_bytes),
        ));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, format!("malformed method {method:?}")));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => {
            return Err(HttpError::new(505, format!("unsupported version {v:?}")))
        }
        v => return Err(HttpError::new(400, format!("malformed version {v:?}"))),
    };
    if !target.starts_with('/') {
        return Err(HttpError::new(
            400,
            format!("request target must be origin-form, got {target:?}"),
        ));
    }

    let mut headers = HashMap::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        headers
            .entry(name.to_ascii_lowercase())
            .or_insert_with(|| value.trim().to_string());
    }
    if headers.contains_key("transfer-encoding") {
        return Err(HttpError::new(501, "transfer-encoding is not supported"));
    }

    let content_length = match headers.get("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::new(
            413,
            format!(
                "body of {content_length} bytes exceeds {}",
                limits.max_body_bytes
            ),
        ));
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None); // body still arriving
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    let keep_alive = match headers.get("connection").map(|s| s.to_ascii_lowercase()) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => http11,
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Some((
        HttpRequest {
            method: method.to_string(),
            path,
            query,
            headers,
            body,
            keep_alive,
        },
        body_start + content_length,
    )))
}

fn find_subslice(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A 200 with a JSON body.
    pub fn json(body: String) -> Self {
        HttpResponse {
            status: 200,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A 200 with a plain-text body.
    pub fn text(body: String) -> Self {
        HttpResponse {
            status: 200,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        HttpResponse {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: {
                let mut m: String = message.into();
                m.push('\n');
                m.into_bytes()
            },
        }
    }

    /// Override the status code (e.g. a JSON body on a 429).
    pub fn with_status(mut self, status: u16) -> Self {
        self.status = status;
        self
    }

    /// Attach a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Serialize for the wire. `keep_alive` picks the `Connection`
    /// header so the client sees exactly what the connection will do.
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Canonical reason phrases for the statuses the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::rng::StdRng;

    fn parse_ok(bytes: &[u8]) -> (HttpRequest, usize) {
        parse_request(bytes, &HttpLimits::default())
            .expect("no protocol error")
            .expect("complete request")
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let (req, used) = parse_ok(
            b"GET /v1/explain?extents=16,16&perm=1,0 HTTP/1.1\r\n\
              Host: localhost\r\nX-Ttlg-Tenant: acme\r\n\r\n",
        );
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/explain");
        assert_eq!(req.query_param("extents"), Some("16,16"));
        assert_eq!(req.query_param("perm"), Some("1,0"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.header("x-ttlg-tenant"), Some("acme"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(used, 89);
    }

    #[test]
    fn parses_post_with_body() {
        let (req, used) =
            parse_ok(b"POST /v1/transpose HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdEXTRA");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
        // Pipelining: EXTRA is not consumed.
        assert_eq!(used, 54);
    }

    #[test]
    fn connection_header_overrides_keep_alive_default() {
        let (req, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
        let (req, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(req.keep_alive);
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        let limits = HttpLimits::default();
        assert!(parse_request(b"GET / HT", &limits).unwrap().is_none());
        assert!(parse_request(b"GET / HTTP/1.1\r\n", &limits)
            .unwrap()
            .is_none());
        // Head complete but declared body still in flight.
        assert!(
            parse_request(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc", &limits)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn malformed_request_lines_are_400_not_panic() {
        let limits = HttpLimits::default();
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET relative HTTP/1.1\r\n\r\n",
            b"GET / FTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_request(bad, &limits).expect_err(&format!("{bad:?}"));
            assert_eq!(err.status, 400, "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn version_and_encoding_rejections() {
        let limits = HttpLimits::default();
        let err = parse_request(b"GET / HTTP/2.0\r\n\r\n", &limits).unwrap_err();
        assert_eq!(err.status, 505);
        let err = parse_request(
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            &limits,
        )
        .unwrap_err();
        assert_eq!(err.status, 501);
    }

    #[test]
    fn oversized_head_rejected_even_before_completion() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_body_bytes: 64,
        };
        // No terminator yet, but already larger than any legal head.
        let mut partial = b"GET / HTTP/1.1\r\nX-Junk: ".to_vec();
        partial.extend(std::iter::repeat_n(b'a', 100));
        let err = parse_request(&partial, &limits).unwrap_err();
        assert_eq!(err.status, 431);
        // Complete but over the limit.
        let mut complete = b"GET / HTTP/1.1\r\nX-Junk: ".to_vec();
        complete.extend(std::iter::repeat_n(b'a', 100));
        complete.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_request(&complete, &limits).unwrap_err().status, 431);
    }

    #[test]
    fn oversized_declared_body_rejected_without_waiting() {
        let limits = HttpLimits {
            max_head_bytes: 1024,
            max_body_bytes: 16,
        };
        // Only the head has arrived; the declared length already breaks
        // the limit, so reject now instead of buffering 1 MiB.
        let err = parse_request(
            b"POST / HTTP/1.1\r\ncontent-length: 1048576\r\n\r\n",
            &limits,
        )
        .unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/transpose HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n".to_vec();
        let limits = HttpLimits::default();
        let mut buf = wire;
        let mut paths = Vec::new();
        while let Some((req, used)) = parse_request(&buf, &limits).unwrap() {
            paths.push(req.path.clone());
            buf.drain(..used);
        }
        assert_eq!(paths, ["/healthz", "/v1/transpose", "/metrics"]);
        assert!(buf.is_empty());
    }

    /// Property test: a valid request parses to the same result no
    /// matter how the bytes are split across reads (TCP segmentation).
    #[test]
    fn split_reads_across_any_packet_boundary_parse_identically() {
        let wire = b"POST /v1/transpose?x=1 HTTP/1.1\r\nHost: h\r\nX-Ttlg-Tenant: t0\r\ncontent-length: 11\r\n\r\nhello world".to_vec();
        let limits = HttpLimits::default();
        let (want, want_used) = parse_ok(&wire);
        let mut rng = StdRng::seed_from_u64(0x7712);
        for _ in 0..200 {
            let mut buf = Vec::new();
            let mut fed = 0usize;
            let mut result = None;
            while fed < wire.len() {
                // Feed a random-sized chunk (1..=7 bytes).
                let chunk = 1 + (rng.next_u64() % 7) as usize;
                let end = (fed + chunk).min(wire.len());
                buf.extend_from_slice(&wire[fed..end]);
                fed = end;
                match parse_request(&buf, &limits).expect("never a protocol error") {
                    Some(r) => {
                        result = Some(r);
                        break;
                    }
                    None => continue,
                }
            }
            let (got, used) = result.expect("parsed by the time all bytes arrived");
            assert_eq!(got.method, want.method);
            assert_eq!(got.path, want.path);
            assert_eq!(got.query, want.query);
            assert_eq!(got.body, want.body);
            assert_eq!(got.headers, want.headers);
            assert_eq!(used, want_used);
        }
    }

    #[test]
    fn response_serializes_with_extra_headers() {
        let resp =
            HttpResponse::error(429, "slow down").with_header("retry-after", "2".to_string());
        let wire = String::from_utf8(resp.serialize(true)).unwrap();
        assert!(
            wire.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{wire}"
        );
        assert!(wire.contains("retry-after: 2\r\n"), "{wire}");
        assert!(wire.contains("connection: keep-alive\r\n"), "{wire}");
        assert!(wire.ends_with("slow down\n"), "{wire}");
        let close = String::from_utf8(HttpResponse::text("x".into()).serialize(false)).unwrap();
        assert!(close.contains("connection: close\r\n"), "{close}");
        assert!(close.contains("content-length: 1\r\n"), "{close}");
    }
}
