//! A minimal JSON value type with a recursive-descent parser and a
//! serializer — just enough for the gateway's request/response codecs,
//! keeping the workspace's no-external-dependencies discipline (the obs
//! crate already renders metrics JSON by hand; this module adds the
//! *parsing* side the network edge needs).
//!
//! Supported: objects, arrays, strings (with `\uXXXX` escapes), finite
//! numbers, booleans, null. Depth is capped so a hostile body of nested
//! `[[[[...` cannot blow the stack.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys, so serialization is deterministic).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field by name.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array of non-negative integers (the shape of a
    /// `{"extents": [...], "perm": [...]}` submit body).
    pub fn as_usize_array(&self) -> Option<Vec<usize>> {
        match self {
            Json::Arr(items) => items.iter().map(|v| v.as_usize()).collect(),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(out, "{}", *n as i64).unwrap();
                    } else {
                        write!(out, "{n}").unwrap();
                    }
                } else {
                    out.push_str("null"); // NaN/inf have no JSON spelling
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Build an object from `(key, value)` pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser failed at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(input).map_err(|e| JsonError {
        at: e.valid_up_to(),
        message: "not valid UTF-8".into(),
    })?;
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input was validated).
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err(format!("bad number {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_submit_body() {
        let body = br#"{"extents": [16, 8, 4], "perm": [2, 0, 1], "tenant": "acme"}"#;
        let v = parse(body).unwrap();
        assert_eq!(
            v.get("extents").unwrap().as_usize_array(),
            Some(vec![16, 8, 4])
        );
        assert_eq!(v.get("perm").unwrap().as_usize_array(), Some(vec![2, 0, 1]));
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("acme"));
        let rendered = v.render();
        assert_eq!(parse(rendered.as_bytes()).unwrap(), v);
    }

    #[test]
    fn parses_scalars_numbers_strings() {
        assert_eq!(parse(b"null").unwrap(), Json::Null);
        assert_eq!(parse(b"true").unwrap(), Json::Bool(true));
        assert_eq!(parse(b" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(br#""a\"bA\n""#).unwrap(), Json::Str("a\"bA\n".into()));
        assert_eq!(
            parse("\"héllo\"".as_bytes()).unwrap(),
            Json::Str("héllo".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"[1 2]",
            b"{\"a\" 1}",
            b"{\"a\":}",
            b"\"unterminated",
            b"tru",
            b"01x",
            b"[] trailing",
            b"\"bad \\q escape\"",
            b"\xff\xfe",
            b"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn depth_bomb_is_rejected_not_a_stack_overflow() {
        let mut bomb = Vec::new();
        bomb.extend(std::iter::repeat_n(b'[', 10_000));
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn usize_array_conversions_guard_against_floats_and_negatives() {
        assert_eq!(parse(b"[1, 2.5]").unwrap().as_usize_array(), None);
        assert_eq!(parse(b"[1, -2]").unwrap().as_usize_array(), None);
        assert_eq!(parse(b"[\"1\"]").unwrap().as_usize_array(), None);
        assert_eq!(parse(b"[]").unwrap().as_usize_array(), Some(vec![]));
    }

    #[test]
    fn render_is_deterministic_and_escaped() {
        let v = obj(vec![
            ("b", Json::Num(2.0)),
            ("a", Json::Str("x\"y".into())),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(v.render(), r#"{"a":"x\"y","b":2,"nan":null}"#);
    }
}
