//! `ttlg-serve` — the network-facing gateway for TTLG-rs.
//!
//! Turns the in-process [`TransposeService`](ttlg_runtime::TransposeService)
//! into a multi-tenant network service without pulling in an async
//! runtime or any external crate: a blocking HTTP/1.1 edge over
//! `std::net`, a router/scheduler split behind it, and explicit
//! admission control in between.
//!
//! The pieces, edge inward:
//!
//! * [`http`] — incremental HTTP/1.1 parser and response writer with
//!   hard size limits (oversize heads are 431, oversize bodies 413,
//!   malformed input 400 — never a panic, never unbounded buffering);
//! * [`json`] — a minimal JSON value type, parser (depth-capped) and
//!   deterministic serializer for the request/response bodies;
//! * [`server`] — bounded accept loop + per-connection keep-alive
//!   threads over `TcpListener`;
//! * [`admission`] — per-tenant token-bucket quotas and the explicit
//!   [`Shed`](admission::Shed) decision (HTTP 429 + `Retry-After`);
//! * [`scheduler`] — bounded per-tenant queues with class-weighted,
//!   tenant-fair dequeue feeding a fixed worker pool;
//! * [`gateway`] — the router: endpoint dispatch, request validation,
//!   the two admission gates, per-request network/queue/plan/execute
//!   phase attribution, and the `ttlg_gateway_*` metric families
//!   layered onto the service's Prometheus snapshot;
//! * [`client`] — a tiny blocking keep-alive client for loopback
//!   tests, the gateway benchmark, and CI smoke checks.
//!
//! Endpoints: `POST /v1/transpose`, `GET /v1/explain`, `GET /metrics`,
//! `GET /healthz`. Tenancy comes from the `x-ttlg-tenant` header,
//! priority class from `x-ttlg-priority: interactive|batch`.

pub mod admission;
pub mod client;
pub mod gateway;
pub mod http;
pub mod json;
pub mod scheduler;
pub mod server;

pub use admission::{AdmissionController, Priority, QuotaConfig, Shed, ShedReason};
pub use client::{ClientResponse, HttpClient};
pub use gateway::{Gateway, GatewayConfig, GatewayMetrics};
pub use http::{HttpLimits, HttpRequest, HttpResponse};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use server::{spawn, ServerHandle};

#[cfg(test)]
mod e2e {
    use super::*;
    use std::sync::Arc;
    use ttlg_runtime::TransposeService;

    fn serve(cfg: GatewayConfig) -> ServerHandle {
        let gw = Gateway::start(Arc::new(TransposeService::new_k40c()), cfg);
        server::spawn(gw, "127.0.0.1:0").expect("bind loopback")
    }

    const BODY: &str = r#"{"extents":[16,8,4],"perm":[2,0,1]}"#;

    #[test]
    fn keep_alive_round_trips_over_tcp() {
        let mut h = serve(GatewayConfig::default());
        let mut c = HttpClient::connect(h.addr()).unwrap();
        // Same connection, several requests.
        for _ in 0..3 {
            let r = c
                .post_json("/v1/transpose", &[("x-ttlg-tenant", "acme")], BODY)
                .unwrap();
            assert_eq!(r.status, 200, "{}", r.body_text());
            assert!(r.body_text().contains("\"phases\""));
        }
        let r = c.get("/healthz").unwrap();
        assert_eq!(r.status, 200);
        let r = c.get("/metrics").unwrap();
        assert_eq!(r.status, 200);
        let prom = r.body_text();
        assert!(prom.contains("ttlg_gateway_requests_total"));
        assert!(prom.contains("ttlg_gateway_connections_active"));
        h.stop();
    }

    #[test]
    fn concurrent_connections_are_served() {
        let mut h = serve(GatewayConfig::default());
        let addr = h.addr();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    for _ in 0..5 {
                        let r = c
                            .post_json("/v1/transpose", &[("x-ttlg-tenant", "many")], BODY)
                            .unwrap();
                        assert!(r.status == 200 || r.status == 429, "got {}", r.status);
                    }
                });
            }
        });
        h.stop();
    }

    /// The satellite-3 hammer: drive the gateway hard past its queue
    /// and quota bounds from many threads at once and prove the bounded
    /// queues never deadlock — every request gets *some* answer and the
    /// server still responds afterwards.
    #[test]
    fn shed_hammer_never_deadlocks() {
        let mut h = serve(GatewayConfig {
            workers: 2,
            queue_capacity: 2,
            quota: QuotaConfig {
                rate_per_sec: 50.0,
                burst: 5.0,
                max_tenants: 16,
            },
            ..GatewayConfig::default()
        });
        let addr = h.addr();
        let outcomes: Vec<(u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    s.spawn(move || {
                        let tenant = format!("t{}", i % 3);
                        let class = if i % 2 == 0 { "interactive" } else { "batch" };
                        let mut ok = 0u64;
                        let mut shed = 0u64;
                        let mut c = HttpClient::connect(addr).unwrap();
                        for _ in 0..20 {
                            let r = c
                                .post_json(
                                    "/v1/transpose",
                                    &[
                                        ("x-ttlg-tenant", tenant.as_str()),
                                        ("x-ttlg-priority", class),
                                    ],
                                    BODY,
                                )
                                .unwrap();
                            match r.status {
                                200 => ok += 1,
                                429 => {
                                    assert!(
                                        r.header("retry-after")
                                            .and_then(|v| v.parse::<u64>().ok())
                                            .is_some_and(|v| v >= 1),
                                        "429 without a usable Retry-After"
                                    );
                                    shed += 1;
                                }
                                other => panic!("unexpected status {other}"),
                            }
                        }
                        (ok, shed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total_ok: u64 = outcomes.iter().map(|(o, _)| o).sum();
        let total_shed: u64 = outcomes.iter().map(|(_, s)| s).sum();
        assert_eq!(total_ok + total_shed, 240, "every request was answered");
        assert!(total_ok > 0, "some requests were served");
        assert!(total_shed > 0, "overload actually triggered shedding");
        // The gateway is still alive and its shed counter is consistent.
        let mut c = HttpClient::connect(addr).unwrap();
        let prom = c.get("/metrics").unwrap().body_text();
        assert!(prom.contains("ttlg_gateway_shed_total"));
        assert_eq!(h.gateway().metrics().sheds(), total_shed);
        // Reconciliation: the per-tenant series sum to the totals, so
        // label-capped aggregation never loses requests.
        let series_sum = |family: &str| -> u64 {
            prom.lines()
                .filter(|l| l.starts_with(&format!("{family}{{")))
                .map(|l| {
                    l.rsplit(' ')
                        .next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or(0.0) as u64
                })
                .sum()
        };
        assert_eq!(
            series_sum("ttlg_gateway_tenant_shed_total"),
            total_shed,
            "tenant shed series sum to the shed total"
        );
        assert_eq!(
            series_sum("ttlg_gateway_tenant_admitted_total"),
            total_ok,
            "tenant admitted series sum to the served total"
        );
        h.stop();
    }

    /// Acceptance: a sampled request served over TCP yields its full
    /// span tree from `GET /v1/trace/:id`, with the trace context and
    /// request id echoed on the response.
    #[test]
    fn sampled_trace_is_queryable_over_tcp() {
        let mut h = serve(GatewayConfig::default());
        let mut c = HttpClient::connect(h.addr()).unwrap();
        let trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
        let tp = format!("00-{trace_id}-00f067aa0ba902b7-01");
        let r = c
            .post_json(
                "/v1/transpose",
                &[
                    ("x-ttlg-tenant", "acme"),
                    ("traceparent", tp.as_str()),
                    ("x-request-id", "e2e-1"),
                ],
                BODY,
            )
            .unwrap();
        assert_eq!(r.status, 200, "{}", r.body_text());
        assert_eq!(r.header("x-request-id"), Some("e2e-1"));
        assert!(
            r.header("traceparent")
                .is_some_and(|v| v.starts_with(&format!("00-{trace_id}-"))),
            "traceparent continues the inbound context"
        );

        let r = c.get(&format!("/v1/trace/{trace_id}")).unwrap();
        assert_eq!(r.status, 200, "{}", r.body_text());
        let body = r.body_text();
        let doc = json::parse(body.as_bytes()).unwrap();
        assert_eq!(doc.get("trace_id").and_then(|v| v.as_str()), Some(trace_id));
        assert_eq!(
            doc.get("request_id").and_then(|v| v.as_str()),
            Some("e2e-1")
        );
        let root = doc.get("root").expect("span tree present");
        assert_eq!(root.get("name").and_then(|v| v.as_str()), Some("request"));
        for needle in ["\"plan\"", "\"execute\"", "\"kernel\""] {
            assert!(body.contains(needle), "{needle} missing from {body}");
        }

        let r = c.get("/v1/traces?slowest=3").unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body_text().contains(trace_id));

        let r = c.get("/v1/alerts").unwrap();
        assert_eq!(r.status, 200);
        assert!(
            r.body_text().contains("prediction-drift"),
            "{}",
            r.body_text()
        );

        let prom = c.get("/metrics").unwrap().body_text();
        assert!(prom.contains("ttlg_trace_store_sampled_total"));
        h.stop();
    }

    #[test]
    fn stalled_request_gets_408_with_request_id() {
        use std::io::{Read, Write};
        let mut h = serve(GatewayConfig {
            idle_timeout_ms: 200,
            ..GatewayConfig::default()
        });
        let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"POST /v1/transpose HTTP/1.1\r\nhost: x\r\ncontent-length: 100\r\n\r\n{")
            .unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 408"), "{text}");
        assert!(text.contains("x-request-id:"), "{text}");
        assert!(text.contains("traceparent:"), "{text}");
        h.stop();
    }

    #[test]
    fn malformed_requests_get_400_over_tcp() {
        use std::io::{Read, Write};
        let mut h = serve(GatewayConfig::default());
        let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"BOGUS nonsense\r\n\r\n").unwrap();
        let mut resp = Vec::new();
        s.read_to_end(&mut resp).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        h.stop();
    }

    #[test]
    fn stop_is_clean_and_idempotent() {
        let mut h = serve(GatewayConfig::default());
        let addr = h.addr();
        let mut c = HttpClient::connect(addr).unwrap();
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        h.stop();
        h.stop();
        // New connections are refused (or reset) after stop.
        assert!(
            std::net::TcpStream::connect(addr)
                .map(|mut s| {
                    use std::io::{Read, Write};
                    let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
                    let mut buf = Vec::new();
                    s.read_to_end(&mut buf)
                        .map(|_| buf.is_empty())
                        .unwrap_or(true)
                })
                .unwrap_or(true),
            "stopped server must not answer"
        );
    }
}
