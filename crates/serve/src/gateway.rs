//! The gateway: routing, admission, scheduling, and metrics for the
//! network edge.
//!
//! A [`Gateway`] owns one [`TransposeService`] plus the machinery that
//! stands between it and the network:
//!
//! ```text
//!   connection threads (router)          scheduler workers
//!   ---------------------------          -----------------
//!   parse HTTP -> route                  weighted dequeue
//!     POST /v1/transpose                   -> input tensor (cached)
//!       validate problem                   -> service.submit_async_hooked
//!       quota gate      -> 429                (non-blocking; identical
//!       queue gate      -> 429                 in-flight problems coalesce)
//!       wait completion -> 200/500/503      completion hook
//!                                            -> span tree -> trace store
//!                                            -> complete slot
//!     GET /v1/explain   -> planner decision trace
//!     GET /v1/query_range -> range queries over the metrics history
//!     GET /metrics      -> Prometheus text (service + gateway)
//!     GET /healthz      -> liveness
//! ```
//!
//! Every admitted request carries a four-phase decomposition in its
//! response body — `network` (bytes-on-wire to parsed request), `queue`
//! (admission to dequeue), `plan` (cache fetch/build) and `execute`
//! (kernel) — the same attribution the trace ring records, extended to
//! the network edge.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ttlg::TransposeOptions;
use ttlg_obs::{
    clock_ns, eval_range, next_id, AlertEngine, AlertStatus, MetricKind, Sample, SampleReason,
    SpanNode, StoredTrace, TraceContext, TraceStore, TraceStoreConfig,
};
use ttlg_runtime::{
    AsyncOutcome, LatencyHistogram, TransposeRequest, TransposeService, HIST_BUCKETS,
};
use ttlg_tensor::{DenseTensor, Permutation, Shape};

use crate::admission::{AdmissionController, Priority, QuotaConfig, Shed, ShedReason};
use crate::http::{HttpLimits, HttpRequest, HttpResponse};
use crate::json::{self, obj, Json};
use crate::scheduler::{Scheduler, SchedulerConfig, SchedulerWorkers};

/// Gateway configuration: the edge, admission, and scheduling knobs in
/// one place.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Scheduler worker threads executing admitted requests.
    pub workers: usize,
    /// Per-tenant, per-class queue bound.
    pub queue_capacity: usize,
    /// Interactive items served per batch item under contention.
    pub interactive_weight: u32,
    /// Per-tenant token-bucket quota.
    pub quota: QuotaConfig,
    /// Hard cap on concurrent connections; excess get 503 and close.
    pub max_connections: usize,
    /// Largest tensor volume (elements) a request may ask for.
    pub max_elements: usize,
    /// HTTP parser limits (head/body size).
    pub limits: HttpLimits,
    /// How long a connection thread waits for its queued request to
    /// complete before answering 503.
    pub request_timeout_ms: u64,
    /// Keep-alive idle timeout before the server closes a connection.
    pub idle_timeout_ms: u64,
    /// Trace-store geometry and head-sampling rate.
    pub trace: TraceStoreConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            queue_capacity: 64,
            interactive_weight: 4,
            quota: QuotaConfig::default(),
            max_connections: 128,
            max_elements: 1 << 22,
            limits: HttpLimits::default(),
            request_timeout_ms: 30_000,
            idle_timeout_ms: 5_000,
            trace: TraceStoreConfig::default(),
        }
    }
}

/// Completion slot a connection thread waits on while the scheduler
/// executes its request.
struct CompletionSlot {
    state: Mutex<Option<HttpResponse>>,
    done: Condvar,
}

impl CompletionSlot {
    fn new() -> Arc<Self> {
        Arc::new(CompletionSlot {
            state: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn complete(&self, resp: HttpResponse) {
        let mut st = self.state.lock().expect("slot poisoned");
        if st.is_none() {
            *st = Some(resp);
            self.done.notify_all();
        }
    }

    fn wait(&self, timeout: Duration) -> Option<HttpResponse> {
        let mut st = self.state.lock().expect("slot poisoned");
        let deadline = Instant::now() + timeout;
        while st.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (g, _) = self
                .done
                .wait_timeout(st, left)
                .expect("slot condvar poisoned");
            st = g;
        }
        st.take()
    }
}

/// One admitted transpose request queued for a scheduler worker.
struct Job {
    tenant: String,
    class: Priority,
    extents: Vec<usize>,
    perm: Vec<usize>,
    network_ns: u64,
    enqueued: Instant,
    slot: Arc<CompletionSlot>,
    /// The W3C trace context this request runs under (inbound
    /// `traceparent`, or a fresh root).
    ctx: TraceContext,
    /// The request id echoed on the response.
    request_id: String,
}

/// Tenant label cardinality cap for per-tenant metric families; tenants
/// beyond this are folded into `_other` so the per-tenant series still
/// sum to the unlabelled totals.
const MAX_TENANT_LABELS: usize = 32;

/// The aggregation label for tenants past [`MAX_TENANT_LABELS`].
pub const OVERFLOW_TENANT: &str = "_other";

/// Counters and histograms for the `ttlg_gateway_*` families.
#[derive(Default)]
pub struct GatewayMetrics {
    /// Requests routed, by endpoint.
    transpose_total: AtomicU64,
    explain_total: AtomicU64,
    traces_total: AtomicU64,
    alerts_total: AtomicU64,
    query_total: AtomicU64,
    metrics_total: AtomicU64,
    healthz_total: AtomicU64,
    not_found_total: AtomicU64,
    /// Requests refused at the edge before routing (parse errors).
    parse_errors_total: AtomicU64,
    /// Sheds, by reason.
    shed_quota_total: AtomicU64,
    shed_queue_total: AtomicU64,
    /// Admitted requests that timed out waiting for completion.
    timeouts_total: AtomicU64,
    /// Connections accepted / currently open / refused at the cap.
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    connections_rejected_total: AtomicU64,
    /// Network phase (first byte to parsed request), and gateway queue
    /// phase (admission to dequeue).
    network_hist: LatencyHistogram,
    queue_hist: LatencyHistogram,
    /// Per-tenant admitted/shed counts (bounded label set).
    tenants: Mutex<HashMap<String, (u64, u64)>>,
}

impl GatewayMetrics {
    fn tenant_label(&self, tenant: &str) -> String {
        let tenants = self.tenants.lock().expect("tenant metrics poisoned");
        if tenants.contains_key(tenant) || tenants.len() < MAX_TENANT_LABELS {
            tenant.to_string()
        } else {
            OVERFLOW_TENANT.to_string()
        }
    }

    fn record_tenant(&self, tenant: &str, admitted: bool) {
        let label = self.tenant_label(tenant);
        let mut tenants = self.tenants.lock().expect("tenant metrics poisoned");
        let entry = tenants.entry(label).or_insert((0, 0));
        if admitted {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }

    /// Connection opened; pair with [`Self::connection_closed`].
    pub fn connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Connection closed.
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connection refused because the connection cap was reached.
    pub fn connection_rejected(&self) {
        self.connections_rejected_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A request that failed HTTP parsing.
    pub fn parse_error(&self) {
        self.parse_errors_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total sheds so far (both reasons).
    pub fn sheds(&self) -> u64 {
        self.shed_quota_total.load(Ordering::Relaxed)
            + self.shed_queue_total.load(Ordering::Relaxed)
    }

    /// Append the `ttlg_gateway_*` families to a snapshot.
    fn export_into(
        &self,
        snap: &mut ttlg_runtime::MetricsSnapshot,
        queue_depth: usize,
        queue_capacity: usize,
    ) {
        snap.push_metric(
            "ttlg_gateway_requests_total",
            "HTTP requests routed, by endpoint.",
            MetricKind::Counter,
            vec![
                Sample::labelled(
                    "endpoint",
                    "transpose",
                    self.transpose_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "explain",
                    self.explain_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "traces",
                    self.traces_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "alerts",
                    self.alerts_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "query",
                    self.query_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "metrics",
                    self.metrics_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "healthz",
                    self.healthz_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "not_found",
                    self.not_found_total.load(Ordering::Relaxed) as f64,
                ),
            ],
        );
        snap.push_metric(
            "ttlg_gateway_shed_total",
            "Requests load-shed with 429, by reason.",
            MetricKind::Counter,
            vec![
                Sample::labelled(
                    "reason",
                    ShedReason::QuotaExceeded.as_str(),
                    self.shed_quota_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "reason",
                    ShedReason::QueueFull.as_str(),
                    self.shed_queue_total.load(Ordering::Relaxed) as f64,
                ),
            ],
        );
        snap.push_metric(
            "ttlg_gateway_parse_errors_total",
            "Requests rejected by the HTTP parser.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.parse_errors_total.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_timeouts_total",
            "Admitted requests that timed out awaiting completion.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.timeouts_total.load(Ordering::Relaxed) as f64
            )],
        );
        snap.push_metric(
            "ttlg_gateway_connections_total",
            "TCP connections accepted.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.connections_total.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_connections_active",
            "TCP connections currently open.",
            MetricKind::Gauge,
            vec![Sample::plain(
                self.connections_active.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_connections_rejected_total",
            "Connections refused at the connection cap.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.connections_rejected_total.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_queue_depth",
            "Requests currently queued in the scheduler.",
            MetricKind::Gauge,
            vec![Sample::plain(queue_depth as f64)],
        );
        snap.push_metric(
            "ttlg_gateway_queue_capacity",
            "Per-tenant, per-class scheduler queue bound.",
            MetricKind::Gauge,
            vec![Sample::plain(queue_capacity as f64)],
        );
        {
            let tenants = self.tenants.lock().expect("tenant metrics poisoned");
            let mut admitted = Vec::new();
            let mut shed = Vec::new();
            let mut names: Vec<_> = tenants.keys().cloned().collect();
            names.sort();
            for name in names {
                let (a, s) = tenants[&name];
                admitted.push(Sample::labelled("tenant", &name, a as f64));
                shed.push(Sample::labelled("tenant", &name, s as f64));
            }
            snap.push_metric(
                "ttlg_gateway_tenant_admitted_total",
                "Requests admitted past both gates, by tenant.",
                MetricKind::Counter,
                admitted,
            );
            snap.push_metric(
                "ttlg_gateway_tenant_shed_total",
                "Requests shed, by tenant.",
                MetricKind::Counter,
                shed,
            );
        }
        let upper_bounds: Vec<f64> = (1..HIST_BUCKETS).map(|i| (1u64 << i) as f64).collect();
        for (hist, name, help) in [
            (
                &self.network_hist,
                "ttlg_gateway_network_us",
                "Network phase: first byte on the wire to parsed request, microseconds.",
            ),
            (
                &self.queue_hist,
                "ttlg_gateway_queue_us",
                "Gateway queue phase: admission to scheduler dequeue, microseconds.",
            ),
        ] {
            snap.push_histogram(
                name,
                help,
                Vec::new(),
                upper_bounds.clone(),
                hist.bucket_counts(),
                hist.total_ns() as f64 / 1e3,
            );
        }
    }
}

/// The network-facing gateway around a [`TransposeService`].
pub struct Gateway {
    cfg: GatewayConfig,
    service: Arc<TransposeService<f64>>,
    admission: AdmissionController,
    scheduler: Arc<Scheduler<Job>>,
    workers: Mutex<Option<SchedulerWorkers>>,
    metrics: GatewayMetrics,
    /// Sampled request span trees, bounded and queryable.
    traces: TraceStore,
    /// Declarative alert rules evaluated over the merged snapshot.
    alerts: AlertEngine,
    /// Input tensors cached by extents so repeated problems don't
    /// re-materialize (bounded; cleared wholesale when full).
    inputs: Mutex<HashMap<Vec<usize>, Arc<DenseTensor<f64>>>>,
}

const MAX_CACHED_INPUTS: usize = 32;

impl Gateway {
    /// Build a gateway around `service` and start its scheduler
    /// workers.
    pub fn start(service: Arc<TransposeService<f64>>, cfg: GatewayConfig) -> Arc<Gateway> {
        let scheduler = Arc::new(Scheduler::new(SchedulerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            interactive_weight: cfg.interactive_weight,
        }));
        let gw = Arc::new(Gateway {
            admission: AdmissionController::new(cfg.quota),
            scheduler: Arc::clone(&scheduler),
            workers: Mutex::new(None),
            metrics: GatewayMetrics::default(),
            traces: TraceStore::new(cfg.trace),
            alerts: AlertEngine::with_default_rules(),
            inputs: Mutex::new(HashMap::new()),
            service,
            cfg,
        });
        let worker_gw = Arc::clone(&gw);
        let workers = scheduler.start_workers(move |job| worker_gw.execute_job(job));
        *gw.workers.lock().expect("workers poisoned") = Some(workers);
        if gw.service.history_config().enabled {
            // Scrape the *merged* snapshot (service + gateway + trace
            // store) so the history covers the `ttlg_gateway_*`
            // families too, and seed the alert baselines from whatever
            // history survived a restart so the engine's first
            // evaluation doesn't treat all-time totals as fresh deltas.
            let scrape_gw = Arc::downgrade(&gw);
            gw.service.set_history_source(Some(Arc::new(move || {
                scrape_gw.upgrade().map(|gw| gw.merged_snapshot())
            })));
            gw.alerts.seed_from_history(gw.service.history());
            gw.service.start_history_scraper();
        }
        gw
    }

    /// The gateway's config.
    pub fn config(&self) -> &GatewayConfig {
        &self.cfg
    }

    /// The gateway's metric counters.
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.metrics
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<TransposeService<f64>> {
        &self.service
    }

    /// The sampled-trace store.
    pub fn trace_store(&self) -> &TraceStore {
        &self.traces
    }

    /// The alert engine.
    pub fn alerts(&self) -> &AlertEngine {
        &self.alerts
    }

    /// Advance the alert engine one evaluation over the current merged
    /// snapshot (service + gateway + trace store) and return the
    /// per-rule statuses.
    pub fn evaluate_alerts(&self) -> Vec<AlertStatus> {
        let snap = self.merged_snapshot();
        self.alerts
            .evaluate_with_history(&snap, Some(self.service.history()))
    }

    fn merged_snapshot(&self) -> ttlg_runtime::MetricsSnapshot {
        let mut snap = self.service.metrics_snapshot();
        self.metrics
            .export_into(&mut snap, self.scheduler.depth(), self.cfg.queue_capacity);
        self.traces.export_into(&mut snap);
        // Sampling loss must never be invisible: the trace-drop alert
        // rule sums over `ttlg_trace_dropped_total`, which the service
        // snapshot already carries for its trace-ring. Store evictions
        // join the same family as a second series rather than a
        // duplicate family (two `# TYPE` blocks would be invalid
        // exposition, and the rule only reads the first).
        let store = Sample::labelled("source", "trace-store", self.traces.evicted() as f64);
        if let Some(m) = snap
            .metrics
            .iter_mut()
            .find(|m| m.name == "ttlg_trace_dropped_total")
        {
            m.samples.push(store);
        } else {
            snap.push_metric(
                "ttlg_trace_dropped_total",
                "Sampled traces dropped before they could be read.",
                MetricKind::Counter,
                vec![store],
            );
        }
        snap
    }

    /// Stop the scheduler, fail anything still queued with 503, and
    /// join the workers. Idempotent.
    pub fn stop(&self) {
        self.service.stop_history_scraper();
        self.service.set_history_source(None);
        for job in self.scheduler.stop() {
            job.slot
                .complete(HttpResponse::error(503, "gateway shutting down"));
        }
        if let Some(mut workers) = self.workers.lock().expect("workers poisoned").take() {
            workers.join();
        }
    }

    /// Route one parsed request. `network_ns` is the edge's measured
    /// first-byte-to-parse time for this request.
    ///
    /// Every response — success, shed, or error — carries the request's
    /// `x-request-id` (inbound value echoed, or a fresh id) and a
    /// `traceparent` continuing the inbound W3C trace context (or a new
    /// root when none arrived).
    pub fn handle(&self, req: &HttpRequest, network_ns: u64) -> HttpResponse {
        self.metrics.network_hist.record_ns(network_ns);
        let ctx = req
            .header("traceparent")
            .and_then(TraceContext::parse)
            .unwrap_or_else(TraceContext::generate);
        let request_id = req
            .header("x-request-id")
            .and_then(sanitize_request_id)
            .unwrap_or_else(|| format!("{:016x}", next_id()));
        let resp = self.route(req, network_ns, ctx, &request_id);
        resp.with_header("x-request-id", request_id)
            .with_header("traceparent", ctx.traceparent(next_id()))
    }

    fn route(
        &self,
        req: &HttpRequest,
        network_ns: u64,
        ctx: TraceContext,
        request_id: &str,
    ) -> HttpResponse {
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/transpose") => {
                self.metrics.transpose_total.fetch_add(1, Ordering::Relaxed);
                self.handle_transpose(req, network_ns, ctx, request_id)
            }
            ("GET", "/v1/explain") => {
                self.metrics.explain_total.fetch_add(1, Ordering::Relaxed);
                self.handle_explain(req)
            }
            ("GET", "/v1/traces") => {
                self.metrics.traces_total.fetch_add(1, Ordering::Relaxed);
                self.handle_traces_list(req)
            }
            ("GET", "/v1/alerts") => {
                self.metrics.alerts_total.fetch_add(1, Ordering::Relaxed);
                self.handle_alerts()
            }
            ("GET", "/v1/query_range") => {
                self.metrics.query_total.fetch_add(1, Ordering::Relaxed);
                self.handle_query_range(req)
            }
            ("GET", "/metrics") => {
                self.metrics.metrics_total.fetch_add(1, Ordering::Relaxed);
                HttpResponse::text(self.export_prometheus())
            }
            ("GET", "/healthz") => {
                self.metrics.healthz_total.fetch_add(1, Ordering::Relaxed);
                self.handle_healthz()
            }
            ("GET", path) if path.starts_with("/v1/trace/") => {
                self.metrics.traces_total.fetch_add(1, Ordering::Relaxed);
                self.handle_trace_get(&path["/v1/trace/".len()..], req)
            }
            _ => {
                self.metrics.not_found_total.fetch_add(1, Ordering::Relaxed);
                HttpResponse::error(404, format!("no route for {} {}", req.method, req.path))
            }
        }
    }

    /// Prometheus text: the service's full snapshot plus the
    /// `ttlg_gateway_*`, trace-store, and alert families. Each scrape
    /// also advances the alert engine one evaluation, so the exported
    /// `ttlg_alerts_firing` gauges are fresh at scrape cadence.
    pub fn export_prometheus(&self) -> String {
        let mut snap = self.merged_snapshot();
        self.alerts
            .evaluate_with_history(&snap, Some(self.service.history()));
        self.alerts.export_into(&mut snap);
        ttlg_obs::prom::render(&snap)
    }

    /// Liveness gated on readiness: 503 while any critical alert rule
    /// is firing (as of the last evaluation), naming the firing rules.
    fn handle_healthz(&self) -> HttpResponse {
        let firing: Vec<Json> = self
            .alerts
            .status()
            .into_iter()
            .filter(|s| s.critical && s.state == ttlg_obs::AlertState::Firing)
            .map(|s| Json::Str(s.name.to_string()))
            .collect();
        if firing.is_empty() {
            HttpResponse::json(obj(vec![("ok", Json::Bool(true))]).render())
        } else {
            HttpResponse::json(
                obj(vec![
                    ("ok", Json::Bool(false)),
                    ("critical_alerts", Json::Arr(firing)),
                ])
                .render(),
            )
            .with_status(503)
        }
    }

    fn handle_transpose(
        &self,
        req: &HttpRequest,
        network_ns: u64,
        ctx: TraceContext,
        request_id: &str,
    ) -> HttpResponse {
        // -- validate ---------------------------------------------------
        let body = match json::parse(&req.body) {
            Ok(v) => v,
            Err(e) => return HttpResponse::error(400, format!("bad JSON: {e}")),
        };
        let extents = match body.get("extents").and_then(|v| v.as_usize_array()) {
            Some(e) if !e.is_empty() => e,
            _ => return HttpResponse::error(400, "body needs a non-empty \"extents\" array"),
        };
        let perm = match body.get("perm").and_then(|v| v.as_usize_array()) {
            Some(p) => p,
            None => return HttpResponse::error(400, "body needs a \"perm\" array"),
        };
        if Shape::new(&extents).is_err() {
            return HttpResponse::error(400, "invalid extents");
        }
        if perm.len() != extents.len() || Permutation::new(&perm).is_err() {
            return HttpResponse::error(400, "perm must be a permutation of 0..rank");
        }
        let volume: usize = extents.iter().product();
        if volume > self.cfg.max_elements {
            return HttpResponse::error(
                413,
                format!(
                    "tensor volume {volume} exceeds gateway limit {}",
                    self.cfg.max_elements
                ),
            );
        }

        // -- classify ---------------------------------------------------
        let tenant = sanitize_tenant(
            req.header("x-ttlg-tenant")
                .or_else(|| body.get("tenant").and_then(|t| t.as_str()))
                .unwrap_or("anonymous"),
        );
        let class = match req.header("x-ttlg-priority") {
            None => Priority::Interactive,
            Some(v) => match Priority::parse(v) {
                Some(c) => c,
                None => {
                    return HttpResponse::error(
                        400,
                        "x-ttlg-priority must be \"interactive\" or \"batch\"",
                    )
                }
            },
        };

        // -- admit ------------------------------------------------------
        if let Err(shed) = self.admission.check_quota(&tenant) {
            return self.shed_response(&tenant, shed, ctx, request_id, network_ns);
        }
        let slot = CompletionSlot::new();
        let job = Job {
            tenant: tenant.clone(),
            class,
            extents,
            perm,
            network_ns,
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
            ctx,
            request_id: request_id.to_string(),
        };
        if self.scheduler.try_enqueue(&tenant, class, job).is_err() {
            return self.shed_response(
                &tenant,
                Shed {
                    reason: ShedReason::QueueFull,
                    retry_after_secs: 1,
                },
                ctx,
                request_id,
                network_ns,
            );
        }
        self.metrics.record_tenant(&tenant, true);

        // -- wait -------------------------------------------------------
        match slot.wait(Duration::from_millis(self.cfg.request_timeout_ms)) {
            Some(resp) => resp,
            None => {
                self.metrics.timeouts_total.fetch_add(1, Ordering::Relaxed);
                HttpResponse::error(503, "request timed out in the gateway")
            }
        }
    }

    /// Scheduler-worker side: materialize the input and hand the
    /// request to the service's completion-queue executor. Returns
    /// without blocking — the worker is immediately free to drain the
    /// next job, so a slow execution never stalls the dequeue loop.
    /// Identical in-flight problems coalesce inside the executor onto
    /// one plan and one execution.
    fn execute_job(self: &Arc<Self>, job: Job) {
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        self.metrics.queue_hist.record_ns(queue_ns);
        let input = self.input_for(&job.extents);
        let perm = Permutation::new(&job.perm).expect("perm validated at admission");
        let request = TransposeRequest::new(input, perm);
        let gw = Arc::clone(self);
        self.service.submit_async_hooked(
            request,
            Box::new(move |out| gw.finish_job(job, queue_ns, out)),
        );
    }

    /// Completion-hook side of [`execute_job`], run on the executor's
    /// dispatcher thread once the request's (possibly shared) execution
    /// finishes: build the HTTP response, offer the finished span tree
    /// to the trace store, and complete the connection thread's slot.
    fn finish_job(&self, job: Job, queue_ns: u64, out: &Arc<AsyncOutcome<f64>>) {
        let trace = &out.trace;
        let result = &out.result;
        let spans = &out.spans;

        let total_ns = job.network_ns + queue_ns + trace.total_ns();
        let slo_target_ns = (self.service.slo_config().target_us * 1e3) as u64;
        let forced = if result.is_err() {
            Some(SampleReason::Error)
        } else if total_ns > slo_target_ns {
            Some(SampleReason::SloMiss)
        } else {
            None
        };
        // An unsampled inbound flag suppresses head sampling but never
        // tail forcing: errors and SLO misses are always kept.
        let reason = if job.ctx.sampled() || forced.is_some() {
            self.traces.sample_decision(job.ctx.trace_id, forced)
        } else {
            None
        };
        let sampled = reason.is_some();
        if let Some(reason) = reason {
            // Root starts when the first byte hit the wire: the service
            // spans anchor it (spans[0] is the plan span, which started
            // right after dequeue).
            let service_start = spans.first().map(|s| s.start_ns).unwrap_or_else(clock_ns);
            let root_start = service_start.saturating_sub(job.network_ns + queue_ns);
            let mut root = SpanNode::new("request", root_start, total_ns)
                .with_attr("tenant", job.tenant.clone())
                .with_attr("priority", job.class.as_str())
                .with_child(SpanNode::new("network", root_start, job.network_ns))
                .with_child(SpanNode::new(
                    "gateway-queue",
                    root_start + job.network_ns,
                    queue_ns,
                ));
            for span in spans {
                root = root.with_child(span.clone());
            }
            self.traces.insert(StoredTrace {
                trace_id: job.ctx.trace_id_hex(),
                request_id: job.request_id.clone(),
                tenant: job.tenant.clone(),
                status: if result.is_ok() { 200 } else { 500 },
                reason,
                start_ns: root_start,
                total_ns,
                root,
                decision: out.decision.as_ref().map(|d| d.render()),
            });
        }

        let resp = match result {
            Ok(r) => {
                let phases = obj(vec![
                    ("network_us", Json::Num(job.network_ns as f64 / 1e3)),
                    ("queue_us", Json::Num(queue_ns as f64 / 1e3)),
                    ("plan_us", Json::Num(trace.plan_fetch_ns as f64 / 1e3)),
                    (
                        "execute_us",
                        Json::Num((trace.queue_wait_ns + trace.execute_ns) as f64 / 1e3),
                    ),
                ]);
                HttpResponse::json(
                    obj(vec![
                        ("ok", Json::Bool(true)),
                        ("tenant", Json::Str(job.tenant.clone())),
                        ("priority", Json::Str(job.class.as_str().to_string())),
                        ("schema", Json::Str(r.report.schema.to_string())),
                        ("elements", Json::Num(r.output.volume() as f64)),
                        ("cache_hit", Json::Bool(trace.cache_hit == Some(true))),
                        ("warmed", Json::Bool(trace.warmed)),
                        ("coalesced", Json::Bool(out.coalesced)),
                        ("kernel_us", Json::Num(r.report.kernel_time_ns / 1e3)),
                        ("predicted_us", Json::Num(r.report.predicted_ns / 1e3)),
                        ("bandwidth_gbps", Json::Num(r.report.bandwidth_gbps)),
                        ("trace_id", Json::Str(job.ctx.trace_id_hex())),
                        ("request_id", Json::Str(job.request_id.clone())),
                        ("sampled", Json::Bool(sampled)),
                        ("phases", phases),
                    ])
                    .render(),
                )
            }
            Err(e) => HttpResponse::error(500, e.message.clone()),
        };
        job.slot.complete(resp);
    }

    fn shed_response(
        &self,
        tenant: &str,
        shed: Shed,
        ctx: TraceContext,
        request_id: &str,
        network_ns: u64,
    ) -> HttpResponse {
        match shed.reason {
            ShedReason::QuotaExceeded => self
                .metrics
                .shed_quota_total
                .fetch_add(1, Ordering::Relaxed),
            ShedReason::QueueFull => self
                .metrics
                .shed_queue_total
                .fetch_add(1, Ordering::Relaxed),
        };
        self.metrics.record_tenant(tenant, false);
        // Sheds are always trace-worthy: force-sample a minimal tree so
        // overload leaves evidence even at low head-sampling rates.
        if let Some(reason) = self
            .traces
            .sample_decision(ctx.trace_id, Some(SampleReason::Shed))
        {
            let now = clock_ns();
            let start = now.saturating_sub(network_ns);
            self.traces.insert(StoredTrace {
                trace_id: ctx.trace_id_hex(),
                request_id: request_id.to_string(),
                tenant: tenant.to_string(),
                status: 429,
                reason,
                start_ns: start,
                total_ns: network_ns,
                root: SpanNode::new("request", start, network_ns)
                    .with_attr("tenant", tenant)
                    .with_attr("shed", shed.reason.as_str())
                    .with_child(SpanNode::new("network", start, network_ns)),
                decision: None,
            });
        }
        HttpResponse::json(
            obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str("shed".to_string())),
                ("reason", Json::Str(shed.reason.as_str().to_string())),
                ("retry_after_secs", Json::Num(shed.retry_after_secs as f64)),
                ("trace_id", Json::Str(ctx.trace_id_hex())),
            ])
            .render(),
        )
        .with_status(429)
        .with_header("retry-after", shed.retry_after_secs.to_string())
    }

    /// `GET /v1/trace/:id` — one stored trace as a JSON span tree, or
    /// as the flame-style text rendering with `?format=flame`.
    fn handle_trace_get(&self, id: &str, req: &HttpRequest) -> HttpResponse {
        let Some(stored) = self.traces.get(id) else {
            return HttpResponse::error(404, format!("no sampled trace {id}"));
        };
        if req.query_param("format") == Some("flame") {
            let mut text = format!(
                "trace {} request {} tenant {} status {} reason {} total {:.1} us\n\n",
                stored.trace_id,
                stored.request_id,
                stored.tenant,
                stored.status,
                stored.reason.as_str(),
                stored.total_ns as f64 / 1e3,
            );
            text.push_str(&stored.root.render());
            if let Some(decision) = &stored.decision {
                text.push('\n');
                text.push_str(decision);
            }
            return HttpResponse::text(text);
        }
        HttpResponse::json(trace_json(&stored).render())
    }

    /// `GET /v1/traces?slowest=N` (or `?recent=N`) — stored-trace
    /// summaries, slowest-first or newest-first.
    fn handle_traces_list(&self, req: &HttpRequest) -> HttpResponse {
        let parse_n = |v: Option<&str>| v.and_then(|s| s.parse::<usize>().ok());
        let (traces, order) = if let Some(n) = parse_n(req.query_param("slowest")) {
            (self.traces.slowest(n), "slowest")
        } else {
            let n = parse_n(req.query_param("recent")).unwrap_or(10);
            (self.traces.recent(n), "recent")
        };
        let items: Vec<Json> = traces
            .iter()
            .map(|t| {
                obj(vec![
                    ("trace_id", Json::Str(t.trace_id.clone())),
                    ("request_id", Json::Str(t.request_id.clone())),
                    ("tenant", Json::Str(t.tenant.clone())),
                    ("status", Json::Num(t.status as f64)),
                    ("reason", Json::Str(t.reason.as_str().to_string())),
                    ("total_us", Json::Num(t.total_ns as f64 / 1e3)),
                    ("spans", Json::Num(t.root.span_count() as f64)),
                ])
            })
            .collect();
        HttpResponse::json(
            obj(vec![
                ("order", Json::Str(order.to_string())),
                ("resident", Json::Num(self.traces.resident() as f64)),
                ("sampled_total", Json::Num(self.traces.sampled() as f64)),
                ("traces", Json::Arr(items)),
            ])
            .render(),
        )
    }

    /// `GET /v1/alerts` — evaluate the rules now and report each rule's
    /// state machine.
    fn handle_alerts(&self) -> HttpResponse {
        let statuses = self.evaluate_alerts();
        let any_critical = statuses
            .iter()
            .any(|s| s.critical && s.state == ttlg_obs::AlertState::Firing);
        let rules: Vec<Json> = statuses
            .into_iter()
            .map(|s| {
                obj(vec![
                    ("rule", Json::Str(s.name.to_string())),
                    ("help", Json::Str(s.help.to_string())),
                    ("state", Json::Str(s.state.as_str().to_string())),
                    ("value", s.value.map(Json::Num).unwrap_or(Json::Null)),
                    ("threshold", Json::Num(s.threshold)),
                    ("critical", Json::Bool(s.critical)),
                    ("fired_count", Json::Num(s.fired_count as f64)),
                ])
            })
            .collect();
        HttpResponse::json(
            obj(vec![
                ("evaluations", Json::Num(self.alerts.evaluations() as f64)),
                ("any_critical_firing", Json::Bool(any_critical)),
                ("rules", Json::Arr(rules)),
            ])
            .render(),
        )
    }

    /// `GET /v1/query_range?series=EXPR&window=10m&step=10s` — evaluate
    /// a range query (`rate` / `increase` / `avg|max_over_time` /
    /// `quantile_over_time` / `sum`) over the service's retained
    /// metrics history and return the per-series point grids as JSON.
    fn handle_query_range(&self, req: &HttpRequest) -> HttpResponse {
        let Some(raw) = req.query_param("series") else {
            return HttpResponse::error(
                400,
                "query needs series=EXPR, e.g. series=rate(ttlg_requests_total)",
            );
        };
        let expr = percent_decode(raw);
        let window_ms = match req.query_param("window").map(parse_duration_ms) {
            None => 600_000,
            Some(Some(ms)) if ms > 0 => ms,
            _ => return HttpResponse::error(400, "window must be a duration like 500ms, 90s, 10m"),
        };
        let step_ms = match req.query_param("step").map(parse_duration_ms) {
            None => (window_ms / 60).max(1_000),
            Some(Some(ms)) if ms > 0 => ms,
            _ => return HttpResponse::error(400, "step must be a duration like 1s, 30s"),
        };
        if step_ms > window_ms {
            return HttpResponse::error(400, "step must not exceed window");
        }
        if window_ms / step_ms > 5_000 {
            return HttpResponse::error(400, "window/step asks for too many points (max 5000)");
        }
        let store = self.service.history();
        // Anchor the grid to the last scrape so queries stay stable
        // between scrapes; fall back to the wall clock before the first
        // scrape lands (the result is just empty series then).
        let end_ms = store.last_ingest_ms().unwrap_or_else(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0)
        });
        match eval_range(store, &expr, end_ms, window_ms, step_ms) {
            Ok(result) => {
                let series: Vec<Json> = result
                    .series
                    .iter()
                    .map(|s| {
                        obj(vec![
                            (
                                "labels",
                                Json::Obj(
                                    s.labels
                                        .iter()
                                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                        .collect(),
                                ),
                            ),
                            (
                                "points",
                                Json::Arr(
                                    s.points
                                        .iter()
                                        .map(|&(t, v)| {
                                            Json::Arr(vec![Json::Num(t as f64), Json::Num(v)])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                HttpResponse::json(
                    obj(vec![
                        ("query", Json::Str(expr)),
                        ("end_ms", Json::Num(end_ms as f64)),
                        ("window_ms", Json::Num(window_ms as f64)),
                        ("step_ms", Json::Num(step_ms as f64)),
                        ("series", Json::Arr(series)),
                    ])
                    .render(),
                )
            }
            Err(e) => HttpResponse::error(400, format!("bad query: {e}")),
        }
    }

    fn handle_explain(&self, req: &HttpRequest) -> HttpResponse {
        let extents = match req.query_param("extents").map(parse_usize_list) {
            Some(Some(e)) if !e.is_empty() => e,
            _ => return HttpResponse::error(400, "query needs extents=N,N,..."),
        };
        let perm = match req.query_param("perm").map(parse_usize_list) {
            Some(Some(p)) => p,
            _ => return HttpResponse::error(400, "query needs perm=N,N,..."),
        };
        let shape = match Shape::new(&extents) {
            Ok(s) => s,
            Err(e) => return HttpResponse::error(400, format!("invalid extents: {e}")),
        };
        let perm = match Permutation::new(&perm) {
            Ok(p) if p.rank() == shape.rank() => p,
            _ => return HttpResponse::error(400, "perm must be a permutation of 0..rank"),
        };
        match self.service.transposer().plan_traced::<f64>(
            &shape,
            &perm,
            &TransposeOptions::default(),
        ) {
            Ok((_, trace)) => HttpResponse::text(trace.render()),
            Err(e) => HttpResponse::error(422, format!("planning failed: {e}")),
        }
    }

    fn input_for(&self, extents: &[usize]) -> Arc<DenseTensor<f64>> {
        let mut inputs = self.inputs.lock().expect("input cache poisoned");
        if let Some(t) = inputs.get(extents) {
            return Arc::clone(t);
        }
        if inputs.len() >= MAX_CACHED_INPUTS {
            inputs.clear();
        }
        let shape = Shape::new(extents).expect("extents validated at admission");
        let t = Arc::new(DenseTensor::<f64>::iota(shape));
        inputs.insert(extents.to_vec(), Arc::clone(&t));
        t
    }
}

/// A stored trace as a JSON document (root span tree included).
fn trace_json(t: &StoredTrace) -> Json {
    obj(vec![
        ("trace_id", Json::Str(t.trace_id.clone())),
        ("request_id", Json::Str(t.request_id.clone())),
        ("tenant", Json::Str(t.tenant.clone())),
        ("status", Json::Num(t.status as f64)),
        ("reason", Json::Str(t.reason.as_str().to_string())),
        ("total_us", Json::Num(t.total_ns as f64 / 1e3)),
        ("root", span_json(&t.root)),
        (
            "decision",
            t.decision
                .as_ref()
                .map(|d| Json::Str(d.clone()))
                .unwrap_or(Json::Null),
        ),
    ])
}

/// One span node (recursive) as JSON.
fn span_json(s: &SpanNode) -> Json {
    obj(vec![
        ("name", Json::Str(s.name.clone())),
        ("start_ns", Json::Num(s.start_ns as f64)),
        ("duration_us", Json::Num(s.duration_ns as f64 / 1e3)),
        (
            "attrs",
            Json::Obj(
                s.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ),
        (
            "children",
            Json::Arr(s.children.iter().map(span_json).collect()),
        ),
    ])
}

/// Accept a client-supplied request id only if it is header-safe:
/// visible ASCII, no separators that could smuggle header lines, at
/// most 128 chars.
fn sanitize_request_id(raw: &str) -> Option<String> {
    let ok = !raw.is_empty()
        && raw.len() <= 128
        && raw
            .chars()
            .all(|c| c.is_ascii_graphic() && c != '"' && c != ',');
    ok.then(|| raw.to_string())
}

/// Clamp a tenant id to a safe label: ASCII alphanumerics, `-`, `_`,
/// `.`, at most 64 chars; anything else becomes `invalid`.
fn sanitize_tenant(raw: &str) -> String {
    let ok = !raw.is_empty()
        && raw.len() <= 64
        && raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        raw.to_string()
    } else {
        "invalid".to_string()
    }
}

/// Parse `"500ms"` / `"90s"` / `"10m"` / `"4h"` into milliseconds;
/// bare numbers are seconds.
fn parse_duration_ms(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, scale) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60_000)
    } else if let Some(n) = s.strip_suffix('h') {
        (n, 3_600_000)
    } else {
        (s, 1_000)
    };
    let v: f64 = num.trim().parse().ok()?;
    (v.is_finite() && v >= 0.0).then_some((v * scale as f64) as u64)
}

/// Minimal percent-decoding for query expressions (`%7B` → `{`, `+` →
/// space); malformed escapes pass through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse `"16,8,4"` into `[16, 8, 4]`.
fn parse_usize_list(s: &str) -> Option<Vec<usize>> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;
    use ttlg::Transposer;
    use ttlg_runtime::{RuntimeConfig, SloConfig};

    fn gateway(cfg: GatewayConfig) -> Arc<Gateway> {
        Gateway::start(Arc::new(TransposeService::new_k40c()), cfg)
    }

    fn header<'a>(resp: &'a HttpResponse, name: &str) -> Option<&'a str> {
        resp.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn post_transpose(body: &str, headers: &[(&str, &str)]) -> HttpRequest {
        let mut raw = format!(
            "POST /v1/transpose HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            raw.push_str(&format!("{k}: {v}\r\n"));
        }
        raw.push_str("\r\n");
        raw.push_str(body);
        parse_request(raw.as_bytes(), &HttpLimits::default())
            .unwrap()
            .unwrap()
            .0
    }

    fn get(path: &str) -> HttpRequest {
        let raw = format!("GET {path} HTTP/1.1\r\nhost: x\r\n\r\n");
        parse_request(raw.as_bytes(), &HttpLimits::default())
            .unwrap()
            .unwrap()
            .0
    }

    #[test]
    fn transpose_round_trip_reports_phases() {
        let gw = gateway(GatewayConfig::default());
        let req = post_transpose(r#"{"extents":[16,8,4],"perm":[2,0,1]}"#, &[]);
        let resp = gw.handle(&req, 1_000);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let body = json::parse(&resp.body).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(body.get("elements").and_then(|v| v.as_usize()), Some(512));
        let phases = body.get("phases").expect("phases present");
        for key in ["network_us", "queue_us", "plan_us", "execute_us"] {
            assert!(phases.get(key).and_then(|v| v.as_f64()).is_some(), "{key}");
        }
        // A lone request has nothing to coalesce with, but the field is
        // always present so clients can tell shared executions apart.
        assert_eq!(body.get("coalesced"), Some(&Json::Bool(false)));
        gw.stop();
    }

    /// Duplicate identical problems pushed through the gateway while
    /// the async workers are saturated share one execution: the service
    /// reports fewer executions than requests and the coalesced counter
    /// makes up the difference.
    #[test]
    fn gateway_coalesces_duplicate_inflight_requests() {
        let cfg = GatewayConfig {
            workers: 2,
            queue_capacity: 256,
            quota: QuotaConfig {
                rate_per_sec: 100_000.0,
                burst: 100_000.0,
                ..QuotaConfig::default()
            },
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        const CLIENTS: usize = 8;
        const PER_CLIENT: usize = 16;
        std::thread::scope(|s| {
            for _ in 0..CLIENTS {
                let gw = Arc::clone(&gw);
                s.spawn(move || {
                    for _ in 0..PER_CLIENT {
                        let req = post_transpose(r#"{"extents":[32,16,8],"perm":[2,0,1]}"#, &[]);
                        let resp = gw.handle(&req, 500);
                        assert_eq!(resp.status, 200);
                        let body = json::parse(&resp.body).unwrap();
                        assert!(body.get("coalesced").is_some());
                    }
                });
            }
        });
        let svc = gw.service();
        let total = (CLIENTS * PER_CLIENT) as u64;
        assert_eq!(svc.metrics().total_requests(), total);
        let stats = svc.async_stats().expect("async executor started");
        assert_eq!(stats.submitted, total);
        assert_eq!(stats.executed + stats.coalesced, total);
        assert_eq!(svc.metrics().coalesced_requests(), stats.coalesced);
        // All 128 requests are the same problem on the same cached
        // input, so every overlap in flight coalesces.
        assert!(
            stats.executed < total,
            "expected some coalescing, executed={} of {}",
            stats.executed,
            total
        );
        let prom = gw.export_prometheus();
        assert!(prom.contains("# TYPE ttlg_coalesced_requests_total counter"));
        gw.stop();
    }

    #[test]
    fn malformed_bodies_get_400_not_500() {
        let gw = gateway(GatewayConfig::default());
        for body in [
            "not json",
            r#"{"perm":[0]}"#,
            r#"{"extents":[4,4]}"#,
            r#"{"extents":[4,4],"perm":[0,0]}"#,
            r#"{"extents":[4,4],"perm":[0]}"#,
            r#"{"extents":[],"perm":[]}"#,
            r#"{"extents":[0,4],"perm":[1,0]}"#,
        ] {
            let resp = gw.handle(&post_transpose(body, &[]), 0);
            assert_eq!(resp.status, 400, "body {body:?}");
        }
        gw.stop();
    }

    #[test]
    fn oversized_volume_gets_413() {
        let gw = gateway(GatewayConfig {
            max_elements: 100,
            ..GatewayConfig::default()
        });
        let resp = gw.handle(
            &post_transpose(r#"{"extents":[16,16],"perm":[1,0]}"#, &[]),
            0,
        );
        assert_eq!(resp.status, 413);
        gw.stop();
    }

    #[test]
    fn quota_exhaustion_sheds_with_retry_after() {
        let gw = gateway(GatewayConfig {
            quota: QuotaConfig {
                rate_per_sec: 0.001,
                burst: 2.0,
                max_tenants: 8,
            },
            ..GatewayConfig::default()
        });
        let hdrs = [("x-ttlg-tenant", "acme")];
        for _ in 0..2 {
            let resp = gw.handle(
                &post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &hdrs),
                0,
            );
            assert_eq!(resp.status, 200);
        }
        let resp = gw.handle(
            &post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &hdrs),
            0,
        );
        assert_eq!(resp.status, 429);
        let retry = resp
            .headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .map(|(_, v)| v.clone())
            .expect("Retry-After present");
        assert!(retry.parse::<u64>().unwrap() >= 1);
        let body = json::parse(&resp.body).unwrap();
        assert_eq!(body.get("reason").and_then(|v| v.as_str()), Some("quota"));
        assert_eq!(gw.metrics().sheds(), 1);
        // Another tenant is unaffected.
        let resp = gw.handle(
            &post_transpose(
                r#"{"extents":[8,8],"perm":[1,0]}"#,
                &[("x-ttlg-tenant", "globex")],
            ),
            0,
        );
        assert_eq!(resp.status, 200);
        gw.stop();
    }

    #[test]
    fn unknown_priority_is_rejected() {
        let gw = gateway(GatewayConfig::default());
        let resp = gw.handle(
            &post_transpose(
                r#"{"extents":[8,8],"perm":[1,0]}"#,
                &[("x-ttlg-priority", "urgent")],
            ),
            0,
        );
        assert_eq!(resp.status, 400);
        gw.stop();
    }

    #[test]
    fn explain_and_healthz_and_metrics_routes() {
        let gw = gateway(GatewayConfig::default());
        let resp = gw.handle(&get("/healthz"), 0);
        assert_eq!(resp.status, 200);

        let resp = gw.handle(&get("/v1/explain?extents=16,8,4&perm=2,0,1"), 0);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        assert!(
            text.contains("decision trace"),
            "decision trace rendered: {text}"
        );

        let resp = gw.handle(&get("/v1/explain?extents=16,8&perm=0"), 0);
        assert_eq!(resp.status, 400);

        // A transpose first so gateway counters are non-zero.
        gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
        let resp = gw.handle(&get("/metrics"), 0);
        assert_eq!(resp.status, 200);
        let prom = String::from_utf8_lossy(&resp.body).to_string();
        for family in [
            "ttlg_gateway_requests_total",
            "ttlg_gateway_shed_total",
            "ttlg_gateway_queue_depth",
            "ttlg_gateway_queue_capacity",
            "ttlg_gateway_network_us",
            "ttlg_gateway_queue_us",
            "ttlg_requests_total",
            "ttlg_cache_pinned_plans",
            "ttlg_trace_store_offered_total",
            "ttlg_trace_store_sampled_total",
            "ttlg_trace_store_evicted_total",
            "ttlg_trace_dropped_total",
            "ttlg_alerts_firing",
        ] {
            assert!(prom.contains(family), "{family} missing from:\n{prom}");
        }
        let resp = gw.handle(&get("/nope"), 0);
        assert_eq!(resp.status, 404);
        gw.stop();
    }

    #[test]
    fn traceparent_is_honored_and_trace_is_queryable() {
        let gw = gateway(GatewayConfig::default());
        let trace_id = "0123456789abcdef0123456789abcdef";
        let tp = format!("00-{trace_id}-00f067aa0ba902b7-01");
        let req = post_transpose(
            r#"{"extents":[16,8,4],"perm":[2,0,1]}"#,
            &[("traceparent", tp.as_str()), ("x-request-id", "req-42")],
        );
        let resp = gw.handle(&req, 1_000);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(header(&resp, "x-request-id"), Some("req-42"));
        let echoed = header(&resp, "traceparent").expect("traceparent echoed");
        assert!(
            echoed.starts_with(&format!("00-{trace_id}-")),
            "echo continues the inbound trace: {echoed}"
        );
        let body = json::parse(&resp.body).unwrap();
        assert_eq!(
            body.get("trace_id").and_then(|v| v.as_str()),
            Some(trace_id)
        );
        assert_eq!(body.get("sampled"), Some(&Json::Bool(true)));

        // The stored trace comes back as a full span tree.
        let resp = gw.handle(&get(&format!("/v1/trace/{trace_id}")), 0);
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(
            doc.get("request_id").and_then(|v| v.as_str()),
            Some("req-42")
        );
        let root = doc.get("root").expect("root span present");
        assert_eq!(root.get("name").and_then(|v| v.as_str()), Some("request"));
        let children: Vec<String> = match root.get("children") {
            Some(Json::Arr(c)) => c
                .iter()
                .filter_map(|s| s.get("name").and_then(|v| v.as_str()).map(String::from))
                .collect(),
            _ => panic!("root has children"),
        };
        for name in ["network", "gateway-queue", "plan", "queue-wait", "execute"] {
            assert!(
                children.contains(&name.to_string()),
                "{name} in {children:?}"
            );
        }

        // The flame rendering names the deepest spans.
        let resp = gw.handle(&get(&format!("/v1/trace/{trace_id}?format=flame")), 0);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        for needle in ["request", "alg3-sweep", "kernel", "decision trace"] {
            assert!(text.contains(needle), "{needle} missing from:\n{text}");
        }

        // Unknown ids are 404, and the list endpoint sees the trace.
        assert_eq!(gw.handle(&get("/v1/trace/feedbeef"), 0).status, 404);
        let resp = gw.handle(&get("/v1/traces?slowest=5"), 0);
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains(trace_id));
        gw.stop();
    }

    #[test]
    fn unsampled_inbound_flag_suppresses_head_sampling() {
        // A huge SLO target keeps tail forcing out of the picture.
        let svc = TransposeService::with_config(
            Transposer::new_k40c(),
            RuntimeConfig {
                slo: SloConfig {
                    target_us: 1e12,
                    ..SloConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        let gw = Gateway::start(Arc::new(svc), GatewayConfig::default());
        let trace_id = "fedcba9876543210fedcba9876543210";
        let tp = format!("00-{trace_id}-00f067aa0ba902b7-00");
        let req = post_transpose(
            r#"{"extents":[8,8],"perm":[1,0]}"#,
            &[("traceparent", tp.as_str())],
        );
        let resp = gw.handle(&req, 0);
        assert_eq!(resp.status, 200);
        let body = json::parse(&resp.body).unwrap();
        assert_eq!(body.get("sampled"), Some(&Json::Bool(false)));
        assert_eq!(
            gw.handle(&get(&format!("/v1/trace/{trace_id}")), 0).status,
            404
        );
        gw.stop();
    }

    #[test]
    fn sheds_are_force_sampled() {
        let gw = gateway(GatewayConfig {
            quota: QuotaConfig {
                rate_per_sec: 0.001,
                burst: 1.0,
                max_tenants: 8,
            },
            ..GatewayConfig::default()
        });
        let trace_id = "abcdefabcdefabcdefabcdefabcdef01";
        let hdrs_body = r#"{"extents":[8,8],"perm":[1,0]}"#;
        assert_eq!(
            gw.handle(&post_transpose(hdrs_body, &[("x-ttlg-tenant", "acme")]), 0)
                .status,
            200
        );
        let tp = format!("00-{trace_id}-00f067aa0ba902b7-01");
        let resp = gw.handle(
            &post_transpose(
                hdrs_body,
                &[("x-ttlg-tenant", "acme"), ("traceparent", tp.as_str())],
            ),
            500,
        );
        assert_eq!(resp.status, 429);
        let stored = gw.trace_store().get(trace_id).expect("shed is sampled");
        assert_eq!(stored.status, 429);
        assert_eq!(stored.reason, SampleReason::Shed);
        assert_eq!(stored.tenant, "acme");
        assert!(stored.root.find("network").is_some());
        gw.stop();
    }

    #[test]
    fn critical_alert_gates_healthz() {
        // An impossible SLO: every request misses, so the short-window
        // burn rate saturates far past the slo-burn rule's threshold.
        let svc = TransposeService::with_config(
            Transposer::new_k40c(),
            RuntimeConfig {
                slo: SloConfig {
                    target_us: 0.001,
                    ..SloConfig::default()
                },
                ..RuntimeConfig::default()
            },
        );
        let gw = Gateway::start(Arc::new(svc), GatewayConfig::default());
        assert_eq!(
            gw.handle(&get("/healthz"), 0).status,
            200,
            "healthy at boot"
        );
        for _ in 0..3 {
            let resp = gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
            assert_eq!(resp.status, 200);
        }
        // slo-burn needs two consecutive breached evaluations to fire.
        gw.evaluate_alerts();
        gw.evaluate_alerts();
        let resp = gw.handle(&get("/healthz"), 0);
        assert_eq!(resp.status, 503);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        assert!(text.contains("slo-burn"), "{text}");
        let resp = gw.handle(&get("/v1/alerts"), 0);
        assert_eq!(resp.status, 200);
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(
            doc.get("any_critical_firing"),
            Some(&Json::Bool(true)),
            "{}",
            String::from_utf8_lossy(&resp.body)
        );
        gw.stop();
    }

    #[test]
    fn tenant_overflow_folds_into_underscore_other() {
        let m = GatewayMetrics::default();
        for i in 0..40 {
            m.record_tenant(&format!("t{i}"), i % 2 == 0);
        }
        assert_eq!(m.tenant_label("brand-new"), OVERFLOW_TENANT);
        let tenants = m.tenants.lock().unwrap();
        assert_eq!(tenants.len(), MAX_TENANT_LABELS + 1, "32 real + _other");
        assert!(tenants.contains_key(OVERFLOW_TENANT));
        // Aggregation preserves totals: the series still sum to 40.
        let total: u64 = tenants.values().map(|(a, s)| a + s).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn tenant_sanitization() {
        assert_eq!(sanitize_tenant("acme-prod_1.2"), "acme-prod_1.2");
        assert_eq!(sanitize_tenant(""), "invalid");
        assert_eq!(sanitize_tenant("a b"), "invalid");
        assert_eq!(sanitize_tenant(&"x".repeat(65)), "invalid");
        assert_eq!(sanitize_tenant("evil\"} inject"), "invalid");
    }

    #[test]
    fn duration_and_percent_decode_helpers() {
        assert_eq!(parse_duration_ms("500ms"), Some(500));
        assert_eq!(parse_duration_ms("90s"), Some(90_000));
        assert_eq!(parse_duration_ms("10m"), Some(600_000));
        assert_eq!(parse_duration_ms("4h"), Some(14_400_000));
        assert_eq!(parse_duration_ms("2.5s"), Some(2_500));
        assert_eq!(parse_duration_ms("30"), Some(30_000), "bare = seconds");
        assert_eq!(parse_duration_ms("-1s"), None);
        assert_eq!(parse_duration_ms("soon"), None);
        assert_eq!(
            percent_decode("rate(ttlg_requests_total%7Bschema%3D%22x%22%7D)"),
            r#"rate(ttlg_requests_total{schema="x"})"#
        );
        assert_eq!(percent_decode("a+b%2"), "a b%2", "malformed escape kept");
    }

    /// End-to-end query_range: drive traffic, scrape the history twice,
    /// and check `increase(ttlg_requests_total)` comes back as a
    /// non-negative grid whose total matches the driven requests.
    #[test]
    fn query_range_serves_increase_over_scraped_history() {
        let gw = gateway(GatewayConfig::default());
        for _ in 0..3 {
            let resp = gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
            assert_eq!(resp.status, 200);
        }
        // Deterministic timeline: scrape manually rather than waiting
        // out the background cadence.
        gw.service().scrape_history_once();
        for _ in 0..2 {
            let resp = gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
            assert_eq!(resp.status, 200);
        }
        gw.service().scrape_history_once();

        let resp = gw.handle(
            &get("/v1/query_range?series=sum(increase(ttlg_requests_total))&window=60s&step=1s"),
            0,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let doc = json::parse(&resp.body).unwrap();
        assert_eq!(
            doc.get("window_ms").and_then(|v| v.as_f64()),
            Some(60_000.0)
        );
        let series = match doc.get("series") {
            Some(Json::Arr(s)) => s,
            other => panic!("series array expected, got {other:?}"),
        };
        assert_eq!(series.len(), 1, "sum() folds to one series");
        let points = match series[0].get("points") {
            Some(Json::Arr(p)) => p,
            other => panic!("points array expected, got {other:?}"),
        };
        let total: f64 = points
            .iter()
            .map(|p| match p {
                Json::Arr(tv) => tv[1].as_f64().unwrap(),
                other => panic!("point pair expected, got {other:?}"),
            })
            .sum();
        // A new series starts from zero, so the first scrape's
        // cumulative value (3) counts as an increment, and the second
        // scrape adds the 2 requests driven between them.
        assert!(
            (total - 5.0).abs() < 1e-9,
            "increase total {total}, expected 5"
        );
        // The scraped history also carries the gateway's own families.
        let resp = gw.handle(
            &get("/v1/query_range?series=increase(ttlg_gateway_requests_total%7Bendpoint%3D%22transpose%22%7D)&window=60s"),
            0,
        );
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        gw.stop();
    }

    #[test]
    fn query_range_rejects_bad_input_with_400() {
        let gw = gateway(GatewayConfig::default());
        gw.service().scrape_history_once();
        for (path, needle) in [
            ("/v1/query_range", "series="),
            ("/v1/query_range?series=rate(x)&window=abc", "window"),
            ("/v1/query_range?series=rate(x)&window=10s&step=30s", "step"),
            (
                "/v1/query_range?series=rate(x)&window=4h&step=1s",
                "too many points",
            ),
            ("/v1/query_range?series=bogus(((", "bad query"),
            (
                "/v1/query_range?series=rate(ttlg_cache_pinned_plans)",
                "bad query",
            ),
        ] {
            let resp = gw.handle(&get(path), 0);
            assert_eq!(resp.status, 400, "{path}");
            let text = String::from_utf8_lossy(&resp.body).to_string();
            assert!(text.contains(needle), "{path}: {text}");
        }
        let prom = gw.export_prometheus();
        assert!(
            prom.contains(r#"endpoint="query""#),
            "query counter exported"
        );
        gw.stop();
    }

    /// The gateway wires the windowed alert engine to the service's
    /// history store: a shed burst split across scrapes trips the
    /// windowed shed-spike rule even though each adjacent scrape pair
    /// stays under threshold.
    #[test]
    fn windowed_alerts_read_gateway_history() {
        let gw = gateway(GatewayConfig {
            quota: QuotaConfig {
                rate_per_sec: 0.001,
                burst: 4.0,
                max_tenants: 8,
            },
            ..GatewayConfig::default()
        });
        // 4 admits, then everything sheds: shed ratio over any window
        // spanning the burst far exceeds the 10% threshold.
        for _ in 0..16 {
            gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
            gw.service().scrape_history_once();
        }
        let statuses = gw.evaluate_alerts();
        let shed = statuses
            .iter()
            .find(|s| s.name == "shed-spike")
            .expect("shed-spike rule present");
        assert!(
            shed.value.unwrap_or(0.0) > 0.1,
            "windowed shed ratio {:?} over history of {} scrapes",
            shed.value,
            gw.service().history().scrapes()
        );
        gw.stop();
    }

    #[test]
    fn stop_fails_queued_requests_explicitly() {
        // Zero-worker config is clamped to one worker, so instead stop
        // first and verify enqueue after stop is refused.
        let gw = gateway(GatewayConfig::default());
        gw.stop();
        let resp = gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
        // After stop the scheduler refuses work -> queue-full shed.
        assert_eq!(resp.status, 429);
        gw.stop();
    }
}
