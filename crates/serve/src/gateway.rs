//! The gateway: routing, admission, scheduling, and metrics for the
//! network edge.
//!
//! A [`Gateway`] owns one [`TransposeService`] plus the machinery that
//! stands between it and the network:
//!
//! ```text
//!   connection threads (router)          scheduler workers
//!   ---------------------------          -----------------
//!   parse HTTP -> route                  weighted dequeue
//!     POST /v1/transpose                   -> input tensor (cached)
//!       validate problem                   -> service.submit_traced
//!       quota gate      -> 429             -> complete slot
//!       queue gate      -> 429
//!       wait completion -> 200/500/503
//!     GET /v1/explain   -> planner decision trace
//!     GET /metrics      -> Prometheus text (service + gateway)
//!     GET /healthz      -> liveness
//! ```
//!
//! Every admitted request carries a four-phase decomposition in its
//! response body — `network` (bytes-on-wire to parsed request), `queue`
//! (admission to dequeue), `plan` (cache fetch/build) and `execute`
//! (kernel) — the same attribution the trace ring records, extended to
//! the network edge.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ttlg::TransposeOptions;
use ttlg_obs::{MetricKind, Sample};
use ttlg_runtime::{LatencyHistogram, TransposeRequest, TransposeService, HIST_BUCKETS};
use ttlg_tensor::{DenseTensor, Permutation, Shape};

use crate::admission::{AdmissionController, Priority, QuotaConfig, Shed, ShedReason};
use crate::http::{HttpLimits, HttpRequest, HttpResponse};
use crate::json::{self, obj, Json};
use crate::scheduler::{Scheduler, SchedulerConfig, SchedulerWorkers};

/// Gateway configuration: the edge, admission, and scheduling knobs in
/// one place.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Scheduler worker threads executing admitted requests.
    pub workers: usize,
    /// Per-tenant, per-class queue bound.
    pub queue_capacity: usize,
    /// Interactive items served per batch item under contention.
    pub interactive_weight: u32,
    /// Per-tenant token-bucket quota.
    pub quota: QuotaConfig,
    /// Hard cap on concurrent connections; excess get 503 and close.
    pub max_connections: usize,
    /// Largest tensor volume (elements) a request may ask for.
    pub max_elements: usize,
    /// HTTP parser limits (head/body size).
    pub limits: HttpLimits,
    /// How long a connection thread waits for its queued request to
    /// complete before answering 503.
    pub request_timeout_ms: u64,
    /// Keep-alive idle timeout before the server closes a connection.
    pub idle_timeout_ms: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 4,
            queue_capacity: 64,
            interactive_weight: 4,
            quota: QuotaConfig::default(),
            max_connections: 128,
            max_elements: 1 << 22,
            limits: HttpLimits::default(),
            request_timeout_ms: 30_000,
            idle_timeout_ms: 5_000,
        }
    }
}

/// Completion slot a connection thread waits on while the scheduler
/// executes its request.
struct CompletionSlot {
    state: Mutex<Option<HttpResponse>>,
    done: Condvar,
}

impl CompletionSlot {
    fn new() -> Arc<Self> {
        Arc::new(CompletionSlot {
            state: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn complete(&self, resp: HttpResponse) {
        let mut st = self.state.lock().expect("slot poisoned");
        if st.is_none() {
            *st = Some(resp);
            self.done.notify_all();
        }
    }

    fn wait(&self, timeout: Duration) -> Option<HttpResponse> {
        let mut st = self.state.lock().expect("slot poisoned");
        let deadline = Instant::now() + timeout;
        while st.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (g, _) = self
                .done
                .wait_timeout(st, left)
                .expect("slot condvar poisoned");
            st = g;
        }
        st.take()
    }
}

/// One admitted transpose request queued for a scheduler worker.
struct Job {
    tenant: String,
    class: Priority,
    extents: Vec<usize>,
    perm: Vec<usize>,
    network_ns: u64,
    enqueued: Instant,
    slot: Arc<CompletionSlot>,
}

/// Tenant label cardinality cap for per-tenant metric families; tenants
/// beyond this are folded into `other`.
const MAX_TENANT_LABELS: usize = 32;

/// Counters and histograms for the `ttlg_gateway_*` families.
#[derive(Default)]
pub struct GatewayMetrics {
    /// Requests routed, by endpoint.
    transpose_total: AtomicU64,
    explain_total: AtomicU64,
    metrics_total: AtomicU64,
    healthz_total: AtomicU64,
    not_found_total: AtomicU64,
    /// Requests refused at the edge before routing (parse errors).
    parse_errors_total: AtomicU64,
    /// Sheds, by reason.
    shed_quota_total: AtomicU64,
    shed_queue_total: AtomicU64,
    /// Admitted requests that timed out waiting for completion.
    timeouts_total: AtomicU64,
    /// Connections accepted / currently open / refused at the cap.
    connections_total: AtomicU64,
    connections_active: AtomicU64,
    connections_rejected_total: AtomicU64,
    /// Network phase (first byte to parsed request), and gateway queue
    /// phase (admission to dequeue).
    network_hist: LatencyHistogram,
    queue_hist: LatencyHistogram,
    /// Per-tenant admitted/shed counts (bounded label set).
    tenants: Mutex<HashMap<String, (u64, u64)>>,
}

impl GatewayMetrics {
    fn tenant_label(&self, tenant: &str) -> String {
        let tenants = self.tenants.lock().expect("tenant metrics poisoned");
        if tenants.contains_key(tenant) || tenants.len() < MAX_TENANT_LABELS {
            tenant.to_string()
        } else {
            "other".to_string()
        }
    }

    fn record_tenant(&self, tenant: &str, admitted: bool) {
        let label = self.tenant_label(tenant);
        let mut tenants = self.tenants.lock().expect("tenant metrics poisoned");
        let entry = tenants.entry(label).or_insert((0, 0));
        if admitted {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }

    /// Connection opened; pair with [`Self::connection_closed`].
    pub fn connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Connection closed.
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connection refused because the connection cap was reached.
    pub fn connection_rejected(&self) {
        self.connections_rejected_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// A request that failed HTTP parsing.
    pub fn parse_error(&self) {
        self.parse_errors_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total sheds so far (both reasons).
    pub fn sheds(&self) -> u64 {
        self.shed_quota_total.load(Ordering::Relaxed)
            + self.shed_queue_total.load(Ordering::Relaxed)
    }

    /// Append the `ttlg_gateway_*` families to a snapshot.
    fn export_into(&self, snap: &mut ttlg_runtime::MetricsSnapshot, queue_depth: usize) {
        snap.push_metric(
            "ttlg_gateway_requests_total",
            "HTTP requests routed, by endpoint.",
            MetricKind::Counter,
            vec![
                Sample::labelled(
                    "endpoint",
                    "transpose",
                    self.transpose_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "explain",
                    self.explain_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "metrics",
                    self.metrics_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "healthz",
                    self.healthz_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "endpoint",
                    "not_found",
                    self.not_found_total.load(Ordering::Relaxed) as f64,
                ),
            ],
        );
        snap.push_metric(
            "ttlg_gateway_shed_total",
            "Requests load-shed with 429, by reason.",
            MetricKind::Counter,
            vec![
                Sample::labelled(
                    "reason",
                    ShedReason::QuotaExceeded.as_str(),
                    self.shed_quota_total.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "reason",
                    ShedReason::QueueFull.as_str(),
                    self.shed_queue_total.load(Ordering::Relaxed) as f64,
                ),
            ],
        );
        snap.push_metric(
            "ttlg_gateway_parse_errors_total",
            "Requests rejected by the HTTP parser.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.parse_errors_total.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_timeouts_total",
            "Admitted requests that timed out awaiting completion.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.timeouts_total.load(Ordering::Relaxed) as f64
            )],
        );
        snap.push_metric(
            "ttlg_gateway_connections_total",
            "TCP connections accepted.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.connections_total.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_connections_active",
            "TCP connections currently open.",
            MetricKind::Gauge,
            vec![Sample::plain(
                self.connections_active.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_connections_rejected_total",
            "Connections refused at the connection cap.",
            MetricKind::Counter,
            vec![Sample::plain(
                self.connections_rejected_total.load(Ordering::Relaxed) as f64,
            )],
        );
        snap.push_metric(
            "ttlg_gateway_queue_depth",
            "Requests currently queued in the scheduler.",
            MetricKind::Gauge,
            vec![Sample::plain(queue_depth as f64)],
        );
        {
            let tenants = self.tenants.lock().expect("tenant metrics poisoned");
            let mut admitted = Vec::new();
            let mut shed = Vec::new();
            let mut names: Vec<_> = tenants.keys().cloned().collect();
            names.sort();
            for name in names {
                let (a, s) = tenants[&name];
                admitted.push(Sample::labelled("tenant", &name, a as f64));
                shed.push(Sample::labelled("tenant", &name, s as f64));
            }
            snap.push_metric(
                "ttlg_gateway_tenant_admitted_total",
                "Requests admitted past both gates, by tenant.",
                MetricKind::Counter,
                admitted,
            );
            snap.push_metric(
                "ttlg_gateway_tenant_shed_total",
                "Requests shed, by tenant.",
                MetricKind::Counter,
                shed,
            );
        }
        let upper_bounds: Vec<f64> = (1..HIST_BUCKETS).map(|i| (1u64 << i) as f64).collect();
        for (hist, name, help) in [
            (
                &self.network_hist,
                "ttlg_gateway_network_us",
                "Network phase: first byte on the wire to parsed request, microseconds.",
            ),
            (
                &self.queue_hist,
                "ttlg_gateway_queue_us",
                "Gateway queue phase: admission to scheduler dequeue, microseconds.",
            ),
        ] {
            snap.push_histogram(
                name,
                help,
                Vec::new(),
                upper_bounds.clone(),
                hist.bucket_counts(),
                hist.total_ns() as f64 / 1e3,
            );
        }
    }
}

/// The network-facing gateway around a [`TransposeService`].
pub struct Gateway {
    cfg: GatewayConfig,
    service: Arc<TransposeService<f64>>,
    admission: AdmissionController,
    scheduler: Arc<Scheduler<Job>>,
    workers: Mutex<Option<SchedulerWorkers>>,
    metrics: GatewayMetrics,
    /// Input tensors cached by extents so repeated problems don't
    /// re-materialize (bounded; cleared wholesale when full).
    inputs: Mutex<HashMap<Vec<usize>, Arc<DenseTensor<f64>>>>,
}

const MAX_CACHED_INPUTS: usize = 32;

impl Gateway {
    /// Build a gateway around `service` and start its scheduler
    /// workers.
    pub fn start(service: Arc<TransposeService<f64>>, cfg: GatewayConfig) -> Arc<Gateway> {
        let scheduler = Arc::new(Scheduler::new(SchedulerConfig {
            workers: cfg.workers,
            queue_capacity: cfg.queue_capacity,
            interactive_weight: cfg.interactive_weight,
        }));
        let gw = Arc::new(Gateway {
            admission: AdmissionController::new(cfg.quota),
            scheduler: Arc::clone(&scheduler),
            workers: Mutex::new(None),
            metrics: GatewayMetrics::default(),
            inputs: Mutex::new(HashMap::new()),
            service,
            cfg,
        });
        let worker_gw = Arc::clone(&gw);
        let workers = scheduler.start_workers(move |job| worker_gw.execute_job(job));
        *gw.workers.lock().expect("workers poisoned") = Some(workers);
        gw
    }

    /// The gateway's config.
    pub fn config(&self) -> &GatewayConfig {
        &self.cfg
    }

    /// The gateway's metric counters.
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.metrics
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<TransposeService<f64>> {
        &self.service
    }

    /// Stop the scheduler, fail anything still queued with 503, and
    /// join the workers. Idempotent.
    pub fn stop(&self) {
        for job in self.scheduler.stop() {
            job.slot
                .complete(HttpResponse::error(503, "gateway shutting down"));
        }
        if let Some(mut workers) = self.workers.lock().expect("workers poisoned").take() {
            workers.join();
        }
    }

    /// Route one parsed request. `network_ns` is the edge's measured
    /// first-byte-to-parse time for this request.
    pub fn handle(&self, req: &HttpRequest, network_ns: u64) -> HttpResponse {
        self.metrics.network_hist.record_ns(network_ns);
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/transpose") => {
                self.metrics.transpose_total.fetch_add(1, Ordering::Relaxed);
                self.handle_transpose(req, network_ns)
            }
            ("GET", "/v1/explain") => {
                self.metrics.explain_total.fetch_add(1, Ordering::Relaxed);
                self.handle_explain(req)
            }
            ("GET", "/metrics") => {
                self.metrics.metrics_total.fetch_add(1, Ordering::Relaxed);
                HttpResponse::text(self.export_prometheus())
            }
            ("GET", "/healthz") => {
                self.metrics.healthz_total.fetch_add(1, Ordering::Relaxed);
                HttpResponse::json(obj(vec![("ok", Json::Bool(true))]).render())
            }
            _ => {
                self.metrics.not_found_total.fetch_add(1, Ordering::Relaxed);
                HttpResponse::error(404, format!("no route for {} {}", req.method, req.path))
            }
        }
    }

    /// Prometheus text: the service's full snapshot plus the
    /// `ttlg_gateway_*` families.
    pub fn export_prometheus(&self) -> String {
        let mut snap = self.service.metrics_snapshot();
        self.metrics.export_into(&mut snap, self.scheduler.depth());
        ttlg_obs::prom::render(&snap)
    }

    fn handle_transpose(&self, req: &HttpRequest, network_ns: u64) -> HttpResponse {
        // -- validate ---------------------------------------------------
        let body = match json::parse(&req.body) {
            Ok(v) => v,
            Err(e) => return HttpResponse::error(400, format!("bad JSON: {e}")),
        };
        let extents = match body.get("extents").and_then(|v| v.as_usize_array()) {
            Some(e) if !e.is_empty() => e,
            _ => return HttpResponse::error(400, "body needs a non-empty \"extents\" array"),
        };
        let perm = match body.get("perm").and_then(|v| v.as_usize_array()) {
            Some(p) => p,
            None => return HttpResponse::error(400, "body needs a \"perm\" array"),
        };
        if Shape::new(&extents).is_err() {
            return HttpResponse::error(400, "invalid extents");
        }
        if perm.len() != extents.len() || Permutation::new(&perm).is_err() {
            return HttpResponse::error(400, "perm must be a permutation of 0..rank");
        }
        let volume: usize = extents.iter().product();
        if volume > self.cfg.max_elements {
            return HttpResponse::error(
                413,
                format!(
                    "tensor volume {volume} exceeds gateway limit {}",
                    self.cfg.max_elements
                ),
            );
        }

        // -- classify ---------------------------------------------------
        let tenant = sanitize_tenant(
            req.header("x-ttlg-tenant")
                .or_else(|| body.get("tenant").and_then(|t| t.as_str()))
                .unwrap_or("anonymous"),
        );
        let class = match req.header("x-ttlg-priority") {
            None => Priority::Interactive,
            Some(v) => match Priority::parse(v) {
                Some(c) => c,
                None => {
                    return HttpResponse::error(
                        400,
                        "x-ttlg-priority must be \"interactive\" or \"batch\"",
                    )
                }
            },
        };

        // -- admit ------------------------------------------------------
        if let Err(shed) = self.admission.check_quota(&tenant) {
            return self.shed_response(&tenant, shed);
        }
        let slot = CompletionSlot::new();
        let job = Job {
            tenant: tenant.clone(),
            class,
            extents,
            perm,
            network_ns,
            enqueued: Instant::now(),
            slot: Arc::clone(&slot),
        };
        if self.scheduler.try_enqueue(&tenant, class, job).is_err() {
            return self.shed_response(
                &tenant,
                Shed {
                    reason: ShedReason::QueueFull,
                    retry_after_secs: 1,
                },
            );
        }
        self.metrics.record_tenant(&tenant, true);

        // -- wait -------------------------------------------------------
        match slot.wait(Duration::from_millis(self.cfg.request_timeout_ms)) {
            Some(resp) => resp,
            None => {
                self.metrics.timeouts_total.fetch_add(1, Ordering::Relaxed);
                HttpResponse::error(503, "request timed out in the gateway")
            }
        }
    }

    /// Scheduler-worker side: materialize the input, run the service,
    /// and complete the connection thread's slot.
    fn execute_job(&self, job: Job) {
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        self.metrics.queue_hist.record_ns(queue_ns);
        let input = self.input_for(&job.extents);
        let perm = Permutation::new(&job.perm).expect("perm validated at admission");
        let request = TransposeRequest::new(input, perm);
        let (outcome, trace) = self.service.submit_traced(&request);
        let resp = match outcome {
            Ok(r) => {
                let phases = obj(vec![
                    ("network_us", Json::Num(job.network_ns as f64 / 1e3)),
                    ("queue_us", Json::Num(queue_ns as f64 / 1e3)),
                    ("plan_us", Json::Num(trace.plan_fetch_ns as f64 / 1e3)),
                    (
                        "execute_us",
                        Json::Num((trace.queue_wait_ns + trace.execute_ns) as f64 / 1e3),
                    ),
                ]);
                HttpResponse::json(
                    obj(vec![
                        ("ok", Json::Bool(true)),
                        ("tenant", Json::Str(job.tenant.clone())),
                        ("priority", Json::Str(job.class.as_str().to_string())),
                        ("schema", Json::Str(r.report.schema.to_string())),
                        ("elements", Json::Num(r.output.volume() as f64)),
                        ("cache_hit", Json::Bool(trace.cache_hit == Some(true))),
                        ("warmed", Json::Bool(trace.warmed)),
                        ("kernel_us", Json::Num(r.report.kernel_time_ns / 1e3)),
                        ("predicted_us", Json::Num(r.report.predicted_ns / 1e3)),
                        ("bandwidth_gbps", Json::Num(r.report.bandwidth_gbps)),
                        ("phases", phases),
                    ])
                    .render(),
                )
            }
            Err(e) => HttpResponse::error(500, e.message),
        };
        job.slot.complete(resp);
    }

    fn shed_response(&self, tenant: &str, shed: Shed) -> HttpResponse {
        match shed.reason {
            ShedReason::QuotaExceeded => self
                .metrics
                .shed_quota_total
                .fetch_add(1, Ordering::Relaxed),
            ShedReason::QueueFull => self
                .metrics
                .shed_queue_total
                .fetch_add(1, Ordering::Relaxed),
        };
        self.metrics.record_tenant(tenant, false);
        HttpResponse::json(
            obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::Str("shed".to_string())),
                ("reason", Json::Str(shed.reason.as_str().to_string())),
                ("retry_after_secs", Json::Num(shed.retry_after_secs as f64)),
            ])
            .render(),
        )
        .with_status(429)
        .with_header("retry-after", shed.retry_after_secs.to_string())
    }

    fn handle_explain(&self, req: &HttpRequest) -> HttpResponse {
        let extents = match req.query_param("extents").map(parse_usize_list) {
            Some(Some(e)) if !e.is_empty() => e,
            _ => return HttpResponse::error(400, "query needs extents=N,N,..."),
        };
        let perm = match req.query_param("perm").map(parse_usize_list) {
            Some(Some(p)) => p,
            _ => return HttpResponse::error(400, "query needs perm=N,N,..."),
        };
        let shape = match Shape::new(&extents) {
            Ok(s) => s,
            Err(e) => return HttpResponse::error(400, format!("invalid extents: {e}")),
        };
        let perm = match Permutation::new(&perm) {
            Ok(p) if p.rank() == shape.rank() => p,
            _ => return HttpResponse::error(400, "perm must be a permutation of 0..rank"),
        };
        match self.service.transposer().plan_traced::<f64>(
            &shape,
            &perm,
            &TransposeOptions::default(),
        ) {
            Ok((_, trace)) => HttpResponse::text(trace.render()),
            Err(e) => HttpResponse::error(422, format!("planning failed: {e}")),
        }
    }

    fn input_for(&self, extents: &[usize]) -> Arc<DenseTensor<f64>> {
        let mut inputs = self.inputs.lock().expect("input cache poisoned");
        if let Some(t) = inputs.get(extents) {
            return Arc::clone(t);
        }
        if inputs.len() >= MAX_CACHED_INPUTS {
            inputs.clear();
        }
        let shape = Shape::new(extents).expect("extents validated at admission");
        let t = Arc::new(DenseTensor::<f64>::iota(shape));
        inputs.insert(extents.to_vec(), Arc::clone(&t));
        t
    }
}

/// Clamp a tenant id to a safe label: ASCII alphanumerics, `-`, `_`,
/// `.`, at most 64 chars; anything else becomes `invalid`.
fn sanitize_tenant(raw: &str) -> String {
    let ok = !raw.is_empty()
        && raw.len() <= 64
        && raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        raw.to_string()
    } else {
        "invalid".to_string()
    }
}

/// Parse `"16,8,4"` into `[16, 8, 4]`.
fn parse_usize_list(s: &str) -> Option<Vec<usize>> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::parse_request;

    fn gateway(cfg: GatewayConfig) -> Arc<Gateway> {
        Gateway::start(Arc::new(TransposeService::new_k40c()), cfg)
    }

    fn post_transpose(body: &str, headers: &[(&str, &str)]) -> HttpRequest {
        let mut raw = format!(
            "POST /v1/transpose HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            raw.push_str(&format!("{k}: {v}\r\n"));
        }
        raw.push_str("\r\n");
        raw.push_str(body);
        parse_request(raw.as_bytes(), &HttpLimits::default())
            .unwrap()
            .unwrap()
            .0
    }

    fn get(path: &str) -> HttpRequest {
        let raw = format!("GET {path} HTTP/1.1\r\nhost: x\r\n\r\n");
        parse_request(raw.as_bytes(), &HttpLimits::default())
            .unwrap()
            .unwrap()
            .0
    }

    #[test]
    fn transpose_round_trip_reports_phases() {
        let gw = gateway(GatewayConfig::default());
        let req = post_transpose(r#"{"extents":[16,8,4],"perm":[2,0,1]}"#, &[]);
        let resp = gw.handle(&req, 1_000);
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let body = json::parse(&resp.body).unwrap();
        assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(body.get("elements").and_then(|v| v.as_usize()), Some(512));
        let phases = body.get("phases").expect("phases present");
        for key in ["network_us", "queue_us", "plan_us", "execute_us"] {
            assert!(phases.get(key).and_then(|v| v.as_f64()).is_some(), "{key}");
        }
        gw.stop();
    }

    #[test]
    fn malformed_bodies_get_400_not_500() {
        let gw = gateway(GatewayConfig::default());
        for body in [
            "not json",
            r#"{"perm":[0]}"#,
            r#"{"extents":[4,4]}"#,
            r#"{"extents":[4,4],"perm":[0,0]}"#,
            r#"{"extents":[4,4],"perm":[0]}"#,
            r#"{"extents":[],"perm":[]}"#,
            r#"{"extents":[0,4],"perm":[1,0]}"#,
        ] {
            let resp = gw.handle(&post_transpose(body, &[]), 0);
            assert_eq!(resp.status, 400, "body {body:?}");
        }
        gw.stop();
    }

    #[test]
    fn oversized_volume_gets_413() {
        let gw = gateway(GatewayConfig {
            max_elements: 100,
            ..GatewayConfig::default()
        });
        let resp = gw.handle(
            &post_transpose(r#"{"extents":[16,16],"perm":[1,0]}"#, &[]),
            0,
        );
        assert_eq!(resp.status, 413);
        gw.stop();
    }

    #[test]
    fn quota_exhaustion_sheds_with_retry_after() {
        let gw = gateway(GatewayConfig {
            quota: QuotaConfig {
                rate_per_sec: 0.001,
                burst: 2.0,
                max_tenants: 8,
            },
            ..GatewayConfig::default()
        });
        let hdrs = [("x-ttlg-tenant", "acme")];
        for _ in 0..2 {
            let resp = gw.handle(
                &post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &hdrs),
                0,
            );
            assert_eq!(resp.status, 200);
        }
        let resp = gw.handle(
            &post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &hdrs),
            0,
        );
        assert_eq!(resp.status, 429);
        let retry = resp
            .headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .map(|(_, v)| v.clone())
            .expect("Retry-After present");
        assert!(retry.parse::<u64>().unwrap() >= 1);
        let body = json::parse(&resp.body).unwrap();
        assert_eq!(body.get("reason").and_then(|v| v.as_str()), Some("quota"));
        assert_eq!(gw.metrics().sheds(), 1);
        // Another tenant is unaffected.
        let resp = gw.handle(
            &post_transpose(
                r#"{"extents":[8,8],"perm":[1,0]}"#,
                &[("x-ttlg-tenant", "globex")],
            ),
            0,
        );
        assert_eq!(resp.status, 200);
        gw.stop();
    }

    #[test]
    fn unknown_priority_is_rejected() {
        let gw = gateway(GatewayConfig::default());
        let resp = gw.handle(
            &post_transpose(
                r#"{"extents":[8,8],"perm":[1,0]}"#,
                &[("x-ttlg-priority", "urgent")],
            ),
            0,
        );
        assert_eq!(resp.status, 400);
        gw.stop();
    }

    #[test]
    fn explain_and_healthz_and_metrics_routes() {
        let gw = gateway(GatewayConfig::default());
        let resp = gw.handle(&get("/healthz"), 0);
        assert_eq!(resp.status, 200);

        let resp = gw.handle(&get("/v1/explain?extents=16,8,4&perm=2,0,1"), 0);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8_lossy(&resp.body).to_string();
        assert!(
            text.contains("decision trace"),
            "decision trace rendered: {text}"
        );

        let resp = gw.handle(&get("/v1/explain?extents=16,8&perm=0"), 0);
        assert_eq!(resp.status, 400);

        // A transpose first so gateway counters are non-zero.
        gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
        let resp = gw.handle(&get("/metrics"), 0);
        assert_eq!(resp.status, 200);
        let prom = String::from_utf8_lossy(&resp.body).to_string();
        for family in [
            "ttlg_gateway_requests_total",
            "ttlg_gateway_shed_total",
            "ttlg_gateway_queue_depth",
            "ttlg_gateway_network_us",
            "ttlg_gateway_queue_us",
            "ttlg_requests_total",
            "ttlg_cache_pinned_plans",
        ] {
            assert!(prom.contains(family), "{family} missing from:\n{prom}");
        }
        let resp = gw.handle(&get("/nope"), 0);
        assert_eq!(resp.status, 404);
        gw.stop();
    }

    #[test]
    fn tenant_sanitization() {
        assert_eq!(sanitize_tenant("acme-prod_1.2"), "acme-prod_1.2");
        assert_eq!(sanitize_tenant(""), "invalid");
        assert_eq!(sanitize_tenant("a b"), "invalid");
        assert_eq!(sanitize_tenant(&"x".repeat(65)), "invalid");
        assert_eq!(sanitize_tenant("evil\"} inject"), "invalid");
    }

    #[test]
    fn stop_fails_queued_requests_explicitly() {
        // Zero-worker config is clamped to one worker, so instead stop
        // first and verify enqueue after stop is refused.
        let gw = gateway(GatewayConfig::default());
        gw.stop();
        let resp = gw.handle(&post_transpose(r#"{"extents":[8,8],"perm":[1,0]}"#, &[]), 0);
        // After stop the scheduler refuses work -> queue-full shed.
        assert_eq!(resp.status, 429);
        gw.stop();
    }
}
