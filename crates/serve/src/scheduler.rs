//! The scheduler half of the gateway's router/scheduler split.
//!
//! The router (connection threads) classifies a request and calls
//! [`Scheduler::try_enqueue`]; a fixed pool of scheduler workers pulls
//! work out with a **weighted, tenant-fair dequeue** and runs the
//! supplied handler. Every queue is bounded, so the only two outcomes
//! for a request are "executed" or "explicitly shed" — memory use is
//! capped no matter how hard the edge is driven.
//!
//! Dequeue policy, outermost first:
//!
//! * **class weighting** — interactive work is picked up to
//!   `interactive_weight` times in a row before one batch item is taken
//!   (strict priority would starve batch under sustained interactive
//!   load; pure FIFO would let batch floods ruin interactive tails);
//! * **tenant round-robin** — within a class, tenants with queued work
//!   are served cyclically, one item each, so a single hot tenant
//!   cannot monopolize the worker pool.
//!
//! The scheduler is generic over the queued item so it can be unit
//! tested without a TCP stack or a transpose service behind it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::admission::Priority;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Worker threads executing dequeued items.
    pub workers: usize,
    /// Per-tenant, per-class queue bound; a full queue sheds.
    pub queue_capacity: usize,
    /// Interactive items served per batch item when both classes have
    /// work (>= 1).
    pub interactive_weight: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            queue_capacity: 64,
            interactive_weight: 4,
        }
    }
}

/// One class's queues: per-tenant FIFOs plus a cyclic order of tenants
/// that currently have work.
struct ClassQueues<T> {
    tenants: HashMap<String, VecDeque<T>>,
    /// Rotation of tenant names with non-empty queues. Invariant: a
    /// tenant appears here exactly once iff its queue is non-empty.
    rotation: VecDeque<String>,
}

impl<T> ClassQueues<T> {
    fn new() -> Self {
        ClassQueues {
            tenants: HashMap::new(),
            rotation: VecDeque::new(),
        }
    }

    fn has_work(&self) -> bool {
        !self.rotation.is_empty()
    }

    fn push(&mut self, tenant: &str, item: T, capacity: usize) -> Result<(), T> {
        let q = self.tenants.entry(tenant.to_string()).or_default();
        if q.len() >= capacity.max(1) {
            return Err(item);
        }
        if q.is_empty() {
            self.rotation.push_back(tenant.to_string());
        }
        q.push_back(item);
        Ok(())
    }

    /// Take one item from the tenant at the head of the rotation; the
    /// tenant goes to the back if it still has work, or leaves the
    /// rotation (and the map — idle tenants cost nothing) if drained.
    fn pop(&mut self) -> Option<T> {
        let tenant = self.rotation.pop_front()?;
        let q = self.tenants.get_mut(&tenant).expect("rotation invariant");
        let item = q.pop_front().expect("rotation tenant has work");
        if q.is_empty() {
            self.tenants.remove(&tenant);
        } else {
            self.rotation.push_back(tenant);
        }
        Some(item)
    }

    fn drain(&mut self) -> Vec<T> {
        self.rotation.clear();
        self.tenants.drain().flat_map(|(_, q)| q).collect()
    }
}

struct SchedState<T> {
    interactive: ClassQueues<T>,
    batch: ClassQueues<T>,
    /// Consecutive interactive picks since the last batch pick; resets
    /// when a batch item is served or interactive has no work.
    interactive_streak: u32,
    depth: usize,
    stopping: bool,
}

/// Bounded, tenant-fair, class-weighted work scheduler.
pub struct Scheduler<T> {
    cfg: SchedulerConfig,
    state: Mutex<SchedState<T>>,
    available: Condvar,
    dequeued: AtomicU64,
}

impl<T: Send + 'static> Scheduler<T> {
    /// An empty scheduler (no worker threads yet; see [`start_workers`]).
    ///
    /// [`start_workers`]: Self::start_workers
    pub fn new(cfg: SchedulerConfig) -> Self {
        Scheduler {
            cfg,
            state: Mutex::new(SchedState {
                interactive: ClassQueues::new(),
                batch: ClassQueues::new(),
                interactive_streak: 0,
                depth: 0,
                stopping: false,
            }),
            available: Condvar::new(),
            dequeued: AtomicU64::new(0),
        }
    }

    /// The scheduler's config.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Enqueue one item, or hand it back if the tenant's queue for that
    /// class is full (the caller turns this into a 429).
    pub fn try_enqueue(&self, tenant: &str, class: Priority, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("scheduler poisoned");
        if st.stopping {
            return Err(item);
        }
        let queues = match class {
            Priority::Interactive => &mut st.interactive,
            Priority::Batch => &mut st.batch,
        };
        queues.push(tenant, item, self.cfg.queue_capacity)?;
        st.depth += 1;
        drop(st);
        self.available.notify_one();
        Ok(())
    }

    /// Items currently queued across all tenants and classes.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("scheduler poisoned").depth
    }

    /// Items ever dequeued (served to a worker).
    pub fn dequeued(&self) -> u64 {
        self.dequeued.load(Ordering::Relaxed)
    }

    /// Blocking weighted dequeue; `None` means the scheduler is
    /// stopping and the queues are empty.
    fn dequeue(&self) -> Option<T> {
        let mut st = self.state.lock().expect("scheduler poisoned");
        loop {
            let pick_batch = st.batch.has_work()
                && (!st.interactive.has_work()
                    || st.interactive_streak >= self.cfg.interactive_weight.max(1));
            let item = if pick_batch {
                st.interactive_streak = 0;
                st.batch.pop()
            } else if st.interactive.has_work() {
                st.interactive_streak = st.interactive_streak.saturating_add(1);
                st.interactive.pop()
            } else {
                None
            };
            if let Some(item) = item {
                st.depth -= 1;
                self.dequeued.fetch_add(1, Ordering::Relaxed);
                return Some(item);
            }
            if st.stopping {
                return None;
            }
            st = self.available.wait(st).expect("scheduler condvar poisoned");
        }
    }

    /// Spawn the worker pool. Each worker loops `dequeue -> handler`
    /// until the scheduler stops and its queues drain.
    pub fn start_workers(
        self: &Arc<Self>,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> SchedulerWorkers {
        let handler = Arc::new(handler);
        let joins = (0..self.cfg.workers.max(1))
            .map(|i| {
                let sched = Arc::clone(self);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("ttlg-sched-{i}"))
                    .spawn(move || {
                        while let Some(item) = sched.dequeue() {
                            handler(item);
                        }
                    })
                    .expect("spawn scheduler worker")
            })
            .collect();
        SchedulerWorkers {
            joins,
            stopped: AtomicBool::new(false),
        }
    }

    /// Flip to stopping and return everything still queued so the
    /// caller can fail those requests explicitly. Workers finish their
    /// in-flight item and exit.
    pub fn stop(&self) -> Vec<T> {
        let mut st = self.state.lock().expect("scheduler poisoned");
        st.stopping = true;
        let mut leftover = st.interactive.drain();
        leftover.extend(st.batch.drain());
        st.depth = 0;
        drop(st);
        self.available.notify_all();
        leftover
    }
}

/// Join handle for the worker pool; call [`join`](Self::join) after
/// [`Scheduler::stop`].
pub struct SchedulerWorkers {
    joins: Vec<JoinHandle<()>>,
    stopped: AtomicBool,
}

impl SchedulerWorkers {
    /// Wait for every worker to exit (idempotent).
    pub fn join(&mut self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn cfg(workers: usize, capacity: usize, weight: u32) -> SchedulerConfig {
        SchedulerConfig {
            workers,
            queue_capacity: capacity,
            interactive_weight: weight,
        }
    }

    #[test]
    fn queue_bound_is_per_tenant_and_class() {
        let sched: Scheduler<u32> = Scheduler::new(cfg(1, 2, 4));
        sched.try_enqueue("a", Priority::Batch, 1).unwrap();
        sched.try_enqueue("a", Priority::Batch, 2).unwrap();
        assert!(sched.try_enqueue("a", Priority::Batch, 3).is_err());
        // Same tenant, other class: separate bound.
        sched.try_enqueue("a", Priority::Interactive, 4).unwrap();
        // Other tenant, same class: separate bound.
        sched.try_enqueue("b", Priority::Batch, 5).unwrap();
        assert_eq!(sched.depth(), 4);
    }

    #[test]
    fn weighted_dequeue_interleaves_classes() {
        let sched: Scheduler<&'static str> = Scheduler::new(cfg(1, 16, 2));
        for _ in 0..4 {
            sched.try_enqueue("t", Priority::Interactive, "i").unwrap();
            sched.try_enqueue("t", Priority::Batch, "b").unwrap();
        }
        let order: Vec<_> = (0..8).map(|_| sched.dequeue().unwrap()).collect();
        // Weight 2: two interactive per batch until interactive drains.
        assert_eq!(order, ["i", "i", "b", "i", "i", "b", "b", "b"]);
    }

    #[test]
    fn tenants_round_robin_within_a_class() {
        let sched: Scheduler<String> = Scheduler::new(cfg(1, 16, 4));
        for i in 0..3 {
            sched
                .try_enqueue("a", Priority::Batch, format!("a{i}"))
                .unwrap();
        }
        sched
            .try_enqueue("b", Priority::Batch, "b0".to_string())
            .unwrap();
        let order: Vec<_> = (0..4).map(|_| sched.dequeue().unwrap()).collect();
        // Tenant b's single item is served second, not after all of a's.
        assert_eq!(order, ["a0", "b0", "a1", "a2"]);
    }

    #[test]
    fn batch_is_not_starved_by_interactive_floods() {
        let sched: Scheduler<u8> = Scheduler::new(cfg(1, 200, 3));
        for _ in 0..100 {
            sched.try_enqueue("t", Priority::Interactive, 0).unwrap();
        }
        sched.try_enqueue("t", Priority::Batch, 1).unwrap();
        // The batch item must surface within interactive_weight + 1 picks.
        let first_four: Vec<_> = (0..4).map(|_| sched.dequeue().unwrap()).collect();
        assert_eq!(first_four, [0, 0, 0, 1]);
    }

    #[test]
    fn workers_drain_and_stop_joins() {
        let sched: Arc<Scheduler<usize>> = Arc::new(Scheduler::new(cfg(3, 64, 4)));
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        let mut workers = sched.start_workers(move |_| {
            done2.fetch_add(1, Ordering::SeqCst);
        });
        for i in 0..50 {
            let tenant = if i % 2 == 0 { "even" } else { "odd" };
            let class = if i % 3 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            };
            sched.try_enqueue(tenant, class, i).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::SeqCst) < 50 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 50, "all items executed");
        let leftover = sched.stop();
        assert!(leftover.is_empty());
        workers.join();
        assert!(sched.try_enqueue("late", Priority::Batch, 99).is_err());
    }

    #[test]
    fn stop_returns_leftover_items() {
        let sched: Scheduler<u32> = Scheduler::new(cfg(1, 16, 4));
        sched.try_enqueue("a", Priority::Interactive, 1).unwrap();
        sched.try_enqueue("b", Priority::Batch, 2).unwrap();
        let leftover = sched.stop();
        assert_eq!(leftover.len(), 2);
        assert_eq!(sched.depth(), 0);
    }
}
