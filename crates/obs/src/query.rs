//! Range queries over the [`crate::tsdb`] history store.
//!
//! A deliberately small PromQL-flavoured grammar:
//!
//! ```text
//! expr     := func | selector
//! func     := ("rate" | "increase" | "avg_over_time" | "max_over_time") "(" selector ")"
//!           | "quantile_over_time" "(" number "," selector ")"
//!           | "sum" "(" expr ")"
//! selector := name [ "{" name "=" '"' value '"' { "," ... } "}" ]
//! ```
//!
//! [`eval_range`] evaluates an expression over a step grid: the window
//! `(end - window, end]` is cut into `window / step` intervals and each
//! emitted point at timestamp `t` summarises the half-open interval
//! `(t - step, t]`:
//!
//! * `rate(counter)` — increments in the interval / step seconds,
//! * `increase(counter)` — increments in the interval (a bare counter
//!   selector means the same thing),
//! * `avg_over_time(gauge)` / `max_over_time(gauge)` — over samples in
//!   the interval (intervals with no samples emit no point),
//! * `quantile_over_time(q, hist)` — merges per-bucket deltas in the
//!   interval and takes the log2-bucket quantile (empty intervals emit
//!   no point),
//! * `sum(expr)` — pointwise sum across the matched series, collapsing
//!   labels.

use crate::quantile::log2_bucket_quantile_us;
use crate::snapshot::MetricKind;
use crate::tsdb::TimeSeriesStore;

/// Why a query failed.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The expression text didn't parse.
    Parse(String),
    /// The expression parsed but can't be evaluated (wrong metric kind,
    /// unknown family, bad quantile, ...).
    Eval(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "parse error: {m}"),
            QueryError::Eval(m) => write!(f, "eval error: {m}"),
        }
    }
}

/// One output series.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySeries {
    pub labels: Vec<(String, String)>,
    /// `(timestamp_ms, value)`, one per emitted step, ascending.
    pub points: Vec<(u64, f64)>,
}

/// The result of [`eval_range`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    pub series: Vec<QuerySeries>,
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Selector {
        name: String,
        matchers: Vec<(String, String)>,
    },
    Func {
        func: Func,
        arg: Box<Expr>,
    },
    Quantile {
        q: f64,
        arg: Box<Expr>,
    },
    Sum(Box<Expr>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Func {
    Rate,
    Increase,
    AvgOverTime,
    MaxOverTime,
}

/// Parse and evaluate `expr` over `(end_ms - window_ms, end_ms]` with the
/// given step. See module docs for the grammar and point semantics.
pub fn eval_range(
    store: &TimeSeriesStore,
    expr: &str,
    end_ms: u64,
    window_ms: u64,
    step_ms: u64,
) -> Result<QueryResult, QueryError> {
    if step_ms == 0 {
        return Err(QueryError::Eval("step must be positive".into()));
    }
    if window_ms < step_ms {
        return Err(QueryError::Eval("window must be >= step".into()));
    }
    let ast = parse(expr)?;
    let steps = (window_ms / step_ms).min(100_000);
    let grid: Vec<u64> = (1..=steps)
        .map(|i| end_ms.saturating_sub(window_ms) + i * step_ms)
        .collect();
    let series = eval(store, &ast, &grid, step_ms)?;
    Ok(QueryResult { series })
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

fn parse(text: &str) -> Result<Expr, QueryError> {
    let mut p = Parser { text, pos: 0 };
    let expr = p.expr()?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(QueryError::Parse(format!(
            "trailing input at byte {}: {:?}",
            p.pos,
            &p.text[p.pos..]
        )));
    }
    Ok(expr)
}

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: char) -> Result<(), QueryError> {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected {token:?} at byte {}",
                self.pos
            )))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(QueryError::Parse(format!(
                "expected identifier at byte {}",
                self.pos
            )));
        }
        self.pos += end;
        Ok(rest[..end].to_string())
    }

    fn number(&mut self) -> Result<f64, QueryError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        let value: f64 = rest[..end]
            .parse()
            .map_err(|_| QueryError::Parse(format!("expected number at byte {}", self.pos)))?;
        self.pos += end;
        Ok(value)
    }

    fn expr(&mut self) -> Result<Expr, QueryError> {
        let name = self.ident()?;
        self.skip_ws();
        match name.as_str() {
            "rate" | "increase" | "avg_over_time" | "max_over_time" => {
                let func = match name.as_str() {
                    "rate" => Func::Rate,
                    "increase" => Func::Increase,
                    "avg_over_time" => Func::AvgOverTime,
                    _ => Func::MaxOverTime,
                };
                self.eat('(')?;
                let arg = self.selector()?;
                self.eat(')')?;
                Ok(Expr::Func {
                    func,
                    arg: Box::new(arg),
                })
            }
            "quantile_over_time" => {
                self.eat('(')?;
                let q = self.number()?;
                self.eat(',')?;
                let arg = self.selector()?;
                self.eat(')')?;
                Ok(Expr::Quantile {
                    q,
                    arg: Box::new(arg),
                })
            }
            "sum" if self.rest().trim_start().starts_with('(') => {
                self.eat('(')?;
                let inner = self.expr()?;
                self.eat(')')?;
                Ok(Expr::Sum(Box::new(inner)))
            }
            _ => self.selector_tail(name),
        }
    }

    fn selector(&mut self) -> Result<Expr, QueryError> {
        let name = self.ident()?;
        self.selector_tail(name)
    }

    fn selector_tail(&mut self, name: String) -> Result<Expr, QueryError> {
        let mut matchers = Vec::new();
        self.skip_ws();
        if self.rest().starts_with('{') {
            self.eat('{')?;
            loop {
                self.skip_ws();
                if self.rest().starts_with('}') {
                    break;
                }
                let key = self.ident()?;
                self.eat('=')?;
                matchers.push((key, self.quoted()?));
                self.skip_ws();
                if self.rest().starts_with(',') {
                    self.eat(',')?;
                } else {
                    break;
                }
            }
            self.eat('}')?;
        }
        Ok(Expr::Selector { name, matchers })
    }

    fn quoted(&mut self) -> Result<String, QueryError> {
        self.eat('"')?;
        let rest = self.rest();
        let end = rest.find('"').ok_or_else(|| {
            QueryError::Parse(format!("unterminated string at byte {}", self.pos))
        })?;
        let value = rest[..end].to_string();
        self.pos += end;
        self.eat('"')?;
        Ok(value)
    }
}

// ------------------------------------------------------------- evaluator

fn eval(
    store: &TimeSeriesStore,
    expr: &Expr,
    grid: &[u64],
    step_ms: u64,
) -> Result<Vec<QuerySeries>, QueryError> {
    match expr {
        Expr::Selector { name, matchers } => {
            eval_scalar(store, name, matchers, grid, step_ms, Func::Increase)
        }
        Expr::Func { func, arg } => {
            let Expr::Selector { name, matchers } = arg.as_ref() else {
                return Err(QueryError::Eval(
                    "function argument must be a selector".into(),
                ));
            };
            eval_scalar(store, name, matchers, grid, step_ms, *func)
        }
        Expr::Quantile { q, arg } => {
            let Expr::Selector { name, matchers } = arg.as_ref() else {
                return Err(QueryError::Eval(
                    "quantile argument must be a selector".into(),
                ));
            };
            if !(0.0..=1.0).contains(q) {
                return Err(QueryError::Eval(format!("quantile {q} outside [0, 1]")));
            }
            eval_quantile(store, name, matchers, *q, grid, step_ms)
        }
        Expr::Sum(inner) => {
            let series = eval(store, inner, grid, step_ms)?;
            Ok(vec![sum_series(&series)])
        }
    }
}

fn matches(labels: &[(String, String)], matchers: &[(String, String)]) -> bool {
    matchers
        .iter()
        .all(|(k, v)| labels.iter().any(|(lk, lv)| lk == k && lv == v))
}

/// Index of the interval `(t - step, t]` a point timestamp falls in, if any.
fn interval_of(grid: &[u64], step_ms: u64, t: u64) -> Option<usize> {
    let first = grid.first()?;
    let start = first.saturating_sub(step_ms);
    if t <= start || t > *grid.last()? {
        return None;
    }
    // Ceil division: the interval whose inclusive end is the first grid
    // timestamp >= t.
    let idx = (t - start).div_ceil(step_ms) as usize - 1;
    (idx < grid.len()).then_some(idx)
}

fn eval_scalar(
    store: &TimeSeriesStore,
    name: &str,
    matchers: &[(String, String)],
    grid: &[u64],
    step_ms: u64,
    func: Func,
) -> Result<Vec<QuerySeries>, QueryError> {
    let data = store.scalar_data(name);
    if data.is_empty() {
        return Err(QueryError::Eval(format!("no history for series {name:?}")));
    }
    let mut out = Vec::new();
    for series in data.iter().filter(|s| matches(&s.labels, matchers)) {
        match (func, series.kind) {
            (Func::Rate | Func::Increase, MetricKind::Gauge) => {
                return Err(QueryError::Eval(format!(
                    "{name} is a gauge; rate()/increase() need a counter"
                )));
            }
            (Func::AvgOverTime | Func::MaxOverTime, MetricKind::Counter) => {
                return Err(QueryError::Eval(format!(
                    "{name} is a counter; use rate() or increase()"
                )));
            }
            _ => {}
        }
        let mut sums = vec![0.0f64; grid.len()];
        let mut maxes = vec![f64::NEG_INFINITY; grid.len()];
        let mut counts = vec![0u64; grid.len()];
        for &(t, v) in &series.points {
            if let Some(i) = interval_of(grid, step_ms, t) {
                sums[i] += v;
                maxes[i] = maxes[i].max(v);
                counts[i] += 1;
            }
        }
        let coverage = coverage_bounds(&series.points, grid, step_ms);
        let mut points = Vec::new();
        for (i, &t) in grid.iter().enumerate() {
            let value = match func {
                // Counters: emit every interval inside the data coverage,
                // zero when quiet.
                Func::Increase => coverage
                    .map(|(lo, hi)| (lo..=hi).contains(&i))
                    .unwrap_or(false)
                    .then_some(sums[i]),
                Func::Rate => coverage
                    .map(|(lo, hi)| (lo..=hi).contains(&i))
                    .unwrap_or(false)
                    .then_some(sums[i] / (step_ms as f64 / 1_000.0)),
                // Gauges: only intervals that actually saw a sample.
                Func::AvgOverTime => (counts[i] > 0).then(|| sums[i] / counts[i] as f64),
                Func::MaxOverTime => (counts[i] > 0).then_some(maxes[i]),
            };
            if let Some(v) = value {
                points.push((t, v));
            }
        }
        out.push(QuerySeries {
            labels: series.labels.clone(),
            points,
        });
    }
    if out.is_empty() {
        return Err(QueryError::Eval(format!(
            "no series of {name:?} match the label filters"
        )));
    }
    Ok(out)
}

/// Grid-interval range `[lo, hi]` covered by the series' retained points.
fn coverage_bounds(points: &[(u64, f64)], grid: &[u64], step_ms: u64) -> Option<(usize, usize)> {
    let first_t = points.first()?.0;
    let last_t = points.last()?.0;
    let lo = interval_of(grid, step_ms, first_t).unwrap_or(0);
    let hi = interval_of(grid, step_ms, last_t).unwrap_or(grid.len().saturating_sub(1));
    let grid_start = grid.first()?.saturating_sub(step_ms);
    if last_t <= grid_start || first_t > *grid.last()? {
        return None;
    }
    Some((lo, hi))
}

fn eval_quantile(
    store: &TimeSeriesStore,
    name: &str,
    matchers: &[(String, String)],
    q: f64,
    grid: &[u64],
    step_ms: u64,
) -> Result<Vec<QuerySeries>, QueryError> {
    let data = store.hist_data(name);
    if data.is_empty() {
        return Err(QueryError::Eval(format!(
            "no histogram history for {name:?}"
        )));
    }
    let mut out = Vec::new();
    for series in data.iter().filter(|s| matches(&s.labels, matchers)) {
        let n_buckets = series.points.first().map(|(_, c)| c.len()).unwrap_or(0);
        let mut merged: Vec<Vec<u64>> = vec![vec![0; n_buckets]; grid.len()];
        for (t, counts) in &series.points {
            if let Some(i) = interval_of(grid, step_ms, *t) {
                for (acc, c) in merged[i].iter_mut().zip(counts) {
                    *acc += c;
                }
            }
        }
        let mut points = Vec::new();
        for (i, &t) in grid.iter().enumerate() {
            let v = log2_bucket_quantile_us(&merged[i], q);
            if v.is_finite() {
                points.push((t, v));
            }
        }
        out.push(QuerySeries {
            labels: series.labels.clone(),
            points,
        });
    }
    if out.is_empty() {
        return Err(QueryError::Eval(format!(
            "no series of {name:?} match the label filters"
        )));
    }
    Ok(out)
}

/// Pointwise sum across series; collapses labels to the empty set.
fn sum_series(series: &[QuerySeries]) -> QuerySeries {
    let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for s in series {
        for &(t, v) in &s.points {
            *acc.entry(t).or_insert(0.0) += v;
        }
    }
    QuerySeries {
        labels: Vec::new(),
        points: acc.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{MetricsSnapshot, Sample};

    fn store_with_counter() -> TimeSeriesStore {
        let store = TimeSeriesStore::default();
        // Cumulative counter: +2 per 1s scrape, two labelled series.
        for i in 0..10u64 {
            let mut snap = MetricsSnapshot::new();
            snap.push_metric(
                "ttlg_req_total",
                "test",
                MetricKind::Counter,
                vec![
                    Sample::labelled("schema", "a", (i * 2) as f64),
                    Sample::labelled("schema", "b", i as f64),
                ],
            );
            snap.push_metric(
                "ttlg_depth",
                "test",
                MetricKind::Gauge,
                vec![Sample::plain((i % 4) as f64)],
            );
            store.ingest(&snap, (i + 1) * 1_000);
        }
        store
    }

    #[test]
    fn parses_and_rejects() {
        assert!(parse("rate(ttlg_req_total)").is_ok());
        assert!(parse("quantile_over_time(0.99, ttlg_exec_latency_us)").is_ok());
        assert!(parse("sum(rate(ttlg_req_total{schema=\"a\"}))").is_ok());
        assert!(parse("ttlg_req_total{schema=\"a\",tenant=\"t\"}").is_ok());
        assert!(parse("rate(").is_err());
        assert!(parse("rate(x) trailing").is_err());
        assert!(parse("nope(x)").is_err());
        assert!(parse("").is_err());
        assert!(parse("x{a=\"unterminated}").is_err());
    }

    #[test]
    fn increase_and_rate_over_counter() {
        let store = store_with_counter();
        // Grid: 10 × 1s steps ending at the last scrape.
        let r = eval_range(
            &store,
            "increase(ttlg_req_total{schema=\"a\"})",
            10_000,
            10_000,
            1_000,
        )
        .unwrap();
        assert_eq!(r.series.len(), 1);
        let total: f64 = r.series[0].points.iter().map(|(_, v)| v).sum();
        // First scrape contributes its raw value 0, then 9 × +2.
        assert_eq!(total, 18.0);
        assert!(r.series[0].points.iter().all(|(_, v)| *v >= 0.0));

        let r = eval_range(
            &store,
            "rate(ttlg_req_total{schema=\"a\"})",
            10_000,
            10_000,
            2_000,
        )
        .unwrap();
        // Steady +2/s → every 2s-interval rate is 2.0 (interior steps).
        let mid: Vec<f64> = r.series[0].points[1..].iter().map(|(_, v)| *v).collect();
        assert!(mid.iter().all(|v| (*v - 2.0).abs() < 1e-9), "{mid:?}");
    }

    #[test]
    fn sum_collapses_labels() {
        let store = store_with_counter();
        let r = eval_range(
            &store,
            "sum(increase(ttlg_req_total))",
            10_000,
            10_000,
            1_000,
        )
        .unwrap();
        assert_eq!(r.series.len(), 1);
        assert!(r.series[0].labels.is_empty());
        let total: f64 = r.series[0].points.iter().map(|(_, v)| v).sum();
        // schema=a grows to 18, schema=b to 9.
        assert_eq!(total, 27.0);
    }

    #[test]
    fn gauge_funcs_and_kind_mismatch() {
        let store = store_with_counter();
        let r = eval_range(&store, "max_over_time(ttlg_depth)", 10_000, 10_000, 5_000).unwrap();
        assert!(r.series[0].points.iter().all(|(_, v)| *v == 3.0));
        let r = eval_range(&store, "avg_over_time(ttlg_depth)", 10_000, 10_000, 10_000).unwrap();
        assert_eq!(r.series[0].points.len(), 1);

        assert!(matches!(
            eval_range(&store, "rate(ttlg_depth)", 10_000, 10_000, 1_000),
            Err(QueryError::Eval(_))
        ));
        assert!(matches!(
            eval_range(
                &store,
                "avg_over_time(ttlg_req_total)",
                10_000,
                10_000,
                1_000
            ),
            Err(QueryError::Eval(_))
        ));
        assert!(matches!(
            eval_range(&store, "rate(ttlg_missing_total)", 10_000, 10_000, 1_000),
            Err(QueryError::Eval(_))
        ));
    }

    #[test]
    fn quantile_over_time_merges_buckets() {
        let store = TimeSeriesStore::default();
        for i in 0..6u64 {
            let mut snap = MetricsSnapshot::new();
            // log2 buckets: [1,2) [2,4) [4,8) +overflow; load shifts from
            // bucket 0 to bucket 2 halfway through.
            let counts = if i < 3 {
                vec![10 * (i + 1), 0, 0, 0]
            } else {
                vec![30, 10 * (i - 2), 0, 0]
            };
            snap.push_histogram(
                "ttlg_lat_us",
                "test",
                Vec::new(),
                vec![2.0, 4.0, 8.0],
                counts,
                0.0,
            );
            store.ingest(&snap, (i + 1) * 1_000);
        }
        let r = eval_range(
            &store,
            "quantile_over_time(0.99, ttlg_lat_us)",
            6_000,
            6_000,
            3_000,
        )
        .unwrap();
        assert_eq!(r.series[0].points.len(), 2);
        let (first, second) = (r.series[0].points[0].1, r.series[0].points[1].1);
        // First half is all bucket-0 observations, second half bucket-1.
        assert!(second > first, "p99 should shift up: {first} -> {second}");

        assert!(matches!(
            eval_range(
                &store,
                "quantile_over_time(1.5, ttlg_lat_us)",
                6_000,
                6_000,
                1_000
            ),
            Err(QueryError::Eval(_))
        ));
    }

    #[test]
    fn bad_windows_rejected() {
        let store = store_with_counter();
        assert!(eval_range(&store, "ttlg_depth", 10_000, 10_000, 0).is_err());
        assert!(eval_range(&store, "ttlg_depth", 10_000, 1_000, 2_000).is_err());
    }
}
