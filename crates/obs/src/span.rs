//! Lightweight spans and events.
//!
//! A [`SpanRecord`] is a completed, timed region of work with string
//! attributes; an [`Event`] is a point-in-time observation. Both are
//! delivered to a [`Subscriber`] — the runtime holds one `Arc<dyn
//! Subscriber>` and calls into it from the request hot path, so
//! implementations must be cheap and `Send + Sync`.
//!
//! There is deliberately no thread-local "current span" machinery: TTLG's
//! request lifecycle is short and fully owned by one worker, so the
//! service constructs the span explicitly and reports it once, finished.

use std::sync::OnceLock;
use std::time::Instant;

/// Attribute value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter-like values.
    U64(u64),
    /// Signed values (residuals).
    I64(i64),
    /// Continuous values (times, rates).
    F64(f64),
    /// Labels.
    Str(String),
    /// Flags.
    Bool(bool),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A completed, timed region of work.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static name, e.g. `"request"`, `"plan-fetch"`, `"execute"`.
    pub name: &'static str,
    /// Process-relative start time, ns (see [`clock_ns`]).
    pub start_ns: u64,
    /// Duration, ns.
    pub duration_ns: u64,
    /// Attributes (schema, cache outcome, counters, ...).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A point-in-time observation.
#[derive(Debug, Clone)]
pub struct Event {
    /// Static name, e.g. `"plan-failure"`.
    pub name: &'static str,
    /// Process-relative timestamp, ns.
    pub at_ns: u64,
    /// Attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// Receiver for spans and events. Implementations must be cheap: they run
/// on the request hot path.
pub trait Subscriber: Send + Sync {
    /// A span finished.
    fn on_span(&self, span: &SpanRecord);
    /// An event occurred.
    fn on_event(&self, event: &Event);
}

/// Discards everything (the default when tracing is off).
#[derive(Debug, Default)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn on_span(&self, _span: &SpanRecord) {}
    fn on_event(&self, _event: &Event) {}
}

/// Collects everything under a mutex — for tests and ad-hoc debugging,
/// not production traffic.
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    spans: std::sync::Mutex<Vec<SpanRecord>>,
    events: std::sync::Mutex<Vec<Event>>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of every span seen so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("collector poisoned").clone()
    }

    /// Copy of every event seen so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("collector poisoned").clone()
    }
}

impl Subscriber for CollectingSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        self.spans
            .lock()
            .expect("collector poisoned")
            .push(span.clone());
    }
    fn on_event(&self, event: &Event) {
        self.events
            .lock()
            .expect("collector poisoned")
            .push(event.clone());
    }
}

/// Monotonic nanoseconds since the first call in this process. Anchoring
/// to a process-local epoch keeps timestamps small, strictly comparable,
/// and independent of wall-clock adjustments.
pub fn clock_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = clock_ns();
        let b = clock_ns();
        assert!(b >= a);
    }

    #[test]
    fn collector_records_spans_and_events() {
        let c = CollectingSubscriber::new();
        c.on_span(&SpanRecord {
            name: "request",
            start_ns: 1,
            duration_ns: 10,
            attrs: vec![("schema", AttrValue::Str("Copy".into()))],
        });
        c.on_event(&Event {
            name: "plan-failure",
            at_ns: 5,
            attrs: vec![("reason", AttrValue::Str("rank mismatch".into()))],
        });
        let spans = c.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].attr("schema"),
            Some(&AttrValue::Str("Copy".into()))
        );
        assert!(spans[0].attr("missing").is_none());
        assert_eq!(c.events().len(), 1);
    }

    #[test]
    fn null_subscriber_is_a_no_op() {
        let n = NullSubscriber;
        n.on_span(&SpanRecord {
            name: "x",
            start_ns: 0,
            duration_ns: 0,
            attrs: Vec::new(),
        });
        n.on_event(&Event {
            name: "y",
            at_ns: 0,
            attrs: Vec::new(),
        });
    }

    #[test]
    fn attr_value_displays() {
        assert_eq!(AttrValue::U64(3).to_string(), "3");
        assert_eq!(AttrValue::I64(-3).to_string(), "-3");
        assert_eq!(AttrValue::Bool(true).to_string(), "true");
        assert_eq!(AttrValue::Str("hi".into()).to_string(), "hi");
    }
}
