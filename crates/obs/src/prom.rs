//! Prometheus text-format exporter (exposition format v0.0.4).
//!
//! Renders a [`MetricsSnapshot`] to the plain-text form a Prometheus
//! scrape expects: `# HELP` / `# TYPE` headers, labelled samples, and
//! histograms in cumulative `_bucket{le="..."}` / `_sum` / `_count`
//! form.

use crate::snapshot::{Histogram, Metric, MetricsSnapshot};

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(pairs: &[(String, String)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn render_metric(out: &mut String, m: &Metric) {
    use std::fmt::Write as _;
    writeln!(out, "# HELP {} {}", m.name, m.help).unwrap();
    writeln!(out, "# TYPE {} {}", m.name, m.kind.as_str()).unwrap();
    for s in &m.samples {
        writeln!(
            out,
            "{}{} {}",
            m.name,
            render_labels(&s.labels),
            format_value(s.value)
        )
        .unwrap();
    }
}

fn render_histogram(out: &mut String, h: &Histogram) {
    use std::fmt::Write as _;
    writeln!(out, "# HELP {} {}", h.name, h.help).unwrap();
    writeln!(out, "# TYPE {} histogram", h.name).unwrap();
    let cum = h.cumulative();
    for (i, &c) in cum.iter().enumerate() {
        let le = if i < h.upper_bounds.len() {
            format_value(h.upper_bounds[i])
        } else {
            "+Inf".to_string()
        };
        let mut labels = h.labels.clone();
        labels.push(("le".to_string(), le));
        writeln!(out, "{}_bucket{} {}", h.name, render_labels(&labels), c).unwrap();
    }
    writeln!(
        out,
        "{}_sum{} {}",
        h.name,
        render_labels(&h.labels),
        format_value(h.sum)
    )
    .unwrap();
    writeln!(
        out,
        "{}_count{} {}",
        h.name,
        render_labels(&h.labels),
        h.count()
    )
    .unwrap();
}

/// Render the snapshot as Prometheus exposition text.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for m in &snapshot.metrics {
        render_metric(&mut out, m);
    }
    for h in &snapshot.histograms {
        render_histogram(&mut out, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{MetricKind, Sample};

    fn sample_snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.push_metric(
            "ttlg_requests_total",
            "Completed requests by schema.",
            MetricKind::Counter,
            vec![
                Sample::labelled("schema", "Copy", 3.0),
                Sample::labelled("schema", "Naive", 1.0),
            ],
        );
        s.push_metric(
            "ttlg_latency_p99_us",
            "p99 latency.",
            MetricKind::Gauge,
            vec![Sample::plain(12.5)],
        );
        s.push_histogram(
            "ttlg_plan_latency_us",
            "Plan latency histogram.",
            Vec::new(),
            vec![2.0, 4.0],
            vec![5, 2, 1],
            30.0,
        );
        s
    }

    #[test]
    fn renders_help_type_and_samples() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# HELP ttlg_requests_total Completed requests by schema."));
        assert!(text.contains("# TYPE ttlg_requests_total counter"));
        assert!(text.contains("ttlg_requests_total{schema=\"Copy\"} 3"));
        assert!(text.contains("# TYPE ttlg_latency_p99_us gauge"));
        assert!(text.contains("ttlg_latency_p99_us 12.5"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let text = render(&sample_snapshot());
        assert!(text.contains("ttlg_plan_latency_us_bucket{le=\"2\"} 5"));
        assert!(text.contains("ttlg_plan_latency_us_bucket{le=\"4\"} 7"));
        assert!(text.contains("ttlg_plan_latency_us_bucket{le=\"+Inf\"} 8"));
        assert!(text.contains("ttlg_plan_latency_us_sum 30"));
        assert!(text.contains("ttlg_plan_latency_us_count 8"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut s = MetricsSnapshot::new();
        s.push_metric(
            "x_total",
            "h",
            MetricKind::Counter,
            vec![Sample::labelled("k", "a\"b\\c\nd", 1.0)],
        );
        let text = render(&s);
        assert!(text.contains(r#"x_total{k="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn every_line_is_well_formed() {
        // Minimal line-by-line parse: comments start with '# HELP' or
        // '# TYPE'; samples are `name[{labels}] value` with a numeric
        // value.
        let text = render(&sample_snapshot());
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "bad value in line: {line}"
            );
        }
    }
}
