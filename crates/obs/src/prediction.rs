//! Prediction-accuracy tracking.
//!
//! The paper's Table II validates its regression models with the
//! geometric mean of `max(predicted/measured, measured/predicted)` per
//! schema. [`PredictionTracker`] keeps that running figure — plus signed
//! residuals and a predicted/measured-ratio histogram — for live
//! traffic, so model drift is visible while the service runs and the
//! residual stream can later feed a measure-mode autotuner as training
//! points.
//!
//! Everything is plain atomics: counts and residual sums are integers
//! (nanoseconds), log-ratios are fixed-point micro-nats. Concurrent
//! recording therefore loses no updates and integer totals are exact.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Upper bounds of the predicted/measured ratio histogram buckets; the
/// implicit last bucket is `(2, ∞)`. A perfectly calibrated model lands
/// everything in the `(0.95, 1.05]` bucket.
pub const RATIO_BUCKETS: [f64; 6] = [0.5, 0.8, 0.95, 1.05, 1.25, 2.0];

/// Fixed-point scale for log-ratio accumulation (micro-nats).
const LN_SCALE: f64 = 1e6;

#[derive(Debug, Default)]
struct Slot {
    count: AtomicU64,
    /// Sum of signed residuals `predicted - measured`, ns.
    sum_residual_ns: AtomicI64,
    /// Sum of absolute residuals, ns.
    sum_abs_residual_ns: AtomicU64,
    /// Sum of `|ln(predicted/measured)|` in micro-nats.
    sum_abs_ln_ratio: AtomicU64,
    /// Sum of `predicted/measured` ratios in micro-units (for the ratio
    /// histogram's `_sum`).
    sum_ratio: AtomicU64,
    /// Ratio histogram: one counter per [`RATIO_BUCKETS`] bound plus the
    /// overflow bucket.
    ratio_hist: [AtomicU64; RATIO_BUCKETS.len() + 1],
}

/// Aggregate accuracy figures for one label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionStats {
    /// Samples recorded.
    pub count: u64,
    /// Mean signed residual `predicted - measured`, ns (positive = the
    /// model over-predicts).
    pub mean_residual_ns: f64,
    /// Mean absolute residual, ns.
    pub mean_abs_residual_ns: f64,
    /// Geometric mean of `max(p/m, m/p)` — the paper's Table II metric;
    /// 1.0 = perfect.
    pub geo_mean_error: f64,
}

impl PredictionStats {
    fn empty() -> Self {
        PredictionStats {
            count: 0,
            mean_residual_ns: 0.0,
            mean_abs_residual_ns: 0.0,
            geo_mean_error: 1.0,
        }
    }
}

/// Tracks model-vs-measured kernel times per label (one label per
/// schema, by convention).
#[derive(Debug)]
pub struct PredictionTracker {
    labels: Vec<String>,
    slots: Vec<Slot>,
}

impl PredictionTracker {
    /// A tracker with one slot per label.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(labels: I) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        let slots = (0..labels.len()).map(|_| Slot::default()).collect();
        PredictionTracker { labels, slots }
    }

    /// The labels, in slot order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Record one `(predicted, measured)` pair for slot `index`.
    /// Non-finite or non-positive times are ignored (a failed request
    /// has no meaningful residual).
    pub fn record(&self, index: usize, predicted_ns: f64, measured_ns: f64) {
        if index >= self.slots.len()
            || !predicted_ns.is_finite()
            || !measured_ns.is_finite()
            || predicted_ns <= 0.0
            || measured_ns <= 0.0
        {
            return;
        }
        let slot = &self.slots[index];
        let residual = predicted_ns - measured_ns;
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum_residual_ns
            .fetch_add(residual.round() as i64, Ordering::Relaxed);
        slot.sum_abs_residual_ns
            .fetch_add(residual.abs().round() as u64, Ordering::Relaxed);
        let ratio = predicted_ns / measured_ns;
        slot.sum_abs_ln_ratio.fetch_add(
            (ratio.ln().abs() * LN_SCALE).round() as u64,
            Ordering::Relaxed,
        );
        slot.sum_ratio
            .fetch_add((ratio * LN_SCALE).round() as u64, Ordering::Relaxed);
        let bucket = RATIO_BUCKETS
            .iter()
            .position(|&ub| ratio <= ub)
            .unwrap_or(RATIO_BUCKETS.len());
        slot.ratio_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Accuracy figures for one slot.
    pub fn stats(&self, index: usize) -> PredictionStats {
        let Some(slot) = self.slots.get(index) else {
            return PredictionStats::empty();
        };
        let count = slot.count.load(Ordering::Relaxed);
        if count == 0 {
            return PredictionStats::empty();
        }
        let n = count as f64;
        PredictionStats {
            count,
            mean_residual_ns: slot.sum_residual_ns.load(Ordering::Relaxed) as f64 / n,
            mean_abs_residual_ns: slot.sum_abs_residual_ns.load(Ordering::Relaxed) as f64 / n,
            geo_mean_error: (slot.sum_abs_ln_ratio.load(Ordering::Relaxed) as f64 / (LN_SCALE * n))
                .exp(),
        }
    }

    /// Ratio-histogram counts for one slot (one entry per
    /// [`RATIO_BUCKETS`] bound plus the overflow bucket).
    pub fn ratio_counts(&self, index: usize) -> Vec<u64> {
        match self.slots.get(index) {
            Some(slot) => slot
                .ratio_hist
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Sum of `predicted/measured` ratios for one slot (pairs with
    /// [`Self::ratio_counts`] as a histogram's `_sum`).
    pub fn ratio_sum(&self, index: usize) -> f64 {
        match self.slots.get(index) {
            Some(slot) => slot.sum_ratio.load(Ordering::Relaxed) as f64 / LN_SCALE,
            None => 0.0,
        }
    }

    /// Total samples across every slot.
    pub fn total_count(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Sample-weighted geometric mean of `max(p/m, m/p)` across every
    /// slot — the single figure a refinement loop tries to drive toward
    /// 1.0. Returns 1.0 when no samples have been recorded.
    pub fn overall_geo_mean_error(&self) -> f64 {
        let mut n = 0u64;
        let mut sum_abs_ln = 0u64;
        for slot in &self.slots {
            n += slot.count.load(Ordering::Relaxed);
            sum_abs_ln += slot.sum_abs_ln_ratio.load(Ordering::Relaxed);
        }
        if n == 0 {
            1.0
        } else {
            (sum_abs_ln as f64 / (LN_SCALE * n as f64)).exp()
        }
    }

    /// Render non-empty slots as a small table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, label) in self.labels.iter().enumerate() {
            let st = self.stats(i);
            if st.count == 0 {
                continue;
            }
            writeln!(
                s,
                "  {:<24} n={:<6} mean residual {:>+10.0} ns  mean |residual| {:>9.0} ns  geo-mean error {:.3}x",
                label, st.count, st.mean_residual_ns, st.mean_abs_residual_ns, st.geo_mean_error
            )
            .unwrap();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_unit_error() {
        let t = PredictionTracker::new(["a", "b"]);
        for _ in 0..10 {
            t.record(0, 1000.0, 1000.0);
        }
        let s = t.stats(0);
        assert_eq!(s.count, 10);
        assert_eq!(s.mean_residual_ns, 0.0);
        assert!((s.geo_mean_error - 1.0).abs() < 1e-6);
        assert_eq!(t.stats(1).count, 0);
        assert_eq!(t.stats(1).geo_mean_error, 1.0);
    }

    #[test]
    fn signed_residuals_and_geo_error() {
        let t = PredictionTracker::new(["s"]);
        t.record(0, 2000.0, 1000.0); // over-predicts 2x
        t.record(0, 500.0, 1000.0); // under-predicts 2x
        let s = t.stats(0);
        assert_eq!(s.count, 2);
        // (+1000 - 500) / 2
        assert!((s.mean_residual_ns - 250.0).abs() < 1e-9);
        assert!((s.mean_abs_residual_ns - 750.0).abs() < 1e-9);
        // both samples are a factor-2 miss
        assert!(
            (s.geo_mean_error - 2.0).abs() < 1e-3,
            "{}",
            s.geo_mean_error
        );
    }

    #[test]
    fn ratio_histogram_buckets() {
        let t = PredictionTracker::new(["s"]);
        t.record(0, 1000.0, 1000.0); // ratio 1.0 -> (0.95, 1.05]
        t.record(0, 3000.0, 1000.0); // ratio 3.0 -> overflow
        t.record(0, 400.0, 1000.0); // ratio 0.4 -> first bucket
        let counts = t.ratio_counts(0);
        assert_eq!(counts.len(), RATIO_BUCKETS.len() + 1);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[3], 1);
        assert_eq!(counts[RATIO_BUCKETS.len()], 1);
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert!((t.ratio_sum(0) - 4.4).abs() < 1e-6, "{}", t.ratio_sum(0));
    }

    #[test]
    fn overall_geo_mean_error_weights_by_samples() {
        let t = PredictionTracker::new(["a", "b"]);
        assert_eq!(t.overall_geo_mean_error(), 1.0);
        // Slot a: three perfect samples. Slot b: one factor-2 miss.
        for _ in 0..3 {
            t.record(0, 1000.0, 1000.0);
        }
        t.record(1, 2000.0, 1000.0);
        // exp((3*ln 1 + ln 2) / 4) = 2^(1/4)
        let expected = 2.0f64.powf(0.25);
        assert!(
            (t.overall_geo_mean_error() - expected).abs() < 1e-3,
            "{}",
            t.overall_geo_mean_error()
        );
    }

    #[test]
    fn rejects_nonsense_samples() {
        let t = PredictionTracker::new(["s"]);
        t.record(0, f64::NAN, 1000.0);
        t.record(0, 1000.0, 0.0);
        t.record(0, -5.0, 10.0);
        t.record(7, 1000.0, 1000.0); // out of range
        assert_eq!(t.total_count(), 0);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let t = std::sync::Arc::new(PredictionTracker::new(["a", "b", "c"]));
        const PER_THREAD: u64 = 500;
        std::thread::scope(|s| {
            for w in 0..8usize {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // residual is always +100 ns, exactly.
                        let m = 1000.0 + (i % 7) as f64 * 100.0;
                        t.record(w % 3, m + 100.0, m);
                    }
                });
            }
        });
        assert_eq!(t.total_count(), 8 * PER_THREAD);
        // 8 threads over 3 slots: slots 0/1/2 get 3/3/2 threads.
        assert_eq!(t.stats(0).count, 3 * PER_THREAD);
        assert_eq!(t.stats(1).count, 3 * PER_THREAD);
        assert_eq!(t.stats(2).count, 2 * PER_THREAD);
        for i in 0..3 {
            let s = t.stats(i);
            assert!((s.mean_residual_ns - 100.0).abs() < 1e-9, "lost updates");
            assert!((s.mean_abs_residual_ns - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn render_mentions_labels_with_data() {
        let t = PredictionTracker::new(["Copy", "Naive"]);
        t.record(0, 1000.0, 900.0);
        let out = t.render();
        assert!(out.contains("Copy"));
        assert!(!out.contains("Naive"));
        assert!(out.contains("geo-mean error"));
    }
}
