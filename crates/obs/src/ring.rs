//! A bounded ring buffer of recent traces.
//!
//! Writers claim a slot with a single atomic `fetch_add` on the head
//! cursor — the hot path never contends on a shared lock. Each slot's
//! payload is guarded by its own tiny mutex, which is uncontended except
//! when the ring wraps fast enough for two writers to land on the same
//! slot (the newer write wins) or a reader is copying that slot out.
//! Readers take a snapshot of the most recent entries, newest first.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fixed-capacity concurrent ring of recent values.
#[derive(Debug)]
pub struct TraceRing<T> {
    slots: Vec<Mutex<Option<(u64, T)>>>,
    head: AtomicU64,
}

impl<T: Clone> TraceRing<T> {
    /// A ring holding the most recent `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceRing {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total values ever pushed (not the resident count).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Push a value, overwriting the oldest entry once full. Returns the
    /// value's sequence number (0-based, monotone).
    pub fn push(&self, value: T) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot].lock().expect("ring slot poisoned");
        // A slower writer from a previous lap must not clobber a newer
        // entry that already landed in this slot.
        match guard.as_ref() {
            Some((existing, _)) if *existing > seq => {}
            _ => *guard = Some((seq, value)),
        }
        seq
    }

    /// The most recent `n` entries, newest first.
    pub fn recent(&self, n: usize) -> Vec<T> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let want = (n as u64).min(head).min(cap);
        let mut out = Vec::with_capacity(want as usize);
        let mut seq = head;
        while seq > 0 && (out.len() as u64) < want {
            seq -= 1;
            let slot = (seq % cap) as usize;
            let guard = self.slots[slot].lock().expect("ring slot poisoned");
            if let Some((s, v)) = guard.as_ref() {
                if *s == seq {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Every resident entry, newest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.recent(self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_entries() {
        let ring: TraceRing<u64> = TraceRing::new(4);
        for i in 0..10u64 {
            ring.push(i);
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.recent(2), vec![9, 8]);
        assert_eq!(ring.snapshot(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn recent_on_partially_filled_ring() {
        let ring: TraceRing<u32> = TraceRing::new(8);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.recent(10), vec![2, 1]);
        let empty: TraceRing<u32> = TraceRing::new(8);
        assert!(empty.recent(3).is_empty());
    }

    #[test]
    fn capacity_is_at_least_one() {
        let ring: TraceRing<u8> = TraceRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.snapshot(), vec![2]);
    }

    #[test]
    fn concurrent_pushes_lose_nothing_overall() {
        let ring: std::sync::Arc<TraceRing<u64>> = std::sync::Arc::new(TraceRing::new(1024));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100u64 {
                        ring.push(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 800);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 800);
        // Every pushed value is distinct, so the snapshot must be too.
        let set: std::collections::HashSet<u64> = snap.iter().copied().collect();
        assert_eq!(set.len(), 800);
    }
}
