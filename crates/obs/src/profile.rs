//! Hierarchical phase profiles over the trace ring.
//!
//! The service decomposes every request into queue-wait / plan-fetch /
//! execute and records the result as a [`RequestTrace`] in the
//! [`crate::TraceRing`]. This module folds a ring snapshot into
//! **phase profiles** keyed by `(schema, shape-class)`:
//!
//! * a *shape class* ([`shape_class`]) collapses concrete extents into
//!   `r<rank>v<log2 volume>` so the label set stays bounded while still
//!   separating "rank-4, ~4k elements" from "rank-3, ~64k elements";
//! * cardinality is additionally capped ([`ProfileOptions::max_keys`]):
//!   once the cap is reached, new keys fold into the [`OTHER_KEY`]
//!   bucket instead of growing the label set without bound;
//! * per key, the profile keeps phase-time totals **and** per
//!   log2-total-latency-bucket phase accumulators, so it can answer not
//!   just "where does the *mean* go" but "which phase dominates at p99"
//!   ([`PhaseProfile::shares_at`]) — the question a tail-latency study
//!   actually asks.
//!
//! Aggregation is offline (over a snapshot), so the request hot path
//! never touches any of this; the only hot-path cost remains the ring's
//! single `fetch_add`.

use crate::quantile::log2_bucket_quantile_us;
use crate::snapshot::{MetricKind, MetricsSnapshot, Sample};
use crate::RequestTrace;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Number of log2 total-latency buckets a profile keeps per key.
/// Bucket 0 = `[0, 2)` µs, bucket `i` = `[2^i, 2^{i+1})` µs, the last
/// bucket is the overflow — the same scheme as the runtime histograms,
/// so quantiles agree across surfaces.
pub const PROFILE_BUCKETS: usize = 20;

/// The phase names, in trace order.
pub const PHASES: [&str; 3] = ["queue-wait", "plan-fetch", "execute"];

/// Overflow key used once [`ProfileOptions::max_keys`] distinct
/// `(schema, shape-class)` pairs exist.
pub const OTHER_KEY: &str = "_other";

/// Collapse concrete extents into a bounded-cardinality shape class:
/// `r<rank>v<floor(log2 volume)>`. Example: `[6, 5, 4, 3]` (360
/// elements) → `"r4v8"`.
pub fn shape_class(extents: &[usize]) -> String {
    let rank = extents.len();
    let volume = extents
        .iter()
        .fold(1u128, |acc, &e| acc.saturating_mul(e as u128));
    let log2v = 127 - volume.max(1).leading_zeros();
    format!("r{rank}v{log2v}")
}

/// Per-phase shares of total time, each in `[0, 1]` (all zero when
/// there is no data).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseShares {
    pub queue_wait: f64,
    pub plan_fetch: f64,
    pub execute: f64,
}

impl PhaseShares {
    fn from_ns(queue: u64, plan: u64, exec: u64) -> PhaseShares {
        let total = (queue + plan + exec) as f64;
        if total <= 0.0 {
            return PhaseShares::default();
        }
        PhaseShares {
            queue_wait: queue as f64 / total,
            plan_fetch: plan as f64 / total,
            execute: exec as f64 / total,
        }
    }

    /// Name of the phase with the largest share (`execute` wins ties,
    /// matching the intuition that compute is the default suspect).
    pub fn dominant(&self) -> &'static str {
        if self.queue_wait > self.execute && self.queue_wait >= self.plan_fetch {
            PHASES[0]
        } else if self.plan_fetch > self.execute && self.plan_fetch > self.queue_wait {
            PHASES[1]
        } else {
            PHASES[2]
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BucketAccum {
    count: u64,
    queue_ns: u64,
    plan_ns: u64,
    exec_ns: u64,
}

/// Aggregated phase timings for one `(schema, shape-class)` key.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    pub schema: String,
    pub shape_class: String,
    /// Requests folded into this profile.
    pub requests: u64,
    /// Requests that ran on an autotuner-warmed (measured) plan.
    pub warmed_requests: u64,
    pub queue_wait_ns: u64,
    pub plan_fetch_ns: u64,
    pub execute_ns: u64,
    buckets: Vec<BucketAccum>,
}

impl PhaseProfile {
    fn new(schema: String, shape_class: String) -> PhaseProfile {
        PhaseProfile {
            schema,
            shape_class,
            requests: 0,
            warmed_requests: 0,
            queue_wait_ns: 0,
            plan_fetch_ns: 0,
            execute_ns: 0,
            buckets: vec![BucketAccum::default(); PROFILE_BUCKETS],
        }
    }

    fn observe(&mut self, t: &RequestTrace) {
        self.requests += 1;
        if t.warmed {
            self.warmed_requests += 1;
        }
        self.queue_wait_ns += t.queue_wait_ns;
        self.plan_fetch_ns += t.plan_fetch_ns;
        self.execute_ns += t.execute_ns;
        let b = bucket_for_ns(t.total_ns());
        let acc = &mut self.buckets[b];
        acc.count += 1;
        acc.queue_ns += t.queue_wait_ns;
        acc.plan_ns += t.plan_fetch_ns;
        acc.exec_ns += t.execute_ns;
    }

    /// Total attributed time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns + self.plan_fetch_ns + self.execute_ns
    }

    /// Overall phase shares (across all requests).
    pub fn shares(&self) -> PhaseShares {
        PhaseShares::from_ns(self.queue_wait_ns, self.plan_fetch_ns, self.execute_ns)
    }

    /// Estimated total-latency quantile in µs (NaN when empty, per the
    /// [`log2_bucket_quantile_us`] contract).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.count).collect();
        log2_bucket_quantile_us(&counts, q)
    }

    /// Phase shares *within the bucket covering quantile `q`* — i.e.
    /// which phase dominates requests around (say) p99, not on average.
    /// `None` when the profile is empty.
    pub fn shares_at(&self, q: f64) -> Option<PhaseShares> {
        let total: u64 = self.buckets.iter().map(|b| b.count).sum();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cum = 0u64;
        for acc in &self.buckets {
            if acc.count == 0 {
                continue;
            }
            cum += acc.count;
            if (cum as f64) >= rank {
                return Some(PhaseShares::from_ns(acc.queue_ns, acc.plan_ns, acc.exec_ns));
            }
        }
        let last = self.buckets.iter().rev().find(|b| b.count > 0)?;
        Some(PhaseShares::from_ns(
            last.queue_ns,
            last.plan_ns,
            last.exec_ns,
        ))
    }
}

fn bucket_for_ns(ns: u64) -> usize {
    let us = ns / 1_000;
    if us < 2 {
        return 0;
    }
    let b = (63 - us.leading_zeros()) as usize;
    b.min(PROFILE_BUCKETS - 1)
}

/// Aggregation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOptions {
    /// Maximum distinct `(schema, shape-class)` keys before folding into
    /// [`OTHER_KEY`].
    pub max_keys: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions { max_keys: 64 }
    }
}

/// Fold a ring snapshot into per-`(schema, shape-class)` profiles,
/// sorted by total attributed time (descending) so the renderers can
/// print the hottest keys first. Traces that failed before planning
/// (empty schema) are labelled `"unplanned"`.
pub fn aggregate(traces: &[RequestTrace], opts: &ProfileOptions) -> Vec<PhaseProfile> {
    let mut map: HashMap<(String, String), PhaseProfile> = HashMap::new();
    for t in traces {
        let schema = if t.schema.is_empty() {
            "unplanned".to_string()
        } else {
            t.schema.clone()
        };
        let mut key = (schema, t.shape_class.clone());
        if !map.contains_key(&key) && map.len() >= opts.max_keys.max(1) {
            key = (OTHER_KEY.to_string(), OTHER_KEY.to_string());
        }
        map.entry(key.clone())
            .or_insert_with(|| PhaseProfile::new(key.0, key.1))
            .observe(t);
    }
    let mut profiles: Vec<PhaseProfile> = map.into_values().collect();
    profiles.sort_by(|a, b| {
        b.total_ns()
            .cmp(&a.total_ns())
            .then_with(|| a.schema.cmp(&b.schema))
            .then_with(|| a.shape_class.cmp(&b.shape_class))
    });
    profiles
}

/// Render profiles as a flame-style text tree: one node per
/// `(schema, shape-class)` key sized by total attributed time, with
/// phase children sized by their share.
pub fn render_flame(profiles: &[PhaseProfile]) -> String {
    let mut out = String::new();
    let grand_total: u64 = profiles.iter().map(|p| p.total_ns()).sum();
    let _ = writeln!(
        out,
        "phase profile ({} keys, {:.1} ms attributed)",
        profiles.len(),
        grand_total as f64 / 1e6
    );
    for (i, p) in profiles.iter().enumerate() {
        let last = i + 1 == profiles.len();
        let branch = if last { "└─" } else { "├─" };
        let stem = if last { "  " } else { "│ " };
        let pct = if grand_total > 0 {
            100.0 * p.total_ns() as f64 / grand_total as f64
        } else {
            0.0
        };
        let p99 = p.quantile_us(0.99);
        let p99s = if p99.is_nan() {
            "-".to_string()
        } else {
            format!("{p99:.0}us")
        };
        let _ = writeln!(
            out,
            "{branch} {}/{} {} {:5.1}%  n={} warmed={} p99~{}",
            p.schema,
            p.shape_class,
            bar(pct),
            pct,
            p.requests,
            p.warmed_requests,
            p99s
        );
        let shares = p.shares();
        let tail = p.shares_at(0.99).unwrap_or_default();
        let rows = [
            (PHASES[0], shares.queue_wait, tail.queue_wait),
            (PHASES[1], shares.plan_fetch, tail.plan_fetch),
            (PHASES[2], shares.execute, tail.execute),
        ];
        for (j, (name, mean, at_tail)) in rows.iter().enumerate() {
            let leaf = if j + 1 == rows.len() {
                "└─"
            } else {
                "├─"
            };
            let _ = writeln!(
                out,
                "{stem} {leaf} {:<10} {} {:5.1}%  (p99 bucket {:5.1}%)",
                name,
                bar(mean * 100.0),
                mean * 100.0,
                at_tail * 100.0
            );
        }
    }
    out
}

fn bar(pct: f64) -> String {
    let filled = ((pct / 10.0).round() as usize).min(10);
    let mut s = String::with_capacity(10);
    for i in 0..10 {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Export profiles into a [`MetricsSnapshot`] (bounded cardinality is
/// guaranteed upstream by [`ProfileOptions::max_keys`]).
pub fn export_into(snap: &mut MetricsSnapshot, profiles: &[PhaseProfile]) {
    let mut requests = Vec::new();
    let mut phase_ns = Vec::new();
    let mut p99 = Vec::new();
    for p in profiles {
        let key_labels = vec![
            ("schema".to_string(), p.schema.clone()),
            ("shape_class".to_string(), p.shape_class.clone()),
        ];
        requests.push(Sample {
            labels: key_labels.clone(),
            value: p.requests as f64,
        });
        for (phase, ns) in [
            (PHASES[0], p.queue_wait_ns),
            (PHASES[1], p.plan_fetch_ns),
            (PHASES[2], p.execute_ns),
        ] {
            let mut labels = key_labels.clone();
            labels.push(("phase".to_string(), phase.to_string()));
            phase_ns.push(Sample {
                labels,
                value: ns as f64,
            });
        }
        p99.push(Sample {
            labels: key_labels,
            value: p.quantile_us(0.99),
        });
    }
    snap.push_metric(
        "ttlg_profile_requests",
        "Requests aggregated per (schema, shape_class) profile key",
        MetricKind::Gauge,
        requests,
    );
    snap.push_metric(
        "ttlg_profile_phase_ns",
        "Attributed time per profile key and phase, in nanoseconds",
        MetricKind::Gauge,
        phase_ns,
    );
    snap.push_metric(
        "ttlg_profile_p99_us",
        "Estimated p99 total latency per profile key, in microseconds (NaN when empty)",
        MetricKind::Gauge,
        p99,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(schema: &str, class: &str, queue: u64, plan: u64, exec: u64) -> RequestTrace {
        RequestTrace {
            schema: schema.to_string(),
            shape_class: class.to_string(),
            ok: true,
            queue_wait_ns: queue,
            plan_fetch_ns: plan,
            execute_ns: exec,
            ..Default::default()
        }
    }

    #[test]
    fn shape_class_is_rank_and_log2_volume() {
        assert_eq!(shape_class(&[6, 5, 4, 3]), "r4v8"); // 360 elements
        assert_eq!(shape_class(&[16, 16, 16]), "r3v12"); // 4096 elements
        assert_eq!(shape_class(&[1]), "r1v0");
        assert_eq!(shape_class(&[]), "r0v0");
    }

    #[test]
    fn aggregate_groups_by_schema_and_class() {
        let traces = vec![
            trace("Naive", "r3v12", 10, 20, 70),
            trace("Naive", "r3v12", 10, 20, 70),
            trace("Copy", "r2v4", 1, 1, 1),
        ];
        let profiles = aggregate(&traces, &ProfileOptions::default());
        assert_eq!(profiles.len(), 2);
        // Sorted hottest-first.
        assert_eq!(profiles[0].schema, "Naive");
        assert_eq!(profiles[0].requests, 2);
        assert_eq!(profiles[0].execute_ns, 140);
        assert_eq!(profiles[0].shares().dominant(), "execute");
    }

    #[test]
    fn cardinality_cap_folds_into_other() {
        let mut traces = Vec::new();
        for i in 0..10 {
            traces.push(trace("Naive", &format!("r3v{i}"), 1, 1, 1));
        }
        let profiles = aggregate(&traces, &ProfileOptions { max_keys: 4 });
        assert_eq!(profiles.len(), 5); // 4 real keys + _other
        let other = profiles
            .iter()
            .find(|p| p.schema == OTHER_KEY)
            .expect("overflow key present");
        assert_eq!(other.requests, 6);
    }

    #[test]
    fn tail_attribution_differs_from_mean() {
        // 99 fast execute-dominated requests plus one slow queue-wait
        // dominated outlier: the mean says "execute", the p99 bucket
        // says "queue-wait".
        let mut traces: Vec<RequestTrace> = (0..99)
            .map(|_| trace("Naive", "r3v12", 1_000, 1_000, 50_000))
            .collect();
        traces.push(trace("Naive", "r3v12", 40_000_000, 1_000, 50_000));
        let profiles = aggregate(&traces, &ProfileOptions::default());
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.shares().dominant(), "queue-wait"); // outlier dominates the sum
        let tail = p.shares_at(0.999).unwrap();
        assert_eq!(tail.dominant(), "queue-wait");
        let body = p.shares_at(0.5).unwrap();
        assert_eq!(body.dominant(), "execute");
        assert!(p.quantile_us(0.99) > p.quantile_us(0.5));
    }

    #[test]
    fn empty_profile_has_nan_quantile_and_no_tail_shares() {
        let p = PhaseProfile::new("Naive".into(), "r3v12".into());
        assert!(p.quantile_us(0.99).is_nan());
        assert!(p.shares_at(0.99).is_none());
        assert_eq!(p.shares(), PhaseShares::default());
    }

    #[test]
    fn flame_tree_renders_keys_and_phases() {
        let traces = vec![trace("Naive", "r3v12", 10, 20, 70)];
        let profiles = aggregate(&traces, &ProfileOptions::default());
        let tree = render_flame(&profiles);
        assert!(tree.contains("Naive/r3v12"), "{tree}");
        for phase in PHASES {
            assert!(tree.contains(phase), "{tree}");
        }
    }

    #[test]
    fn export_emits_bounded_label_sets() {
        let traces = vec![trace("Naive", "r3v12", 10, 20, 70)];
        let profiles = aggregate(&traces, &ProfileOptions::default());
        let mut snap = MetricsSnapshot::default();
        export_into(&mut snap, &profiles);
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"ttlg_profile_requests"));
        assert!(names.contains(&"ttlg_profile_phase_ns"));
        assert!(names.contains(&"ttlg_profile_p99_us"));
        let phase = snap
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_profile_phase_ns")
            .unwrap();
        assert_eq!(phase.samples.len(), 3);
        assert!(phase.samples.iter().all(|s| s.labels.len() == 3));
    }
}
