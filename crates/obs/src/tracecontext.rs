//! W3C trace-context: `traceparent` parsing/rendering and id generation.
//!
//! The gateway honors an incoming `traceparent` header (version `00`)
//! so a caller that already participates in a distributed trace keeps
//! its trace id through TTLG, and generates a fresh context when the
//! header is absent or malformed (per the W3C spec, a bad header is
//! *restarted*, never propagated).
//!
//! Ids come from a process-global splitmix64 stream seeded once from
//! the monotonic clock and the process id — no external RNG, no
//! syscalls per id, and never the all-zero values the spec forbids.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::span::clock_ns;

/// The sampled bit of the `traceparent` flags octet.
pub const FLAG_SAMPLED: u8 = 0x01;

/// A propagated trace identity: who this request belongs to
/// (`trace_id`), who called us (`parent_span_id`), and the caller's
/// sampling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id; never zero.
    pub trace_id: u128,
    /// The caller's span id (zero when we generated the context
    /// ourselves and there is no caller span).
    pub parent_span_id: u64,
    /// Flags octet; bit 0 is the sampled flag.
    pub flags: u8,
}

impl TraceContext {
    /// Parse a `traceparent` header value. Returns `None` on anything
    /// malformed — the caller should then [`generate`](Self::generate) a
    /// fresh context.
    pub fn parse(header: &str) -> Option<TraceContext> {
        let s = header.trim();
        let mut parts = s.split('-');
        let version = parts.next()?;
        let trace_id = parts.next()?;
        let span_id = parts.next()?;
        let flags = parts.next()?;
        if version.len() != 2 || !is_lower_hex(version) || version == "ff" {
            return None;
        }
        // Version 00 has exactly four fields; future versions may append
        // more, which we accept and ignore.
        if version == "00" && parts.next().is_some() {
            return None;
        }
        if trace_id.len() != 32 || span_id.len() != 16 || flags.len() != 2 {
            return None;
        }
        if !is_lower_hex(trace_id) || !is_lower_hex(span_id) || !is_lower_hex(flags) {
            return None;
        }
        let trace_id = u128::from_str_radix(trace_id, 16).ok()?;
        let parent_span_id = u64::from_str_radix(span_id, 16).ok()?;
        let flags = u8::from_str_radix(flags, 16).ok()?;
        if trace_id == 0 || parent_span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            parent_span_id,
            flags,
        })
    }

    /// A fresh root context with the sampled flag set.
    pub fn generate() -> TraceContext {
        let hi = next_id() as u128;
        let lo = next_id() as u128;
        let trace_id = ((hi << 64) | lo).max(1);
        TraceContext {
            trace_id,
            parent_span_id: 0,
            flags: FLAG_SAMPLED,
        }
    }

    /// Whether the caller asked for this trace to be sampled.
    pub fn sampled(&self) -> bool {
        self.flags & FLAG_SAMPLED != 0
    }

    /// Render a `traceparent` value naming `span_id` as the parent the
    /// next hop should report (our span, when we are the server).
    pub fn traceparent(&self, span_id: u64) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id, span_id, self.flags
        )
    }

    /// The 32-hex trace id — the `:id` of `GET /v1/trace/:id` and the
    /// default `X-Request-Id`.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

fn is_lower_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Parse a 32-hex trace id (as rendered by
/// [`TraceContext::trace_id_hex`]).
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32 || !is_lower_hex(s) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Next span/trace id from the process-global stream; never zero.
pub fn next_id() -> u64 {
    static STATE: OnceLock<AtomicU64> = OnceLock::new();
    let state = STATE.get_or_init(|| {
        let seed = clock_ns() ^ ((std::process::id() as u64) << 32) ^ 0xD6E8_FEB8_6659_FD93;
        AtomicU64::new(seed)
    });
    loop {
        let n = state.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(n);
        if id != 0 {
            return id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let header = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        let ctx = TraceContext::parse(header).expect("valid header");
        assert_eq!(ctx.trace_id, 0x4bf92f3577b34da6a3ce929d0e0e4736);
        assert_eq!(ctx.parent_span_id, 0x00f067aa0ba902b7);
        assert!(ctx.sampled());
        assert_eq!(ctx.traceparent(0x00f067aa0ba902b7), header);
        assert_eq!(ctx.trace_id_hex(), "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(parse_trace_id(&ctx.trace_id_hex()), Some(ctx.trace_id));
    }

    #[test]
    fn unsampled_flag_is_preserved() {
        let ctx =
            TraceContext::parse("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00").unwrap();
        assert!(!ctx.sampled());
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for bad in [
            "",
            "00",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
            "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01", // short trace id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 extra field
            "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        ] {
            assert!(TraceContext::parse(bad).is_none(), "{bad:?} accepted");
        }
    }

    #[test]
    fn future_versions_with_extra_fields_parse() {
        let ctx =
            TraceContext::parse("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-whatever");
        assert!(ctx.is_some());
    }

    #[test]
    fn generated_contexts_are_distinct_sampled_roots() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.trace_id, 0);
        assert_eq!(a.parent_span_id, 0);
        assert!(a.sampled());
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }
}
