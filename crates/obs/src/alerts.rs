//! Rule-based alerting over a [`MetricsSnapshot`].
//!
//! The engine evaluates declarative [`AlertRule`]s against successive
//! snapshots — the same snapshot the exporters render, so anything an
//! operator can scrape, a rule can watch. Three signal shapes cover the
//! rules TTLG needs:
//!
//! * [`Signal::Level`] — the current value of a gauge/counter family
//!   (aggregated across its samples by sum or max), e.g. the prediction
//!   geo-mean error or the SLO burn rate;
//! * [`Signal::Ratio`] — one family divided by another at this instant,
//!   e.g. queue depth over queue capacity;
//! * [`Signal::DeltaRatio`] — the *increase* of one counter divided by
//!   the increase of another since the previous evaluation, e.g. sheds
//!   per routed request. With no previous snapshot (or no denominator
//!   growth) the signal abstains rather than breaching.
//!
//! A rule may additionally declare a history window (`window_ms > 0`).
//! When the engine is given a [`TimeSeriesStore`]
//! ([`AlertEngine::evaluate_with_history`]), such a rule evaluates over
//! the window instead of the instant: `Level`/`Ratio` aggregate the
//! retained samples in the window, and `DeltaRatio` becomes the ratio of
//! counter *increases over the whole window* — so a burst split across
//! three scrapes (numerator growing in one scrape, denominator in
//! others) still breaches, where the two-scrape delta abstains or sees
//! zero. With no store, or no retained data for the rule's families, the
//! rule falls back to the instantaneous two-scrape path, which is also
//! kept warm as the zero-history baseline.
//!
//! Each rule runs a firing/resolved state machine with hysteresis: a
//! rule must breach `for_evals` consecutive evaluations to fire
//! (`inactive → pending → firing`) and clear `resolve_evals`
//! consecutive evaluations to resolve, so one noisy scrape neither
//! pages nor un-pages. Firing state exports as
//! `ttlg_alerts_firing{rule}` and critical firing rules gate readiness
//! (the gateway answers 503 on `/healthz`).

use std::sync::Mutex;

use crate::snapshot::{MetricKind, MetricsSnapshot, Sample};
use crate::tsdb::TimeSeriesStore;

/// How to collapse a family's samples into one scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Sum over all samples (counters split by label).
    Sum,
    /// Maximum over all samples (worst window / worst schema).
    Max,
}

/// What a rule measures.
#[derive(Debug, Clone, Copy)]
pub enum Signal {
    /// Current aggregated value of one family.
    Level { metric: &'static str, agg: Agg },
    /// `num / den` at this evaluation (both aggregated by `agg`);
    /// abstains when the denominator is missing or zero.
    Ratio {
        num: &'static str,
        den: &'static str,
        agg: Agg,
    },
    /// `Δnum / Δden` since the previous evaluation (sum-aggregated);
    /// abstains on the first evaluation or when `Δden <= 0`.
    DeltaRatio {
        num: &'static str,
        den: &'static str,
    },
}

/// Comparison direction for the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Breach when `value > threshold`.
    Gt,
    /// Breach when `value < threshold`.
    Lt,
}

/// One declarative alert rule.
#[derive(Debug, Clone, Copy)]
pub struct AlertRule {
    /// Stable rule name, the `rule` label of `ttlg_alerts_firing`.
    pub name: &'static str,
    /// Operator-facing description.
    pub help: &'static str,
    /// What to measure.
    pub signal: Signal,
    /// Breach comparison.
    pub op: Op,
    /// Breach threshold.
    pub threshold: f64,
    /// Consecutive breaching evaluations before firing.
    pub for_evals: u32,
    /// Consecutive clear evaluations before a firing rule resolves.
    pub resolve_evals: u32,
    /// Critical rules gate readiness while firing.
    pub critical: bool,
    /// History window for the signal, in milliseconds. `0` means
    /// instantaneous (the classic two-scrape behaviour). A positive
    /// window takes effect only when a [`TimeSeriesStore`] is supplied
    /// to [`AlertEngine::evaluate_with_history`] and has retained data
    /// for the rule's families; otherwise the rule falls back to the
    /// instantaneous path.
    pub window_ms: u64,
}

/// Lifecycle state of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlertState {
    /// Not breaching.
    #[default]
    Inactive,
    /// Breaching, but not yet for `for_evals` evaluations.
    Pending,
    /// Breached long enough; the alert is active.
    Firing,
}

impl AlertState {
    /// Label value for JSON/text renderings.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
        }
    }
}

/// Point-in-time status of one rule after an evaluation.
#[derive(Debug, Clone)]
pub struct AlertStatus {
    pub name: &'static str,
    pub help: &'static str,
    pub state: AlertState,
    /// Last measured value; `None` when the signal abstained.
    pub value: Option<f64>,
    pub threshold: f64,
    pub critical: bool,
    /// Times this rule has transitioned into `Firing`.
    pub fired_count: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct RuleState {
    state: AlertState,
    breach_streak: u32,
    clear_streak: u32,
    last_value: Option<f64>,
    fired_count: u64,
}

struct EngineState {
    rules: Vec<RuleState>,
    /// `(num, den)` sums from the previous evaluation, per rule —
    /// only populated for `DeltaRatio` signals.
    prev_counters: Vec<Option<(f64, f64)>>,
    evaluations: u64,
}

/// The engine: rules plus per-rule state under one small mutex
/// (evaluations happen at scrape cadence, never on the request path).
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    state: Mutex<EngineState>,
}

impl AlertEngine {
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        let n = rules.len();
        AlertEngine {
            rules,
            state: Mutex::new(EngineState {
                rules: vec![RuleState::default(); n],
                prev_counters: vec![None; n],
                evaluations: 0,
            }),
        }
    }

    /// The default rule set the gateway runs.
    pub fn with_default_rules() -> AlertEngine {
        AlertEngine::new(default_rules())
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluations run so far.
    pub fn evaluations(&self) -> u64 {
        self.state.lock().expect("alert state poisoned").evaluations
    }

    /// Evaluate every rule against `snap` with no history store —
    /// windowed rules fall back to their instantaneous path. See
    /// [`Self::evaluate_with_history`].
    pub fn evaluate(&self, snap: &MetricsSnapshot) -> Vec<AlertStatus> {
        self.evaluate_with_history(snap, None)
    }

    /// Evaluate every rule against `snap`, advancing the state
    /// machines, and return the post-evaluation status of each rule.
    ///
    /// Rules with `window_ms > 0` evaluate over `history` when it has
    /// retained data for their families (see the module docs for the
    /// per-signal window semantics); every other case uses the
    /// instantaneous snapshot. The two-scrape `DeltaRatio` baseline is
    /// advanced either way, so losing the store mid-stream degrades
    /// gracefully to the old behaviour.
    pub fn evaluate_with_history(
        &self,
        snap: &MetricsSnapshot,
        history: Option<&TimeSeriesStore>,
    ) -> Vec<AlertStatus> {
        let mut st = self.state.lock().expect("alert state poisoned");
        st.evaluations += 1;
        let mut out = Vec::with_capacity(self.rules.len());
        for (i, rule) in self.rules.iter().enumerate() {
            let windowed = if rule.window_ms > 0 { history } else { None };
            let value = match rule.signal {
                Signal::Level { metric, agg } => windowed
                    .and_then(|h| window_level(h, metric, agg, rule.window_ms))
                    .or_else(|| metric_value(snap, metric, agg)),
                Signal::Ratio { num, den, agg } => windowed
                    .and_then(|h| {
                        let n = window_level(h, num, agg, rule.window_ms)?;
                        let d = window_level(h, den, agg, rule.window_ms)?;
                        (d > 0.0).then_some(n / d)
                    })
                    .or_else(|| {
                        match (metric_value(snap, num, agg), metric_value(snap, den, agg)) {
                            (Some(n), Some(d)) if d > 0.0 => Some(n / d),
                            _ => None,
                        }
                    }),
                Signal::DeltaRatio { num, den } => {
                    // Advance the two-scrape baseline unconditionally so
                    // the fallback stays coherent while the windowed
                    // path is active.
                    let now = (
                        metric_value(snap, num, Agg::Sum),
                        metric_value(snap, den, Agg::Sum),
                    );
                    let prev = st.prev_counters[i];
                    if let (Some(n), Some(d)) = now {
                        st.prev_counters[i] = Some((n, d));
                    }
                    let two_scrape = || match (now, prev) {
                        ((Some(n), Some(d)), Some((pn, pd))) if d - pd > 0.0 => {
                            Some((n - pn).max(0.0) / (d - pd))
                        }
                        _ => None,
                    };
                    match windowed.map(|h| window_increase_ratio(h, num, den, rule.window_ms)) {
                        Some(WindowRatio::Value(v)) => Some(v),
                        // Denominator retained but flat over the window:
                        // abstain, exactly like the two-scrape path.
                        Some(WindowRatio::Abstain) => None,
                        Some(WindowRatio::NoData) | None => two_scrape(),
                    }
                }
            };
            // `None` = the signal abstained: leave the state machine
            // untouched (an abstain is neither a breach nor a clear).
            let breach = match value {
                Some(v) if v.is_finite() => Some(match rule.op {
                    Op::Gt => v > rule.threshold,
                    Op::Lt => v < rule.threshold,
                }),
                _ => None,
            };
            let rs = &mut st.rules[i];
            rs.last_value = value;
            if breach == Some(true) {
                rs.breach_streak += 1;
                rs.clear_streak = 0;
                match rs.state {
                    AlertState::Firing => {}
                    _ => {
                        rs.state = if rs.breach_streak >= rule.for_evals.max(1) {
                            rs.fired_count += 1;
                            AlertState::Firing
                        } else {
                            AlertState::Pending
                        };
                    }
                }
            } else if breach == Some(false) {
                rs.clear_streak += 1;
                rs.breach_streak = 0;
                match rs.state {
                    AlertState::Firing => {
                        if rs.clear_streak >= rule.resolve_evals.max(1) {
                            rs.state = AlertState::Inactive;
                        }
                    }
                    _ => rs.state = AlertState::Inactive,
                }
            }
            out.push(AlertStatus {
                name: rule.name,
                help: rule.help,
                state: rs.state,
                value: rs.last_value,
                threshold: rule.threshold,
                critical: rule.critical,
                fired_count: rs.fired_count,
            });
        }
        out
    }

    /// Seed the two-scrape `DeltaRatio` baselines from the history
    /// store's last raw cumulative sums. Call this when an engine is
    /// (re)created against a store that already holds history — e.g.
    /// after `ttlg serve --history-file` restores state — so the first
    /// evaluation computes a true small delta instead of abstaining (or,
    /// worse, treating the whole retained history as one giant spike if
    /// a caller pre-filled zeros). Baselines that are already set are
    /// left alone.
    pub fn seed_from_history(&self, history: &TimeSeriesStore) {
        let mut st = self.state.lock().expect("alert state poisoned");
        for (i, rule) in self.rules.iter().enumerate() {
            if let Signal::DeltaRatio { num, den } = rule.signal {
                if st.prev_counters[i].is_none() {
                    if let Some(d) = history.last_raw_sum(den) {
                        let n = history.last_raw_sum(num).unwrap_or(0.0);
                        st.prev_counters[i] = Some((n, d));
                    }
                }
            }
        }
    }

    /// Current status without advancing the state machines.
    pub fn status(&self) -> Vec<AlertStatus> {
        let st = self.state.lock().expect("alert state poisoned");
        self.rules
            .iter()
            .zip(st.rules.iter())
            .map(|(rule, rs)| AlertStatus {
                name: rule.name,
                help: rule.help,
                state: rs.state,
                value: rs.last_value,
                threshold: rule.threshold,
                critical: rule.critical,
                fired_count: rs.fired_count,
            })
            .collect()
    }

    /// Whether any critical rule is currently firing (readiness gate).
    pub fn any_critical_firing(&self) -> bool {
        let st = self.state.lock().expect("alert state poisoned");
        self.rules
            .iter()
            .zip(st.rules.iter())
            .any(|(rule, rs)| rule.critical && rs.state == AlertState::Firing)
    }

    /// Append `ttlg_alerts_firing{rule}` (1 firing / 0 otherwise) to a
    /// snapshot — one series per rule so absence is distinguishable
    /// from health.
    pub fn export_into(&self, snap: &mut MetricsSnapshot) {
        let st = self.state.lock().expect("alert state poisoned");
        let samples = self
            .rules
            .iter()
            .zip(st.rules.iter())
            .map(|(rule, rs)| {
                Sample::labelled(
                    "rule",
                    rule.name,
                    if rs.state == AlertState::Firing {
                        1.0
                    } else {
                        0.0
                    },
                )
            })
            .collect();
        snap.push_metric(
            "ttlg_alerts_firing",
            "Whether each alert rule is currently firing (1 = firing).",
            MetricKind::Gauge,
            samples,
        );
    }
}

/// Aggregate one family's samples to a scalar; `None` when the family
/// is absent or empty.
fn metric_value(snap: &MetricsSnapshot, name: &str, agg: Agg) -> Option<f64> {
    let metric = snap.metrics.iter().find(|m| m.name == name)?;
    let finite = metric
        .samples
        .iter()
        .map(|s| s.value)
        .filter(|v| v.is_finite());
    match agg {
        Agg::Sum => {
            let mut any = false;
            let mut sum = 0.0;
            for v in finite {
                any = true;
                sum += v;
            }
            any.then_some(sum)
        }
        Agg::Max => finite.fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        }),
    }
}

/// Outcome of a windowed `DeltaRatio` evaluation.
enum WindowRatio {
    /// Denominator grew over the window; here's the ratio.
    Value(f64),
    /// Denominator retained but flat over the window — abstain.
    Abstain,
    /// No retained counter history for the denominator — fall back to
    /// the two-scrape path.
    NoData,
}

/// Ratio of counter-family increases over the trailing window.
fn window_increase_ratio(
    history: &TimeSeriesStore,
    num: &str,
    den: &str,
    window_ms: u64,
) -> WindowRatio {
    let Some(end) = history.last_ingest_ms() else {
        return WindowRatio::NoData;
    };
    let start = end.saturating_sub(window_ms);
    let Some(d) = window_increase(history, den, start) else {
        return WindowRatio::NoData;
    };
    if d <= 0.0 {
        return WindowRatio::Abstain;
    }
    let n = window_increase(history, num, start).unwrap_or(0.0);
    WindowRatio::Value((n / d).max(0.0))
}

/// Sum of a counter family's increments with timestamps `> start_ms`,
/// across all its series; `None` when nothing is retained in range.
fn window_increase(history: &TimeSeriesStore, name: &str, start_ms: u64) -> Option<f64> {
    let mut sum = 0.0;
    let mut any = false;
    for series in history.scalar_data(name) {
        if series.kind != MetricKind::Counter {
            continue;
        }
        for (t, v) in series.points {
            if t > start_ms && v.is_finite() {
                sum += v;
                any = true;
            }
        }
    }
    any.then_some(sum)
}

/// Aggregate a family's retained samples over the trailing window:
/// `Max` takes the worst sample anywhere in the window; `Sum` sums the
/// per-series time averages (so a saturated gauge isn't multiplied by
/// the scrape count).
fn window_level(history: &TimeSeriesStore, name: &str, agg: Agg, window_ms: u64) -> Option<f64> {
    let end = history.last_ingest_ms()?;
    let start = end.saturating_sub(window_ms);
    let data = history.scalar_data(name);
    match agg {
        Agg::Max => {
            let mut best: Option<f64> = None;
            for series in &data {
                for &(t, v) in &series.points {
                    if t > start && v.is_finite() {
                        best = Some(best.map_or(v, |b| b.max(v)));
                    }
                }
            }
            best
        }
        Agg::Sum => {
            let mut sum = 0.0;
            let mut any = false;
            for series in &data {
                let mut s = 0.0;
                let mut n = 0u64;
                for &(t, v) in &series.points {
                    if t > start && v.is_finite() {
                        s += v;
                        n += 1;
                    }
                }
                if n > 0 {
                    sum += s / n as f64;
                    any = true;
                }
            }
            any.then_some(sum)
        }
    }
}

/// The rules the gateway evaluates on every scrape: model drift, SLO
/// burn, queue saturation, shed spikes, and trace-ring drops. The two
/// burst-shaped `DeltaRatio` rules declare 30 s windows so a spike split
/// across scrapes is still seen when history is available; the level
/// rules stay instantaneous (their inputs — geo-mean error, burn rate —
/// are already windowed by their producers).
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule {
            name: "prediction-drift",
            help: "Prediction geo-mean error drifted past 1.5x: the timing model \
                   no longer matches measured kernels; run the autotuner.",
            signal: Signal::Level {
                metric: "ttlg_prediction_geo_mean_error",
                agg: Agg::Max,
            },
            op: Op::Gt,
            threshold: 1.5,
            for_evals: 2,
            resolve_evals: 2,
            critical: false,
            window_ms: 0,
        },
        AlertRule {
            name: "slo-burn",
            help: "Error-budget burn rate above 2x sustainable in some window: \
                   the latency objective will be missed if this persists.",
            signal: Signal::Level {
                metric: "ttlg_slo_burn_rate",
                agg: Agg::Max,
            },
            op: Op::Gt,
            threshold: 2.0,
            for_evals: 2,
            resolve_evals: 2,
            critical: true,
            window_ms: 0,
        },
        AlertRule {
            name: "queue-saturation",
            help: "Scheduler queue above 90% of capacity: admission is about to \
                   shed.",
            signal: Signal::Ratio {
                num: "ttlg_gateway_queue_depth",
                den: "ttlg_gateway_queue_capacity",
                agg: Agg::Sum,
            },
            op: Op::Gt,
            threshold: 0.9,
            for_evals: 2,
            resolve_evals: 2,
            critical: false,
            window_ms: 0,
        },
        AlertRule {
            name: "shed-spike",
            help: "More than 20% of requests shed since the last evaluation.",
            signal: Signal::DeltaRatio {
                num: "ttlg_gateway_shed_total",
                den: "ttlg_gateway_requests_total",
            },
            op: Op::Gt,
            threshold: 0.2,
            for_evals: 2,
            resolve_evals: 2,
            critical: false,
            window_ms: 30_000,
        },
        AlertRule {
            name: "trace-drop",
            help: "More than half of request traces dropped by the ring since \
                   the last evaluation: raise trace_capacity.",
            signal: Signal::DeltaRatio {
                num: "ttlg_trace_dropped_total",
                den: "ttlg_requests_total",
            },
            op: Op::Gt,
            threshold: 0.5,
            for_evals: 2,
            resolve_evals: 2,
            critical: false,
            window_ms: 30_000,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(values: &[(&str, f64)]) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (name, v) in values {
            snap.push_metric(name, "", MetricKind::Gauge, vec![Sample::plain(*v)]);
        }
        snap
    }

    fn level_rule(for_evals: u32, resolve_evals: u32, critical: bool) -> AlertRule {
        AlertRule {
            name: "test-level",
            help: "",
            signal: Signal::Level {
                metric: "x",
                agg: Agg::Max,
            },
            op: Op::Gt,
            threshold: 10.0,
            for_evals,
            resolve_evals,
            critical,
            window_ms: 0,
        }
    }

    #[test]
    fn fires_after_for_evals_and_resolves_after_resolve_evals() {
        let eng = AlertEngine::new(vec![level_rule(2, 2, true)]);
        let hot = snap_with(&[("x", 50.0)]);
        let cool = snap_with(&[("x", 1.0)]);

        assert_eq!(eng.evaluate(&hot)[0].state, AlertState::Pending);
        assert!(!eng.any_critical_firing());
        assert_eq!(eng.evaluate(&hot)[0].state, AlertState::Firing);
        assert!(eng.any_critical_firing());
        // One clear evaluation is not enough to resolve.
        assert_eq!(eng.evaluate(&cool)[0].state, AlertState::Firing);
        assert_eq!(eng.evaluate(&cool)[0].state, AlertState::Inactive);
        assert!(!eng.any_critical_firing());
        assert_eq!(eng.status()[0].fired_count, 1);
    }

    #[test]
    fn pending_resets_on_a_clear_evaluation() {
        let eng = AlertEngine::new(vec![level_rule(3, 1, false)]);
        let hot = snap_with(&[("x", 50.0)]);
        let cool = snap_with(&[("x", 1.0)]);
        assert_eq!(eng.evaluate(&hot)[0].state, AlertState::Pending);
        assert_eq!(eng.evaluate(&cool)[0].state, AlertState::Inactive);
        // The streak starts over.
        assert_eq!(eng.evaluate(&hot)[0].state, AlertState::Pending);
        assert_eq!(eng.evaluate(&hot)[0].state, AlertState::Pending);
        assert_eq!(eng.evaluate(&hot)[0].state, AlertState::Firing);
    }

    #[test]
    fn missing_metric_abstains_and_never_breaches() {
        let eng = AlertEngine::new(vec![level_rule(1, 1, false)]);
        let empty = MetricsSnapshot::new();
        let status = eng.evaluate(&empty);
        assert_eq!(status[0].state, AlertState::Inactive);
        assert_eq!(status[0].value, None);
    }

    #[test]
    fn nan_values_abstain() {
        let eng = AlertEngine::new(vec![level_rule(1, 1, false)]);
        let status = eng.evaluate(&snap_with(&[("x", f64::NAN)]));
        assert_eq!(status[0].state, AlertState::Inactive);
        assert_eq!(status[0].value, None);
    }

    #[test]
    fn ratio_rule_breaches_on_saturation() {
        let rule = AlertRule {
            name: "sat",
            help: "",
            signal: Signal::Ratio {
                num: "depth",
                den: "cap",
                agg: Agg::Sum,
            },
            op: Op::Gt,
            threshold: 0.9,
            for_evals: 1,
            resolve_evals: 1,
            critical: false,
            window_ms: 0,
        };
        let eng = AlertEngine::new(vec![rule]);
        let s = eng.evaluate(&snap_with(&[("depth", 60.0), ("cap", 64.0)]));
        assert_eq!(s[0].state, AlertState::Firing);
        assert!((s[0].value.unwrap() - 60.0 / 64.0).abs() < 1e-12);
        // Zero capacity abstains instead of dividing by zero.
        let s = eng.evaluate(&snap_with(&[("depth", 60.0), ("cap", 0.0)]));
        assert_eq!(s[0].value, None);
    }

    #[test]
    fn delta_ratio_needs_two_evaluations_and_tracks_increase() {
        let rule = AlertRule {
            name: "shed-spike",
            help: "",
            signal: Signal::DeltaRatio {
                num: "shed",
                den: "reqs",
            },
            op: Op::Gt,
            threshold: 0.2,
            for_evals: 1,
            resolve_evals: 1,
            critical: false,
            window_ms: 0,
        };
        let eng = AlertEngine::new(vec![rule]);
        // First evaluation: no baseline, abstain.
        let s = eng.evaluate(&snap_with(&[("shed", 100.0), ("reqs", 200.0)]));
        assert_eq!(s[0].value, None);
        assert_eq!(s[0].state, AlertState::Inactive);
        // 50 sheds over 100 new requests: 50% > 20%, fires.
        let s = eng.evaluate(&snap_with(&[("shed", 150.0), ("reqs", 300.0)]));
        assert!((s[0].value.unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(s[0].state, AlertState::Firing);
        // No new requests: abstain (firing holds until resolve_evals
        // clear evaluations — an abstain is not a clear).
        let s = eng.evaluate(&snap_with(&[("shed", 150.0), ("reqs", 300.0)]));
        assert_eq!(s[0].value, None);
        assert_eq!(s[0].state, AlertState::Firing);
        // Clean window resolves.
        let s = eng.evaluate(&snap_with(&[("shed", 150.0), ("reqs", 400.0)]));
        assert_eq!(s[0].state, AlertState::Inactive);
    }

    #[test]
    fn max_aggregation_picks_worst_sample() {
        let mut snap = MetricsSnapshot::new();
        snap.push_metric(
            "burn",
            "",
            MetricKind::Gauge,
            vec![
                Sample::labelled("window", "short", 5.0),
                Sample::labelled("window", "long", 0.5),
            ],
        );
        assert_eq!(metric_value(&snap, "burn", Agg::Max), Some(5.0));
        assert_eq!(metric_value(&snap, "burn", Agg::Sum), Some(5.5));
    }

    #[test]
    fn export_emits_one_series_per_rule() {
        let eng = AlertEngine::with_default_rules();
        let mut snap = MetricsSnapshot::new();
        eng.export_into(&mut snap);
        let firing = snap
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_alerts_firing")
            .expect("family present");
        assert_eq!(firing.samples.len(), default_rules().len());
        assert!(firing.samples.iter().all(|s| s.value == 0.0));
    }

    #[test]
    fn default_drift_rule_fires_on_skewed_geo_error() {
        let eng = AlertEngine::with_default_rules();
        let skewed = snap_with(&[("ttlg_prediction_geo_mean_error", 4.0)]);
        eng.evaluate(&skewed);
        let status = eng.evaluate(&skewed);
        let drift = status
            .iter()
            .find(|s| s.name == "prediction-drift")
            .unwrap();
        assert_eq!(drift.state, AlertState::Firing);
        assert!(!eng.any_critical_firing(), "drift is not critical");
        let mut out = MetricsSnapshot::new();
        eng.export_into(&mut out);
        let firing = out
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_alerts_firing")
            .unwrap();
        let s = firing
            .samples
            .iter()
            .find(|s| s.labels[0].1 == "prediction-drift")
            .unwrap();
        assert_eq!(s.value, 1.0);
    }

    /// Cumulative-counter snapshot (the real exporter shape for the
    /// windowed rules, unlike the gauge-based `snap_with`).
    fn counters(values: &[(&str, f64)]) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (name, v) in values {
            snap.push_metric(name, "", MetricKind::Counter, vec![Sample::plain(*v)]);
        }
        snap
    }

    fn shed_rule(window_ms: u64) -> AlertRule {
        AlertRule {
            name: "shed-spike",
            help: "",
            signal: Signal::DeltaRatio {
                num: "shed",
                den: "reqs",
            },
            op: Op::Gt,
            threshold: 0.2,
            for_evals: 2,
            resolve_evals: 2,
            critical: false,
            window_ms,
        }
    }

    /// The acceptance scenario: a shed burst lands in a scrape where the
    /// request counter is flat, so the two-scrape delta abstains on that
    /// evaluation and sees zero sheds on the next — it never breaches.
    /// The 10 s window sees sheds and requests together and fires.
    #[test]
    fn burst_split_across_scrapes_fires_windowed_rule_but_not_two_scrape_delta() {
        // Cumulative timeline: requests land in scrapes 1 and 3, the
        // entire shed burst in scrape 2.
        let timeline = [
            (1_000u64, 0.0, 60.0),
            (2_000, 20.0, 60.0),
            (3_000, 20.0, 70.0),
        ];

        // Two-scrape path (no window): never breaches.
        let plain = AlertEngine::new(vec![shed_rule(0)]);
        for &(_, shed, reqs) in &timeline {
            let s = plain.evaluate(&counters(&[("shed", shed), ("reqs", reqs)]));
            assert_ne!(s[0].state, AlertState::Pending, "two-scrape path breached");
            assert_ne!(s[0].state, AlertState::Firing, "two-scrape path breached");
        }
        // eval2: Δreqs = 0 → abstain; eval3: Δshed = 0 → ratio 0.
        assert_eq!(plain.status()[0].value, Some(0.0));

        // Windowed path over the same scrapes, fed by the store.
        let store = TimeSeriesStore::default();
        let windowed = AlertEngine::new(vec![shed_rule(10_000)]);
        let mut states = Vec::new();
        for &(t, shed, reqs) in &timeline {
            let snap = counters(&[("shed", shed), ("reqs", reqs)]);
            store.ingest(&snap, t);
            states.push(windowed.evaluate_with_history(&snap, Some(&store))[0].state);
        }
        // eval1: 0/60 clear; eval2: 20/60 ≈ 0.33 pending; eval3: 20/70 ≈
        // 0.29 — second consecutive breach fires.
        assert_eq!(
            states,
            vec![
                AlertState::Inactive,
                AlertState::Pending,
                AlertState::Firing
            ]
        );
        let v = windowed.status()[0].value.unwrap();
        assert!((v - 20.0 / 70.0).abs() < 1e-9, "window ratio was {v}");
    }

    #[test]
    fn windowed_rule_falls_back_to_two_scrape_without_history() {
        let eng = AlertEngine::new(vec![shed_rule(10_000)]);
        // Empty store: no retained data → same semantics as evaluate().
        let store = TimeSeriesStore::default();
        let s =
            eng.evaluate_with_history(&counters(&[("shed", 0.0), ("reqs", 100.0)]), Some(&store));
        assert_eq!(s[0].value, None, "first evaluation abstains");
        let s =
            eng.evaluate_with_history(&counters(&[("shed", 30.0), ("reqs", 200.0)]), Some(&store));
        assert_eq!(
            s[0].value,
            Some(0.3),
            "two-scrape fallback computed the delta"
        );
    }

    #[test]
    fn engine_recreation_seeds_baselines_from_history_and_does_not_spuriously_fire() {
        let store = TimeSeriesStore::default();
        // History already holds a lifetime of traffic (raw sums 40/900).
        store.ingest(&counters(&[("shed", 25.0), ("reqs", 500.0)]), 1_000);
        store.ingest(&counters(&[("shed", 40.0), ("reqs", 900.0)]), 2_000);

        // A recreated engine (e.g. after a gateway restart with
        // --history-file) seeds its baselines from the store...
        let eng = AlertEngine::new(vec![shed_rule(0)]);
        eng.seed_from_history(&store);
        // ...so the very first evaluation computes the true small delta
        // (0 new sheds / 50 new requests) instead of abstaining — and
        // certainly doesn't treat the 40 lifetime sheds as one spike.
        let s = eng.evaluate(&counters(&[("shed", 40.0), ("reqs", 950.0)]));
        assert_eq!(s[0].value, Some(0.0));
        assert_eq!(s[0].state, AlertState::Inactive);

        // Seeding is a no-op on baselines that are already live.
        let s = eng.evaluate(&counters(&[("shed", 41.0), ("reqs", 960.0)]));
        assert_eq!(s[0].value, Some(0.1));
        eng.seed_from_history(&store);
        let s = eng.evaluate(&counters(&[("shed", 41.0), ("reqs", 970.0)]));
        assert_eq!(s[0].value, Some(0.0));
    }

    #[test]
    fn windowed_level_uses_history_max_and_sum_of_averages() {
        let store = TimeSeriesStore::default();
        for (i, v) in [1.0f64, 8.0, 2.0].iter().enumerate() {
            let mut snap = MetricsSnapshot::new();
            snap.push_metric("burn", "", MetricKind::Gauge, vec![Sample::plain(*v)]);
            store.ingest(&snap, (i as u64 + 1) * 1_000);
        }
        assert_eq!(window_level(&store, "burn", Agg::Max, 10_000), Some(8.0));
        // One series: sum-of-averages is just the average.
        let avg = window_level(&store, "burn", Agg::Sum, 10_000).unwrap();
        assert!((avg - 11.0 / 3.0).abs() < 1e-9);
        // A 1 ms window behind the last ingest sees nothing.
        assert_eq!(window_level(&store, "missing", Agg::Max, 10_000), None);

        // A windowed Level rule picks the in-window max even when the
        // instantaneous snapshot has cooled off.
        let rule = AlertRule {
            name: "hot",
            help: "",
            signal: Signal::Level {
                metric: "burn",
                agg: Agg::Max,
            },
            op: Op::Gt,
            threshold: 5.0,
            for_evals: 1,
            resolve_evals: 1,
            critical: false,
            window_ms: 10_000,
        };
        let eng = AlertEngine::new(vec![rule]);
        let cooled = snap_with(&[("burn", 2.0)]);
        let s = eng.evaluate_with_history(&cooled, Some(&store));
        assert_eq!(s[0].value, Some(8.0));
        assert_eq!(s[0].state, AlertState::Firing);
        // Without history the same rule sees only the instant.
        let eng2 = AlertEngine::new(vec![rule]);
        let s = eng2.evaluate(&cooled);
        assert_eq!(s[0].value, Some(2.0));
        assert_eq!(s[0].state, AlertState::Inactive);
    }
}
