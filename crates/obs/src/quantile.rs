//! Quantile estimation over log2 latency histograms.
//!
//! The runtime buckets latencies as: bucket 0 = `[0, 2)` µs, bucket `i`
//! = `[2^i, 2^{i+1})` µs, last bucket = `[2^{n-1}, ∞)` µs. A quantile is
//! estimated by locating the bucket holding the target rank and
//! interpolating linearly inside it — the standard Prometheus
//! `histogram_quantile` scheme, so the text exporter and the in-process
//! numbers agree.

/// Lower bound of bucket `i` in microseconds (0 for bucket 0).
pub fn log2_bucket_lower_us(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (1u64 << i) as f64
    }
}

/// Upper bound of bucket `i` (of `n` buckets) in microseconds. The
/// overflow bucket has no real upper bound; it reports twice its lower
/// bound so interpolation stays finite.
pub fn log2_bucket_upper_us(i: usize, n: usize) -> f64 {
    debug_assert!(i < n);
    (1u64 << (i + 1).min(n)) as f64
}

/// Estimate quantile `q` (in `[0, 1]`) from log2 bucket counts. Returns
/// microseconds.
///
/// **Empty-histogram contract:** when `counts` is empty or every count
/// is zero there is no sample to estimate from, and the function returns
/// `f64::NAN` as an explicit "no data" sentinel. Returning a bucket
/// bound (or `0.0`) here would be indistinguishable from a real
/// sub-microsecond estimate and has misled dashboards before. Both
/// exporters handle the sentinel uniformly: the Prometheus text format
/// prints `NaN` (a legal sample value that still parses as `f64`), and
/// the JSON renderer maps non-finite values to `null`. Callers that want
/// a plain number should test `is_nan()` and substitute their own
/// default.
pub fn log2_bucket_quantile_us(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target sample (1-based, rounded up; the Prometheus
    // convention of `q * total` landing inside the covering bucket).
    let rank = (q * total as f64).max(1.0);
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c;
        if (next as f64) >= rank {
            let lo = log2_bucket_lower_us(i);
            let hi = log2_bucket_upper_us(i, counts.len());
            let within = (rank - cum as f64) / c as f64;
            return lo + (hi - lo) * within;
        }
        cum = next;
    }
    // Numerically unreachable; fall back to the top bucket's bound.
    log2_bucket_upper_us(counts.len() - 1, counts.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_nan_sentinel() {
        // "No data" must be distinguishable from a real 0 us estimate.
        assert!(log2_bucket_quantile_us(&[], 0.5).is_nan());
        assert!(log2_bucket_quantile_us(&[0, 0, 0], 0.99).is_nan());
        // One sample is enough to leave the sentinel regime.
        assert!(log2_bucket_quantile_us(&[1], 0.99).is_finite());
    }

    #[test]
    fn single_bucket_interpolates() {
        // 100 samples all in bucket 3 = [8, 16) us.
        let mut counts = [0u64; 16];
        counts[3] = 100;
        let p50 = log2_bucket_quantile_us(&counts, 0.5);
        let p99 = log2_bucket_quantile_us(&counts, 0.99);
        assert!((8.0..16.0).contains(&p50), "p50 {p50}");
        assert!((8.0..=16.0).contains(&p99), "p99 {p99}");
        assert!(p99 > p50);
    }

    #[test]
    fn quantiles_are_ordered_across_buckets() {
        // 90 fast samples in [2,4), 10 slow in [1024, 2048).
        let mut counts = [0u64; 16];
        counts[1] = 90;
        counts[10] = 10;
        let p50 = log2_bucket_quantile_us(&counts, 0.50);
        let p95 = log2_bucket_quantile_us(&counts, 0.95);
        let p99 = log2_bucket_quantile_us(&counts, 0.99);
        assert!((2.0..4.0).contains(&p50), "p50 {p50}");
        assert!((1024.0..2048.0).contains(&p95), "p95 {p95}");
        assert!(p99 >= p95 && p95 > p50);
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(log2_bucket_lower_us(0), 0.0);
        assert_eq!(log2_bucket_lower_us(1), 2.0);
        assert_eq!(log2_bucket_lower_us(10), 1024.0);
        assert_eq!(log2_bucket_upper_us(0, 16), 2.0);
        assert_eq!(log2_bucket_upper_us(9, 16), 1024.0);
        // Overflow bucket: finite pseudo-bound at 2x its lower bound.
        assert_eq!(log2_bucket_upper_us(15, 16), 65536.0);
    }

    #[test]
    fn overflow_bucket_quantile_is_finite() {
        let mut counts = [0u64; 16];
        counts[15] = 5;
        let p99 = log2_bucket_quantile_us(&counts, 0.99);
        assert!(p99.is_finite());
        assert!(p99 >= 32768.0);
    }

    #[test]
    fn single_sample_every_quantile_lands_in_its_bucket() {
        // With exactly one sample every quantile must interpolate inside
        // that sample's bucket — never NaN, never a neighbouring bucket.
        for bucket in [0usize, 1, 7, 15] {
            let mut counts = [0u64; 16];
            counts[bucket] = 1;
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                let est = log2_bucket_quantile_us(&counts, q);
                let lo = log2_bucket_lower_us(bucket);
                let hi = log2_bucket_upper_us(bucket, 16);
                assert!(
                    (lo..=hi).contains(&est),
                    "bucket {bucket} q {q}: {est} not in [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn all_in_top_bucket_saturates_at_its_pseudo_bound() {
        // Everything in the overflow bucket: estimates stay pinned to
        // [2^15, 2^16] regardless of quantile or count, and p99 cannot
        // exceed the finite pseudo-bound.
        for n in [1u64, 10, 1_000_000] {
            let mut counts = [0u64; 16];
            counts[15] = n;
            let p50 = log2_bucket_quantile_us(&counts, 0.50);
            let p99 = log2_bucket_quantile_us(&counts, 0.99);
            assert!(p50 >= 32768.0, "p50 {p50} below the overflow floor");
            assert!(p99 <= 65536.0, "p99 {p99} above the pseudo-bound");
            assert!(p50 <= p99);
        }
    }

    #[test]
    fn quantiles_are_monotone_under_random_fills() {
        // Property: for any histogram, p50 <= p95 <= p99, and every
        // estimate stays within the histogram's overall bounds. Plain
        // xorshift here — this crate deliberately has no dependencies.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let buckets = 2 + (next() % 15) as usize;
            let mut counts = vec![0u64; buckets];
            let filled = 1 + (next() % buckets as u64) as usize;
            for _ in 0..filled {
                let i = (next() % buckets as u64) as usize;
                counts[i] += next() % 1_000;
            }
            if counts.iter().all(|&c| c == 0) {
                assert!(log2_bucket_quantile_us(&counts, 0.5).is_nan());
                continue;
            }
            let p50 = log2_bucket_quantile_us(&counts, 0.50);
            let p95 = log2_bucket_quantile_us(&counts, 0.95);
            let p99 = log2_bucket_quantile_us(&counts, 0.99);
            assert!(
                p50 <= p95 && p95 <= p99,
                "monotonicity violated: {p50} {p95} {p99} for {counts:?}"
            );
            let lowest = counts.iter().position(|&c| c > 0).unwrap();
            let highest = counts.iter().rposition(|&c| c > 0).unwrap();
            assert!(p50 >= log2_bucket_lower_us(lowest), "{counts:?}");
            assert!(p99 <= log2_bucket_upper_us(highest, buckets), "{counts:?}");
        }
    }
}
