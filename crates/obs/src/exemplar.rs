//! Slowest-request exemplar capture.
//!
//! Aggregates (histograms, profiles) tell you *that* p99 moved; an
//! exemplar tells you *why*: the full [`RequestTrace`] — and, when the
//! producer retains one, the planner's decision payload — for the
//! slowest N requests per `(schema, shape-class)` bucket.
//!
//! The store mirrors the [`crate::TraceRing`] philosophy: the hot path
//! must never block behind a reader or another writer.
//!
//! * The bucket map is behind an `RwLock` taken for *read* on every
//!   offer; the write lock is only taken the first time a key appears
//!   (bounded by [`ExemplarConfig::max_buckets`], after which new keys
//!   fold into an overflow bucket).
//! * Each bucket publishes an atomic admission floor
//!   (`Bucket::floor_ns`). Once the bucket is full, the floor is
//!   `min_retained_total_ns + 1`, so a request at or below the current
//!   minimum is rejected with a single atomic load — no lock at all.
//!   That is the common case: almost every request is faster than the
//!   retained tail.
//! * Only requests slower than the floor (or arriving before the bucket
//!   fills) take the bucket's small mutex to insert/replace-min. The
//!   floor is monotone non-decreasing once full, which yields the
//!   correctness property the hammer test asserts: a request slower
//!   than everything retained can never be dropped by the fast path,
//!   so the slowest request per bucket is always retained.
//!
//! The decision payload is generic (`D`) so this crate stays
//! dependency-free; the runtime instantiates `ExemplarStore<Arc<DecisionTrace>>`.

use crate::RequestTrace;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Retention knobs. `Copy` so it can ride inside the runtime's `Copy`
/// config struct.
#[derive(Debug, Clone, Copy)]
pub struct ExemplarConfig {
    /// Slowest requests retained per `(schema, shape-class)` bucket.
    pub per_bucket: usize,
    /// Maximum distinct buckets; further keys fold into an overflow
    /// bucket keyed [`OVERFLOW_BUCKET`].
    pub max_buckets: usize,
}

impl Default for ExemplarConfig {
    fn default() -> Self {
        ExemplarConfig {
            per_bucket: 4,
            max_buckets: 64,
        }
    }
}

/// Key used once [`ExemplarConfig::max_buckets`] is reached.
pub const OVERFLOW_BUCKET: &str = "_other";

/// A retained slow request: the full trace plus the planner decision
/// payload (when the producer kept one).
#[derive(Debug, Clone)]
pub struct Exemplar<D> {
    pub trace: RequestTrace,
    pub decision: Option<D>,
}

/// Snapshot row set: each `(schema, shape_class)` bucket key with its
/// retained exemplars.
pub type ExemplarBuckets<D> = Vec<((String, String), Vec<Exemplar<D>>)>;

#[derive(Debug)]
struct Bucket<D> {
    /// 0 while the bucket is not yet full (everything admitted);
    /// afterwards `min_retained_total_ns + 1`, so the fast path can
    /// reject `total_ns < floor` without locking.
    floor_ns: AtomicU64,
    entries: Mutex<Vec<Exemplar<D>>>,
}

impl<D> Bucket<D> {
    fn new() -> Self {
        Bucket {
            floor_ns: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }
}

/// Bucket map keyed by `(schema, shape_class)`.
type BucketMap<D> = HashMap<(String, String), Arc<Bucket<D>>>;

/// Concurrent slowest-N-per-bucket store. See the module docs for the
/// locking discipline.
#[derive(Debug)]
pub struct ExemplarStore<D> {
    cfg: ExemplarConfig,
    buckets: RwLock<BucketMap<D>>,
    offered: AtomicU64,
    admitted: AtomicU64,
}

impl<D: Clone> ExemplarStore<D> {
    pub fn new(cfg: ExemplarConfig) -> Self {
        ExemplarStore {
            cfg: ExemplarConfig {
                per_bucket: cfg.per_bucket.max(1),
                max_buckets: cfg.max_buckets.max(1),
            },
            buckets: RwLock::new(HashMap::new()),
            offered: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Offer a finished trace. Fast path (bucket full, request at or
    /// below the retained minimum) is one map read-lock and one atomic
    /// load; no mutex.
    pub fn offer(&self, trace: &RequestTrace, decision: Option<&D>) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let total = trace.total_ns();
        let key = (
            if trace.schema.is_empty() {
                "unplanned".to_string()
            } else {
                trace.schema.clone()
            },
            trace.shape_class.clone(),
        );
        let bucket = self.bucket_for(key);
        let floor = bucket.floor_ns.load(Ordering::Acquire);
        if floor > 0 && total < floor {
            return;
        }
        let mut entries = bucket.entries.lock().unwrap();
        entries.push(Exemplar {
            trace: trace.clone(),
            decision: decision.cloned(),
        });
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if entries.len() > self.cfg.per_bucket {
            let (min_idx, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.trace.total_ns())
                .expect("non-empty");
            entries.swap_remove(min_idx);
        }
        if entries.len() == self.cfg.per_bucket {
            let min = entries
                .iter()
                .map(|e| e.trace.total_ns())
                .min()
                .expect("non-empty");
            // Monotone: replace-min only ever raises the retained
            // minimum, so a stale floor is always an under-estimate and
            // never drops a should-be-retained request.
            bucket
                .floor_ns
                .store(min.saturating_add(1), Ordering::Release);
        }
    }

    fn bucket_for(&self, key: (String, String)) -> Arc<Bucket<D>> {
        if let Some(b) = self.buckets.read().unwrap().get(&key) {
            return Arc::clone(b);
        }
        let mut map = self.buckets.write().unwrap();
        if !map.contains_key(&key) && map.len() >= self.cfg.max_buckets {
            let overflow = (OVERFLOW_BUCKET.to_string(), OVERFLOW_BUCKET.to_string());
            return Arc::clone(
                map.entry(overflow)
                    .or_insert_with(|| Arc::new(Bucket::new())),
            );
        }
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Bucket::new())))
    }

    /// Traces offered so far.
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Offers that were admitted into a bucket (including ones later
    /// replaced by slower requests).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Exemplars currently retained across all buckets.
    pub fn total_retained(&self) -> usize {
        self.buckets
            .read()
            .unwrap()
            .values()
            .map(|b| b.entries.lock().unwrap().len())
            .sum()
    }

    /// All buckets with their exemplars, slowest first within each
    /// bucket, buckets sorted by their slowest exemplar (descending).
    pub fn snapshot(&self) -> ExemplarBuckets<D> {
        let mut out: ExemplarBuckets<D> = self
            .buckets
            .read()
            .unwrap()
            .iter()
            .map(|(k, b)| {
                let mut entries = b.entries.lock().unwrap().clone();
                entries.sort_by_key(|e| std::cmp::Reverse(e.trace.total_ns()));
                (k.clone(), entries)
            })
            .collect();
        out.sort_by_key(|(_, entries)| {
            std::cmp::Reverse(entries.first().map(|e| e.trace.total_ns()).unwrap_or(0))
        });
        out
    }

    /// Exemplars for one schema across all its shape classes, slowest
    /// first.
    pub fn for_schema(&self, schema: &str) -> Vec<Exemplar<D>> {
        let mut out: Vec<Exemplar<D>> = self
            .buckets
            .read()
            .unwrap()
            .iter()
            .filter(|((s, _), _)| s == schema)
            .flat_map(|(_, b)| b.entries.lock().unwrap().clone())
            .collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.trace.total_ns()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(schema: &str, class: &str, exec_ns: u64) -> RequestTrace {
        RequestTrace {
            schema: schema.to_string(),
            shape_class: class.to_string(),
            ok: true,
            execute_ns: exec_ns,
            ..Default::default()
        }
    }

    #[test]
    fn retains_slowest_per_bucket() {
        let store: ExemplarStore<u64> = ExemplarStore::new(ExemplarConfig {
            per_bucket: 2,
            max_buckets: 8,
        });
        for ns in [10, 500, 20, 400, 30, 300] {
            store.offer(&trace("Naive", "r3v12", ns), Some(&ns));
        }
        let got = store.for_schema("Naive");
        let times: Vec<u64> = got.iter().map(|e| e.trace.total_ns()).collect();
        assert_eq!(times, vec![500, 400]);
        // Decision payload rides along untouched.
        assert_eq!(got[0].decision, Some(500));
        assert_eq!(store.total_retained(), 2);
    }

    #[test]
    fn buckets_are_independent() {
        let store: ExemplarStore<()> = ExemplarStore::new(ExemplarConfig {
            per_bucket: 1,
            max_buckets: 8,
        });
        store.offer(&trace("Naive", "r3v12", 100), None);
        store.offer(&trace("Copy", "r2v4", 5), None);
        assert_eq!(store.for_schema("Naive").len(), 1);
        assert_eq!(store.for_schema("Copy").len(), 1);
        assert_eq!(store.snapshot().len(), 2);
    }

    #[test]
    fn bucket_cap_folds_into_overflow() {
        let store: ExemplarStore<()> = ExemplarStore::new(ExemplarConfig {
            per_bucket: 2,
            max_buckets: 2,
        });
        store.offer(&trace("A", "r1v1", 1), None);
        store.offer(&trace("B", "r1v1", 2), None);
        store.offer(&trace("C", "r1v1", 3), None);
        store.offer(&trace("D", "r1v1", 4), None);
        let snap = store.snapshot();
        // 2 real buckets + the overflow bucket.
        assert_eq!(snap.len(), 3);
        let other = store.for_schema(OVERFLOW_BUCKET);
        assert_eq!(other.len(), 2);
    }

    #[test]
    fn empty_schema_is_labelled_unplanned() {
        let store: ExemplarStore<()> = ExemplarStore::new(ExemplarConfig::default());
        store.offer(&trace("", "r3v12", 7), None);
        assert_eq!(store.for_schema("unplanned").len(), 1);
    }

    /// Hammer test: many threads race slow and fast requests into the
    /// same bucket. The slowest request must always be retained (the
    /// lock-free floor can only under-estimate, never over-reject), and
    /// no retained trace may be torn (id and execute_ns travel
    /// together).
    #[test]
    fn concurrent_offers_never_lose_the_slowest_or_tear_traces() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let store: Arc<ExemplarStore<u64>> = Arc::new(ExemplarStore::new(ExemplarConfig {
            per_bucket: 4,
            max_buckets: 8,
        }));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let id = t * PER_THREAD + i;
                        // Mostly fast traffic with interleaved slow
                        // outliers; ids encode the latency so tearing
                        // is detectable.
                        let exec = if i % 97 == 0 {
                            1_000_000 + id
                        } else {
                            10 + id % 7
                        };
                        let tr = RequestTrace {
                            id,
                            schema: "Naive".to_string(),
                            shape_class: "r3v12".to_string(),
                            ok: true,
                            execute_ns: exec,
                            ..Default::default()
                        };
                        store.offer(&tr, Some(&exec));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.offered(), THREADS * PER_THREAD);
        let retained = store.for_schema("Naive");
        assert_eq!(retained.len(), 4);
        // The global slowest request is id = THREADS*PER_THREAD - ... :
        // slow ids are t*PER_THREAD + i with i % 97 == 0; the largest is
        // from the last thread, i = 485 -> exec = 1_000_000 + id.
        let expected_max = (0..THREADS)
            .flat_map(|t| {
                (0..PER_THREAD)
                    .filter(move |i| i % 97 == 0)
                    .map(move |i| t * PER_THREAD + i)
            })
            .map(|id| 1_000_000 + id)
            .max()
            .unwrap();
        let got_max = retained.iter().map(|e| e.trace.total_ns()).max().unwrap();
        assert_eq!(got_max, expected_max, "slowest exemplar was lost");
        // Every retained exemplar is one of the slow outliers, and its
        // fields are mutually consistent (no torn trace): exec encodes
        // the id, and the decision payload matches.
        for e in &retained {
            assert_eq!(e.trace.execute_ns, 1_000_000 + e.trace.id, "torn trace");
            assert_eq!(e.decision, Some(e.trace.execute_ns), "torn decision");
        }
    }
}
