//! # ttlg-obs — observability core for TTLG-rs
//!
//! The paper justifies every schema choice with nvprof-style counters
//! (Table I) and validates its regression models against measured times
//! (Table II). This crate is the runtime analogue of that workflow: a
//! dependency-free tracing and metrics-export core that the planner, the
//! runtime service, and the simulated executor feed so that *why a plan
//! was chosen* and *how far the model drifted from reality* are
//! observable after the fact.
//!
//! Pieces:
//!
//! * [`span`] — a minimal tracing vocabulary: [`SpanRecord`]s and
//!   [`Event`]s delivered to a [`Subscriber`], plus a monotonic
//!   process-relative [`clock_ns`].
//! * [`ring`] — [`TraceRing`], a bounded ring buffer of recent
//!   [`RequestTrace`]s; writers claim slots with one atomic fetch-add.
//! * [`quantile`] — p50/p95/p99 estimation over the runtime's log2
//!   latency histograms ([`log2_bucket_quantile_us`]).
//! * [`prediction`] — [`PredictionTracker`]: signed residuals between
//!   model-predicted and simulator-measured kernel times per schema,
//!   the training-point feed for a measure-mode autotuner.
//! * [`snapshot`] / [`prom`] / [`json`] — a renderer-neutral
//!   [`MetricsSnapshot`] plus Prometheus-text and JSON exporters.
//! * [`profile`] — tail-latency attribution: ring snapshots folded into
//!   hierarchical phase profiles keyed by `(schema, shape-class)`
//!   ([`PhaseProfile`]), including "which phase dominates at p99".
//! * [`exemplar`] — [`ExemplarStore`]: the slowest N full traces per
//!   `(schema, shape-class)` bucket, captured with a lock-free
//!   admission floor so the hot path never blocks.
//! * [`slo`] — [`SloTracker`]: latency-objective hit rate plus
//!   short/long-window error-budget burn rates.
//! * [`tracecontext`] — W3C `traceparent` parse/render plus the
//!   process-global id stream ([`TraceContext`]).
//! * [`tracestore`] — request-scoped span trees ([`SpanNode`]) and the
//!   bounded, sampling-aware [`TraceStore`] that retains them.
//! * [`alerts`] — [`AlertEngine`]: declarative rules over a
//!   [`MetricsSnapshot`] with firing/resolved hysteresis, evaluated
//!   either instantaneously or over a declared history window.
//! * [`tsdb`] — [`TimeSeriesStore`]: a bounded delta-encoded metrics
//!   history (fine + coarse retention rings with downsampling, counter
//!   reset detection, text save/hydrate).
//! * [`query`] — [`eval_range`]: `rate` / `increase` /
//!   `avg|max_over_time` / `quantile_over_time` / `sum` range queries
//!   over the store.
//!
//! The crate deliberately depends on nothing (not even the other ttlg
//! crates): schemas and phases are plain string labels, so any layer can
//! feed it without creating dependency cycles.

pub mod alerts;
pub mod exemplar;
pub mod json;
pub mod prediction;
pub mod profile;
pub mod prom;
pub mod quantile;
pub mod query;
pub mod ring;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod tracecontext;
pub mod tracestore;
pub mod tsdb;

pub use alerts::{Agg, AlertEngine, AlertRule, AlertState, AlertStatus, Op, Signal};
pub use exemplar::{Exemplar, ExemplarBuckets, ExemplarConfig, ExemplarStore};
pub use prediction::{PredictionStats, PredictionTracker, RATIO_BUCKETS};
pub use profile::{shape_class, PhaseProfile, PhaseShares, ProfileOptions};
pub use quantile::log2_bucket_quantile_us;
pub use query::{eval_range, QueryError, QueryResult, QuerySeries};
pub use ring::TraceRing;
pub use slo::{SloConfig, SloSnapshot, SloTracker};
pub use snapshot::{Histogram, Metric, MetricKind, MetricsSnapshot, Sample};
pub use span::{
    clock_ns, AttrValue, CollectingSubscriber, Event, NullSubscriber, SpanRecord, Subscriber,
};
pub use tracecontext::{next_id, parse_trace_id, TraceContext};
pub use tracestore::{SampleReason, SpanNode, StoredTrace, TraceStore, TraceStoreConfig};
pub use tsdb::{HistPoints, ScalarPoints, TimeSeriesStore, TsdbConfig};

/// One fully attributed request through the runtime service — the unit
/// stored in the [`TraceRing`] and the post-hoc answer to "what happened
/// to that request?".
///
/// All fields are plain data so the trace survives the request: schema
/// and error are strings, the executor's counters are pre-digested into
/// the two rates the paper's Table I reasons about.
#[derive(Debug, Clone, Default)]
pub struct RequestTrace {
    /// Monotonic per-service request id.
    pub id: u64,
    /// Process-relative start time, ns (see [`clock_ns`]).
    pub start_ns: u64,
    /// Schema label of the executed plan (empty if planning failed).
    pub schema: String,
    /// Bounded-cardinality shape class (see [`profile::shape_class`]),
    /// e.g. `"r4v12"` = rank 4, ~4k elements.
    pub shape_class: String,
    /// Whether the plan was an autotuner-warmed (measured-best) plan —
    /// lets before/after tail shifts be attributed to warming.
    pub warmed: bool,
    /// Whether the request completed successfully.
    pub ok: bool,
    /// Whether the plan came from the cache (`None` = planning failed
    /// before the cache answered).
    pub cache_hit: Option<bool>,
    /// Time spent waiting for an execution permit, ns.
    pub queue_wait_ns: u64,
    /// Time spent fetching (or building) the plan, ns.
    pub plan_fetch_ns: u64,
    /// Wall-clock execute-phase time, ns.
    pub execute_ns: u64,
    /// Model-predicted kernel time, ns.
    pub predicted_ns: f64,
    /// Simulator-measured kernel time, ns.
    pub measured_ns: f64,
    /// DRAM efficiency of the executed kernel (1.0 = perfectly
    /// coalesced; from the executor's transaction counters).
    pub dram_efficiency: f64,
    /// Shared-memory conflict replays per access (0 = conflict-free).
    pub smem_replay_rate: f64,
    /// Whether this request was coalesced onto another identical
    /// in-flight request's execution (single-flight) instead of running
    /// its own kernel. Coalesced traces copy the leader's measured
    /// numbers so phase attribution stays meaningful.
    pub coalesced: bool,
    /// Error message for failed requests.
    pub error: Option<String>,
}

impl RequestTrace {
    /// Total request latency (queue wait + plan fetch + execute), ns.
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns + self.plan_fetch_ns + self.execute_ns
    }

    /// Signed prediction residual `predicted - measured`, ns.
    pub fn residual_ns(&self) -> f64 {
        self.predicted_ns - self.measured_ns
    }

    /// One-line rendering for logs and the CLI.
    pub fn render(&self) -> String {
        let hit = match self.cache_hit {
            Some(true) => "hit",
            Some(false) => "miss",
            None => "-",
        };
        let status = if self.ok { "ok" } else { "FAIL" };
        format!(
            "#{:<6} {:<22} {:<4} cache={:<4} queue {:>8} ns  plan {:>8} ns  exec {:>8} ns  pred {:>10.0} ns  meas {:>10.0} ns  dram-eff {:.2}  replay {:.2}{}{}{}",
            self.id,
            if self.schema.is_empty() { "?" } else { &self.schema },
            status,
            hit,
            self.queue_wait_ns,
            self.plan_fetch_ns,
            self.execute_ns,
            self.predicted_ns,
            self.measured_ns,
            self.dram_efficiency,
            self.smem_replay_rate,
            if self.warmed { "  warmed" } else { "" },
            if self.coalesced { "  coalesced" } else { "" },
            match &self.error {
                Some(e) => format!("  error: {e}"),
                None => String::new(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_trace_totals_and_render() {
        let t = RequestTrace {
            id: 7,
            schema: "Orthogonal-Distinct".into(),
            ok: true,
            cache_hit: Some(true),
            queue_wait_ns: 10,
            plan_fetch_ns: 20,
            execute_ns: 30,
            predicted_ns: 1000.0,
            measured_ns: 900.0,
            dram_efficiency: 0.97,
            smem_replay_rate: 0.0,
            ..Default::default()
        };
        assert_eq!(t.total_ns(), 60);
        assert!((t.residual_ns() - 100.0).abs() < 1e-12);
        let line = t.render();
        assert!(line.contains("Orthogonal-Distinct"));
        assert!(line.contains("cache=hit"));
    }
}
