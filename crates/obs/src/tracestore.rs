//! Request-scoped span trees and the bounded, sampling-aware store
//! that retains them.
//!
//! A [`SpanNode`] is one timed region with children — the gateway
//! assembles one tree per request (`request` → network/queue/plan/
//! execute → cache-lookup/Alg. 3 sweep/kernel-launch) and offers it to
//! the [`TraceStore`] as a [`StoredTrace`].
//!
//! Sampling follows the [`crate::ExemplarStore`] philosophy: the hot
//! path must never block for a request that is not retained.
//!
//! * **Head sampling** is a pure function of the trace id — a
//!   deterministic hash compared against the configured rate — so the
//!   common unsampled case costs two counter increments and zero locks.
//! * **Tail forcing**: SLO misses, sheds, and errors are always
//!   retained regardless of the head rate (the requests an operator
//!   actually goes looking for), with the reason recorded.
//! * Retained traces enter a bounded ring + id index under one small
//!   mutex; evictions are counted so sampling loss is never invisible
//!   (`ttlg_trace_store_evicted_total`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{MetricKind, MetricsSnapshot, Sample};

/// Retention and sampling knobs. `Copy` so it can ride inside larger
/// `Copy` configs.
#[derive(Debug, Clone, Copy)]
pub struct TraceStoreConfig {
    /// Traces retained; the oldest is evicted beyond this.
    pub capacity: usize,
    /// Head-sampling rate in `[0, 1]`: fraction of ordinary requests
    /// retained. SLO-miss/shed/error traces bypass the rate.
    pub sample_rate: f64,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            capacity: 256,
            sample_rate: 1.0,
        }
    }
}

/// Why a trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleReason {
    /// Head sampling: the trace id hashed under the configured rate.
    Head,
    /// Forced: the request missed its latency objective.
    SloMiss,
    /// Forced: the request was load-shed.
    Shed,
    /// Forced: the request failed.
    Error,
}

impl SampleReason {
    /// Label value for metrics and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            SampleReason::Head => "head",
            SampleReason::SloMiss => "slo_miss",
            SampleReason::Shed => "shed",
            SampleReason::Error => "error",
        }
    }
}

/// One timed region of a request with attributes and children.
#[derive(Debug, Clone, Default)]
pub struct SpanNode {
    /// Span name, e.g. `"plan"`, `"alg3-sweep"`.
    pub name: String,
    /// Process-relative start, ns (see [`crate::clock_ns`]).
    pub start_ns: u64,
    /// Duration, ns.
    pub duration_ns: u64,
    /// String-rendered attributes.
    pub attrs: Vec<(String, String)>,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf span.
    pub fn new(name: impl Into<String>, start_ns: u64, duration_ns: u64) -> SpanNode {
        SpanNode {
            name: name.into(),
            start_ns,
            duration_ns,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Attach an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> SpanNode {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Attach a child (builder style).
    pub fn with_child(mut self, child: SpanNode) -> SpanNode {
        self.children.push(child);
        self
    }

    /// Total spans in this subtree (including self).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }

    /// Depth-first search by span name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Flame-style rendering: one line per span with duration, share of
    /// the root, and a proportional bar, attributes in brackets.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let root_ns = self.duration_ns.max(1);
        self.render_into(&mut out, "", true, true, root_ns);
        out
    }

    fn render_into(
        &self,
        out: &mut String,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        root_ns: u64,
    ) {
        const BAR_WIDTH: usize = 24;
        let (branch, child_prefix) = if is_root {
            (String::new(), String::new())
        } else if is_last {
            (format!("{prefix}`- "), format!("{prefix}   "))
        } else {
            (format!("{prefix}|- "), format!("{prefix}|  "))
        };
        let share = self.duration_ns as f64 / root_ns as f64;
        let filled = ((share * BAR_WIDTH as f64).round() as usize).min(BAR_WIDTH);
        let label = format!("{branch}{}", self.name);
        let attrs = if self.attrs.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = self.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", pairs.join(" "))
        };
        out.push_str(&format!(
            "{label:<32} {:>12.1} us {:>6.1}%  |{}{}|{}\n",
            self.duration_ns as f64 / 1e3,
            share * 100.0,
            "#".repeat(filled),
            " ".repeat(BAR_WIDTH - filled),
            attrs,
        ));
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(
                out,
                &child_prefix,
                i + 1 == self.children.len(),
                false,
                root_ns,
            );
        }
    }
}

/// A fully assembled, retained request trace.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// 32-hex trace id (the `GET /v1/trace/:id` key).
    pub trace_id: String,
    /// The request id echoed to the client.
    pub request_id: String,
    /// Sanitized tenant label.
    pub tenant: String,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Why the trace was retained.
    pub reason: SampleReason,
    /// Process-relative start, ns.
    pub start_ns: u64,
    /// End-to-end duration, ns (the root span's duration).
    pub total_ns: u64,
    /// The span tree, rooted at `request`.
    pub root: SpanNode,
    /// Rendered planner decision trace, when the planner retained one.
    pub decision: Option<String>,
}

struct Inner {
    /// Insertion order, oldest first.
    order: VecDeque<Arc<StoredTrace>>,
    /// Lookup by 32-hex trace id.
    index: HashMap<String, Arc<StoredTrace>>,
}

/// Bounded, sampling-aware trace retention. See the module docs for the
/// locking discipline.
pub struct TraceStore {
    cfg: TraceStoreConfig,
    /// `sample_rate` mapped onto the id-hash space; ids hashing below
    /// this are head-sampled.
    threshold: u64,
    inner: Mutex<Inner>,
    offered: AtomicU64,
    sampled_head: AtomicU64,
    sampled_slo: AtomicU64,
    sampled_shed: AtomicU64,
    sampled_error: AtomicU64,
    unsampled: AtomicU64,
    evicted: AtomicU64,
}

impl TraceStore {
    pub fn new(cfg: TraceStoreConfig) -> TraceStore {
        let rate = cfg.sample_rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        TraceStore {
            cfg: TraceStoreConfig {
                capacity: cfg.capacity.max(1),
                sample_rate: rate,
            },
            threshold,
            inner: Mutex::new(Inner {
                order: VecDeque::new(),
                index: HashMap::new(),
            }),
            offered: AtomicU64::new(0),
            sampled_head: AtomicU64::new(0),
            sampled_slo: AtomicU64::new(0),
            sampled_shed: AtomicU64::new(0),
            sampled_error: AtomicU64::new(0),
            unsampled: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> TraceStoreConfig {
        self.cfg
    }

    /// Decide whether to retain the trace for `trace_id`. Lock-free:
    /// pure arithmetic plus counter increments, so the unsampled common
    /// case never touches the mutex. Pass `forced` for SLO-miss/shed/
    /// error requests, which bypass the head rate.
    pub fn sample_decision(
        &self,
        trace_id: u128,
        forced: Option<SampleReason>,
    ) -> Option<SampleReason> {
        self.offered.fetch_add(1, Ordering::Relaxed);
        if let Some(reason) = forced {
            return Some(reason);
        }
        // Hash rather than use the raw id: client-supplied trace ids
        // may be structured (sequential low bits), and the decision must
        // be uniform in the rate regardless.
        let h = mix128(trace_id);
        if self.threshold == u64::MAX || h < self.threshold {
            Some(SampleReason::Head)
        } else {
            self.unsampled.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Insert a retained trace (the caller got `Some` from
    /// [`sample_decision`](Self::sample_decision)). Evicts the oldest
    /// beyond capacity.
    pub fn insert(&self, trace: StoredTrace) {
        match trace.reason {
            SampleReason::Head => &self.sampled_head,
            SampleReason::SloMiss => &self.sampled_slo,
            SampleReason::Shed => &self.sampled_shed,
            SampleReason::Error => &self.sampled_error,
        }
        .fetch_add(1, Ordering::Relaxed);
        let trace = Arc::new(trace);
        let mut inner = self.inner.lock().expect("trace store poisoned");
        if let Some(old) = inner
            .index
            .insert(trace.trace_id.clone(), Arc::clone(&trace))
        {
            // Same trace id offered twice (client reuse): drop the stale
            // ring entry so `get` and the ring agree.
            inner.order.retain(|t| !Arc::ptr_eq(t, &old));
        }
        inner.order.push_back(trace);
        while inner.order.len() > self.cfg.capacity {
            if let Some(old) = inner.order.pop_front() {
                if let Some(cur) = inner.index.get(&old.trace_id) {
                    if Arc::ptr_eq(cur, &old) {
                        inner.index.remove(&old.trace_id);
                    }
                }
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Look up a retained trace by 32-hex id.
    pub fn get(&self, trace_id: &str) -> Option<Arc<StoredTrace>> {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .index
            .get(trace_id)
            .cloned()
    }

    /// The `n` most recent traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<StoredTrace>> {
        self.inner
            .lock()
            .expect("trace store poisoned")
            .order
            .iter()
            .rev()
            .take(n)
            .cloned()
            .collect()
    }

    /// The `n` slowest retained traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<Arc<StoredTrace>> {
        let mut all: Vec<Arc<StoredTrace>> = self
            .inner
            .lock()
            .expect("trace store poisoned")
            .order
            .iter()
            .cloned()
            .collect();
        all.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        all.truncate(n);
        all
    }

    /// Traces currently retained.
    pub fn resident(&self) -> usize {
        self.inner.lock().expect("trace store poisoned").order.len()
    }

    /// Requests offered to the store so far.
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Traces retained so far (all reasons).
    pub fn sampled(&self) -> u64 {
        self.sampled_head.load(Ordering::Relaxed)
            + self.sampled_slo.load(Ordering::Relaxed)
            + self.sampled_shed.load(Ordering::Relaxed)
            + self.sampled_error.load(Ordering::Relaxed)
    }

    /// Offers dropped by head sampling.
    pub fn unsampled(&self) -> u64 {
        self.unsampled.load(Ordering::Relaxed)
    }

    /// Retained traces later evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Append the `ttlg_trace_store_*` families to a snapshot.
    pub fn export_into(&self, snap: &mut MetricsSnapshot) {
        snap.push_metric(
            "ttlg_trace_store_offered_total",
            "Requests offered to the trace store.",
            MetricKind::Counter,
            vec![Sample::plain(self.offered() as f64)],
        );
        snap.push_metric(
            "ttlg_trace_store_sampled_total",
            "Traces retained, by sampling reason.",
            MetricKind::Counter,
            vec![
                Sample::labelled(
                    "reason",
                    SampleReason::Head.as_str(),
                    self.sampled_head.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "reason",
                    SampleReason::SloMiss.as_str(),
                    self.sampled_slo.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "reason",
                    SampleReason::Shed.as_str(),
                    self.sampled_shed.load(Ordering::Relaxed) as f64,
                ),
                Sample::labelled(
                    "reason",
                    SampleReason::Error.as_str(),
                    self.sampled_error.load(Ordering::Relaxed) as f64,
                ),
            ],
        );
        snap.push_metric(
            "ttlg_trace_store_unsampled_total",
            "Offers dropped by head sampling.",
            MetricKind::Counter,
            vec![Sample::plain(self.unsampled() as f64)],
        );
        snap.push_metric(
            "ttlg_trace_store_evicted_total",
            "Retained traces evicted by the capacity bound.",
            MetricKind::Counter,
            vec![Sample::plain(self.evicted() as f64)],
        );
        snap.push_metric(
            "ttlg_trace_store_resident",
            "Traces currently retained.",
            MetricKind::Gauge,
            vec![Sample::plain(self.resident() as f64)],
        );
    }
}

/// Fold a 128-bit id into a well-mixed 64-bit hash (splitmix64 finalizer
/// over both halves).
fn mix128(id: u128) -> u64 {
    let mut z = (id as u64) ^ ((id >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(total_ns: u64) -> SpanNode {
        SpanNode::new("request", 0, total_ns)
            .with_child(SpanNode::new("network", 0, total_ns / 10))
            .with_child(
                SpanNode::new("plan", total_ns / 10, total_ns / 2)
                    .with_attr("cache", "miss")
                    .with_child(SpanNode::new("cache-lookup", total_ns / 10, 100))
                    .with_child(SpanNode::new("alg3-sweep", total_ns / 5, total_ns / 4)),
            )
            .with_child(SpanNode::new("execute", total_ns / 2, total_ns / 2))
    }

    fn stored(id: u128, total_ns: u64, reason: SampleReason) -> StoredTrace {
        StoredTrace {
            trace_id: format!("{id:032x}"),
            request_id: format!("{id:032x}"),
            tenant: "acme".into(),
            status: 200,
            reason,
            start_ns: 0,
            total_ns,
            root: tree(total_ns),
            decision: None,
        }
    }

    #[test]
    fn span_tree_counts_finds_and_renders() {
        let t = tree(10_000);
        assert_eq!(t.span_count(), 6);
        assert_eq!(t.find("alg3-sweep").unwrap().duration_ns, 2_500);
        assert!(t.find("nope").is_none());
        let text = t.render();
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("|- plan"), "{text}");
        assert!(text.contains("`- execute"), "{text}");
        assert!(text.contains("[cache=miss]"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
        // Children are indented under their parent.
        assert!(text.contains("|  |- cache-lookup"), "{text}");
    }

    #[test]
    fn rate_one_samples_everything() {
        let store = TraceStore::new(TraceStoreConfig::default());
        for id in 1..=100u128 {
            assert_eq!(store.sample_decision(id, None), Some(SampleReason::Head));
        }
        assert_eq!(store.offered(), 100);
        assert_eq!(store.unsampled(), 0);
    }

    #[test]
    fn rate_zero_samples_nothing_but_forced() {
        let store = TraceStore::new(TraceStoreConfig {
            capacity: 8,
            sample_rate: 0.0,
        });
        for id in 1..=50u128 {
            assert_eq!(store.sample_decision(id, None), None);
        }
        assert_eq!(store.unsampled(), 50);
        assert_eq!(
            store.sample_decision(51, Some(SampleReason::Error)),
            Some(SampleReason::Error)
        );
        assert_eq!(
            store.sample_decision(52, Some(SampleReason::Shed)),
            Some(SampleReason::Shed)
        );
    }

    #[test]
    fn fractional_rate_is_roughly_proportional_and_deterministic() {
        let store = TraceStore::new(TraceStoreConfig {
            capacity: 8,
            sample_rate: 0.25,
        });
        let hits: usize = (1..=4000u128)
            .filter(|&id| store.sample_decision(id, None).is_some())
            .count();
        // Deterministic hash, so the count is exact across runs; just
        // bound it loosely around 25%.
        assert!((600..=1400).contains(&hits), "hits {hits}");
        // Same id, same answer.
        let again: usize = (1..=4000u128)
            .filter(|&id| store.sample_decision(id, None).is_some())
            .count();
        assert_eq!(hits, again);
    }

    #[test]
    fn insert_get_recent_slowest() {
        let store = TraceStore::new(TraceStoreConfig::default());
        store.insert(stored(1, 500, SampleReason::Head));
        store.insert(stored(2, 9_000, SampleReason::SloMiss));
        store.insert(stored(3, 2_000, SampleReason::Head));
        assert_eq!(store.resident(), 3);
        let got = store.get(&format!("{:032x}", 2u128)).expect("retained");
        assert_eq!(got.total_ns, 9_000);
        assert_eq!(got.reason, SampleReason::SloMiss);
        let recent: Vec<u64> = store.recent(2).iter().map(|t| t.total_ns).collect();
        assert_eq!(recent, vec![2_000, 9_000]);
        let slowest: Vec<u64> = store.slowest(2).iter().map(|t| t.total_ns).collect();
        assert_eq!(slowest, vec![9_000, 2_000]);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let store = TraceStore::new(TraceStoreConfig {
            capacity: 2,
            sample_rate: 1.0,
        });
        for id in 1..=5u128 {
            store.insert(stored(id, id as u64 * 100, SampleReason::Head));
        }
        assert_eq!(store.resident(), 2);
        assert_eq!(store.evicted(), 3);
        assert!(store.get(&format!("{:032x}", 1u128)).is_none(), "evicted");
        assert!(store.get(&format!("{:032x}", 5u128)).is_some());
    }

    #[test]
    fn duplicate_trace_id_replaces_without_ghost_entry() {
        let store = TraceStore::new(TraceStoreConfig::default());
        store.insert(stored(7, 100, SampleReason::Head));
        store.insert(stored(7, 999, SampleReason::Head));
        assert_eq!(store.resident(), 1);
        assert_eq!(store.get(&format!("{:032x}", 7u128)).unwrap().total_ns, 999);
    }

    #[test]
    fn exports_all_counter_families() {
        let store = TraceStore::new(TraceStoreConfig {
            capacity: 1,
            sample_rate: 0.0,
        });
        store.sample_decision(1, None);
        store.sample_decision(2, Some(SampleReason::Error));
        store.insert(stored(2, 100, SampleReason::Error));
        store.insert(stored(3, 200, SampleReason::Shed));
        let mut snap = MetricsSnapshot::new();
        store.export_into(&mut snap);
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        for expected in [
            "ttlg_trace_store_offered_total",
            "ttlg_trace_store_sampled_total",
            "ttlg_trace_store_unsampled_total",
            "ttlg_trace_store_evicted_total",
            "ttlg_trace_store_resident",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        let sampled = snap
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_trace_store_sampled_total")
            .unwrap();
        assert_eq!(sampled.samples.len(), 4, "one series per reason");
    }

    #[test]
    fn concurrent_offers_and_inserts_are_consistent() {
        let store = Arc::new(TraceStore::new(TraceStoreConfig {
            capacity: 64,
            sample_rate: 1.0,
        }));
        let handles: Vec<_> = (0..8u128)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..200u128 {
                        let id = t * 1_000 + i + 1;
                        if let Some(reason) = store.sample_decision(id, None) {
                            store.insert(stored(id, id as u64, reason));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.offered(), 1_600);
        assert_eq!(store.sampled(), 1_600);
        assert_eq!(store.resident(), 64);
        assert_eq!(store.evicted(), 1_600 - 64);
    }
}
