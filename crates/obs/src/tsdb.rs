//! Bounded in-memory time-series store for metrics history.
//!
//! A scraper (owned by the runtime service) feeds successive
//! [`MetricsSnapshot`]s into [`TimeSeriesStore::ingest`]. The store diffs
//! each snapshot against the previous one and keeps compact delta-encoded
//! series:
//!
//! * **counters** → per-interval increments (with counter-reset detection:
//!   a raw value that goes backwards is treated as a restart and the full
//!   new value becomes the increment),
//! * **gauges** → sampled last-value,
//! * **log2 histograms** → per-bucket count deltas (so windows can be
//!   merged for `quantile_over_time`).
//!
//! Each series holds two retention rings: a *fine* ring (default 1 s × 600
//! points = 10 min) and a *coarse* ring (default 30 s × 480 points = 4 h)
//! fed by downsampling — every `coarse_factor` fine ingests, the pending
//! accumulator (increments/bucket-deltas summed, gauges averaged) is folded
//! into one coarse point. Both rings are hard-capped, so memory is bounded
//! regardless of scrape flood rate.
//!
//! The store also serialises to a line-based text format
//! ([`TimeSeriesStore::save`] / [`TimeSeriesStore::hydrate`]) so `ttlg
//! serve --history-file` survives restarts, and exports its own health as
//! `ttlg_tsdb_*` metrics via [`TimeSeriesStore::export_into`].

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::snapshot::{MetricKind, MetricsSnapshot, Sample};

/// Retention / resolution knobs for a [`TimeSeriesStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsdbConfig {
    /// Nominal spacing between scrapes, in milliseconds. Informational
    /// (points carry real timestamps); used by consumers to pick steps.
    pub fine_step_ms: u64,
    /// Number of points kept in the fine ring per series.
    pub fine_capacity: usize,
    /// Fine ingests folded into one coarse point.
    pub coarse_factor: u32,
    /// Number of points kept in the coarse ring per series.
    pub coarse_capacity: usize,
    /// Hard cap on distinct series (scalar + histogram); excess series
    /// are dropped and counted in `ttlg_tsdb_series_dropped_total`.
    pub max_series: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self {
            fine_step_ms: 1_000,
            fine_capacity: 600,
            coarse_factor: 30,
            coarse_capacity: 480,
            max_series: 2_048,
        }
    }
}

/// A series identity: metric family name plus its label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug)]
struct ScalarSeries {
    kind: MetricKind,
    /// Last raw cumulative value seen (counters) or last sample (gauges).
    last_raw: f64,
    fine: VecDeque<(u64, f64)>,
    coarse: VecDeque<(u64, f64)>,
    /// Downsampling accumulator: sum of increments (counter) or sum of
    /// samples (gauge, averaged on fold).
    pending: f64,
    pending_n: u32,
}

#[derive(Debug)]
struct HistSeries {
    upper_bounds: Vec<f64>,
    last_counts: Vec<u64>,
    fine: VecDeque<(u64, Vec<u64>)>,
    coarse: VecDeque<(u64, Vec<u64>)>,
    pending: Vec<u64>,
    pending_n: u32,
}

#[derive(Debug, Default)]
struct StoreInner {
    scalars: BTreeMap<SeriesKey, ScalarSeries>,
    hists: BTreeMap<SeriesKey, HistSeries>,
    scrapes: u64,
    counter_resets: u64,
    series_dropped: u64,
    last_ingest_ms: u64,
}

/// One scalar series read out of the store: merged coarse + fine points.
#[derive(Debug, Clone)]
pub struct ScalarPoints {
    pub labels: Vec<(String, String)>,
    pub kind: MetricKind,
    /// `(timestamp_ms, value)`; counters carry per-interval increments,
    /// gauges carry sampled values. Sorted by timestamp.
    pub points: Vec<(u64, f64)>,
}

/// One histogram series read out of the store: merged coarse + fine points.
#[derive(Debug, Clone)]
pub struct HistPoints {
    pub labels: Vec<(String, String)>,
    pub upper_bounds: Vec<f64>,
    /// `(timestamp_ms, per-bucket increments)`. Sorted by timestamp.
    pub points: Vec<(u64, Vec<u64>)>,
}

/// Bounded, thread-safe metrics history store. See module docs.
#[derive(Debug)]
pub struct TimeSeriesStore {
    cfg: TsdbConfig,
    inner: Mutex<StoreInner>,
}

impl Default for TimeSeriesStore {
    fn default() -> Self {
        Self::new(TsdbConfig::default())
    }
}

impl TimeSeriesStore {
    pub fn new(cfg: TsdbConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(StoreInner::default()),
        }
    }

    pub fn config(&self) -> TsdbConfig {
        self.cfg
    }

    /// Diff `snap` against the previous scrape and append one point per
    /// series. `now_ms` is the scrape timestamp (wall-clock millis); tests
    /// may use synthetic clocks.
    pub fn ingest(&self, snap: &MetricsSnapshot, now_ms: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.scrapes += 1;
        inner.last_ingest_ms = inner.last_ingest_ms.max(now_ms);
        let cfg = self.cfg;

        for metric in &snap.metrics {
            // The store's own health families would self-reference (the
            // snapshot embeds them); skip to keep the diff stable.
            if metric.name.starts_with("ttlg_tsdb_") {
                continue;
            }
            for sample in &metric.samples {
                if !sample.value.is_finite() {
                    continue;
                }
                let key = SeriesKey {
                    name: metric.name.clone(),
                    labels: sample.labels.clone(),
                };
                let at_cap = !inner.scalars.contains_key(&key)
                    && inner.scalars.len() + inner.hists.len() >= cfg.max_series;
                if at_cap {
                    inner.series_dropped += 1;
                    continue;
                }
                let mut resets = 0u64;
                let series = inner.scalars.entry(key).or_insert_with(|| ScalarSeries {
                    kind: metric.kind,
                    last_raw: 0.0,
                    fine: VecDeque::new(),
                    coarse: VecDeque::new(),
                    pending: 0.0,
                    pending_n: 0,
                });
                let value = match metric.kind {
                    MetricKind::Counter => {
                        let inc = if sample.value + 1e-9 < series.last_raw {
                            resets += 1;
                            sample.value
                        } else {
                            sample.value - series.last_raw
                        };
                        series.last_raw = sample.value;
                        inc
                    }
                    MetricKind::Gauge => {
                        series.last_raw = sample.value;
                        sample.value
                    }
                };
                push_scalar(series, now_ms, value, &cfg);
                inner.counter_resets += resets;
            }
        }

        for hist in &snap.histograms {
            let key = SeriesKey {
                name: hist.name.clone(),
                labels: hist.labels.clone(),
            };
            let at_cap = !inner.hists.contains_key(&key)
                && inner.scalars.len() + inner.hists.len() >= cfg.max_series;
            if at_cap {
                inner.series_dropped += 1;
                continue;
            }
            let mut resets = 0u64;
            let n_buckets = hist.counts.len();
            let series = inner.hists.entry(key).or_insert_with(|| HistSeries {
                upper_bounds: hist.upper_bounds.clone(),
                last_counts: vec![0; n_buckets],
                fine: VecDeque::new(),
                coarse: VecDeque::new(),
                pending: vec![0; n_buckets],
                pending_n: 0,
            });
            if series.last_counts.len() != n_buckets {
                // Bucket layout changed (shouldn't happen); restart series.
                series.last_counts = vec![0; n_buckets];
                series.pending = vec![0; n_buckets];
                series.upper_bounds = hist.upper_bounds.clone();
            }
            let reset = hist
                .counts
                .iter()
                .zip(&series.last_counts)
                .any(|(now, prev)| now < prev);
            let deltas: Vec<u64> = if reset {
                resets += 1;
                hist.counts.clone()
            } else {
                hist.counts
                    .iter()
                    .zip(&series.last_counts)
                    .map(|(now, prev)| now - prev)
                    .collect()
            };
            series.last_counts.copy_from_slice(&hist.counts);
            push_hist(series, now_ms, deltas, &cfg);
            inner.counter_resets += resets;
        }
    }

    /// Timestamp of the most recent ingest, or `None` before the first.
    pub fn last_ingest_ms(&self) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        (inner.scrapes > 0).then_some(inner.last_ingest_ms)
    }

    pub fn scrapes(&self) -> u64 {
        self.inner.lock().unwrap().scrapes
    }

    /// Number of distinct series currently tracked (scalar + histogram).
    pub fn series_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.scalars.len() + inner.hists.len()
    }

    /// Total retained points across every ring.
    pub fn point_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner
            .scalars
            .values()
            .map(|s| s.fine.len() + s.coarse.len())
            .sum::<usize>()
            + inner
                .hists
                .values()
                .map(|s| s.fine.len() + s.coarse.len())
                .sum::<usize>()
    }

    /// All scalar series of family `name`, each as merged coarse+fine
    /// points (coarse points older than the fine window, then fine).
    pub fn scalar_data(&self, name: &str) -> Vec<ScalarPoints> {
        let inner = self.inner.lock().unwrap();
        inner
            .scalars
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, s)| ScalarPoints {
                labels: k.labels.clone(),
                kind: s.kind,
                points: merge_rings(&s.coarse, &s.fine, |v| *v),
            })
            .collect()
    }

    /// All histogram series of family `name`, merged like [`Self::scalar_data`].
    pub fn hist_data(&self, name: &str) -> Vec<HistPoints> {
        let inner = self.inner.lock().unwrap();
        inner
            .hists
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(k, s)| HistPoints {
                labels: k.labels.clone(),
                upper_bounds: s.upper_bounds.clone(),
                points: merge_rings(&s.coarse, &s.fine, |v| v.clone()),
            })
            .collect()
    }

    /// Last raw cumulative value summed across every series of a counter
    /// family — used to seed `AlertEngine::prev_counters` after a restart
    /// so a recreated engine doesn't treat history as one giant delta.
    pub fn last_raw_sum(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        let mut sum = 0.0;
        let mut any = false;
        for (k, s) in &inner.scalars {
            if k.name == name {
                sum += s.last_raw;
                any = true;
            }
        }
        any.then_some(sum)
    }

    /// Family names with at least one retained series, sorted.
    pub fn family_names(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut names: Vec<String> = inner
            .scalars
            .keys()
            .chain(inner.hists.keys())
            .map(|k| k.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Append the store's own health gauges/counters to a snapshot.
    pub fn export_into(&self, snap: &mut MetricsSnapshot) {
        let inner = self.inner.lock().unwrap();
        let points = inner
            .scalars
            .values()
            .map(|s| s.fine.len() + s.coarse.len())
            .sum::<usize>()
            + inner
                .hists
                .values()
                .map(|s| s.fine.len() + s.coarse.len())
                .sum::<usize>();
        let series = inner.scalars.len() + inner.hists.len();
        snap.push_metric(
            "ttlg_tsdb_scrapes_total",
            "Snapshots ingested into the metrics history store.",
            MetricKind::Counter,
            vec![Sample::plain(inner.scrapes as f64)],
        );
        snap.push_metric(
            "ttlg_tsdb_series",
            "Distinct series retained in the metrics history store.",
            MetricKind::Gauge,
            vec![Sample::plain(series as f64)],
        );
        snap.push_metric(
            "ttlg_tsdb_points",
            "Total points retained across all history rings.",
            MetricKind::Gauge,
            vec![Sample::plain(points as f64)],
        );
        snap.push_metric(
            "ttlg_tsdb_counter_resets_total",
            "Counter resets detected while diffing snapshots.",
            MetricKind::Counter,
            vec![Sample::plain(inner.counter_resets as f64)],
        );
        snap.push_metric(
            "ttlg_tsdb_series_dropped_total",
            "Series rejected because the store hit its series cap.",
            MetricKind::Counter,
            vec![Sample::plain(inner.series_dropped as f64)],
        );
    }

    /// Serialise the full store state to the `ttlg-tsdb 1` text format.
    pub fn save(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        out.push_str("ttlg-tsdb 1\n");
        out.push_str(&format!(
            "meta {} {} {} {}\n",
            inner.scrapes, inner.counter_resets, inner.series_dropped, inner.last_ingest_ms
        ));
        for (k, s) in &inner.scalars {
            let kind = match s.kind {
                MetricKind::Counter => 'c',
                MetricKind::Gauge => 'g',
            };
            out.push_str(&format!(
                "S {kind}|{}|{}|{}|{}|{}\n",
                k.name,
                render_labels(&k.labels),
                s.last_raw,
                s.pending,
                s.pending_n
            ));
            out.push_str(&format!("SF {}\n", render_scalar_ring(&s.fine)));
            out.push_str(&format!("SC {}\n", render_scalar_ring(&s.coarse)));
        }
        for (k, s) in &inner.hists {
            out.push_str(&format!(
                "H {}|{}|{}\n",
                k.name,
                render_labels(&k.labels),
                s.pending_n
            ));
            out.push_str(&format!("HB {}\n", join_f64(&s.upper_bounds)));
            out.push_str(&format!("HL {}\n", join_u64(&s.last_counts)));
            out.push_str(&format!("HP {}\n", join_u64(&s.pending)));
            out.push_str(&format!("HF {}\n", render_hist_ring(&s.fine)));
            out.push_str(&format!("HC {}\n", render_hist_ring(&s.coarse)));
        }
        out
    }

    /// Replace the store's contents from a [`Self::save`] dump. Rings are
    /// truncated (oldest first) to this store's configured capacities.
    /// Returns the number of series restored.
    pub fn hydrate(&self, text: &str) -> Result<usize, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty history file")?;
        if header.trim() != "ttlg-tsdb 1" {
            return Err(format!("unsupported history format: {header:?}"));
        }
        let mut loaded = StoreInner::default();
        let mut restored = 0usize;
        let mut pending_scalar: Option<SeriesKey> = None;
        let mut pending_hist: Option<SeriesKey> = None;
        for (idx, line) in lines.enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("history line {}: {msg}", idx + 2);
            if let Some(rest) = line.strip_prefix("meta ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 4 {
                    return Err(err("malformed meta"));
                }
                loaded.scrapes = parts[0].parse().map_err(|_| err("bad scrapes"))?;
                loaded.counter_resets = parts[1].parse().map_err(|_| err("bad resets"))?;
                loaded.series_dropped = parts[2].parse().map_err(|_| err("bad dropped"))?;
                loaded.last_ingest_ms = parts[3].parse().map_err(|_| err("bad last_ms"))?;
            } else if let Some(rest) = line.strip_prefix("S ") {
                let parts: Vec<&str> = rest.split('|').collect();
                if parts.len() != 6 {
                    return Err(err("malformed scalar record"));
                }
                let kind = match parts[0] {
                    "c" => MetricKind::Counter,
                    "g" => MetricKind::Gauge,
                    _ => return Err(err("bad scalar kind")),
                };
                let key = SeriesKey {
                    name: parts[1].to_string(),
                    labels: parse_labels(parts[2]).ok_or_else(|| err("bad labels"))?,
                };
                loaded.scalars.insert(
                    key.clone(),
                    ScalarSeries {
                        kind,
                        last_raw: parts[3].parse().map_err(|_| err("bad last_raw"))?,
                        fine: VecDeque::new(),
                        coarse: VecDeque::new(),
                        pending: parts[4].parse().map_err(|_| err("bad pending"))?,
                        pending_n: parts[5].parse().map_err(|_| err("bad pending_n"))?,
                    },
                );
                pending_scalar = Some(key);
                pending_hist = None;
                restored += 1;
            } else if let Some(rest) = tagged(line, "SF") {
                let key = pending_scalar.as_ref().ok_or_else(|| err("orphan SF"))?;
                let s = loaded.scalars.get_mut(key).unwrap();
                s.fine = parse_scalar_ring(rest).ok_or_else(|| err("bad SF ring"))?;
                truncate_front(&mut s.fine, self.cfg.fine_capacity);
            } else if let Some(rest) = tagged(line, "SC") {
                let key = pending_scalar.as_ref().ok_or_else(|| err("orphan SC"))?;
                let s = loaded.scalars.get_mut(key).unwrap();
                s.coarse = parse_scalar_ring(rest).ok_or_else(|| err("bad SC ring"))?;
                truncate_front(&mut s.coarse, self.cfg.coarse_capacity);
            } else if let Some(rest) = line.strip_prefix("H ") {
                let parts: Vec<&str> = rest.split('|').collect();
                if parts.len() != 3 {
                    return Err(err("malformed hist record"));
                }
                let key = SeriesKey {
                    name: parts[0].to_string(),
                    labels: parse_labels(parts[1]).ok_or_else(|| err("bad labels"))?,
                };
                loaded.hists.insert(
                    key.clone(),
                    HistSeries {
                        upper_bounds: Vec::new(),
                        last_counts: Vec::new(),
                        fine: VecDeque::new(),
                        coarse: VecDeque::new(),
                        pending: Vec::new(),
                        pending_n: parts[2].parse().map_err(|_| err("bad pending_n"))?,
                    },
                );
                pending_hist = Some(key);
                pending_scalar = None;
                restored += 1;
            } else if let Some(rest) = tagged(line, "HB") {
                let key = pending_hist.as_ref().ok_or_else(|| err("orphan HB"))?;
                loaded.hists.get_mut(key).unwrap().upper_bounds =
                    parse_f64_list(rest).ok_or_else(|| err("bad bounds"))?;
            } else if let Some(rest) = tagged(line, "HL") {
                let key = pending_hist.as_ref().ok_or_else(|| err("orphan HL"))?;
                loaded.hists.get_mut(key).unwrap().last_counts =
                    parse_u64_list(rest).ok_or_else(|| err("bad last counts"))?;
            } else if let Some(rest) = tagged(line, "HP") {
                let key = pending_hist.as_ref().ok_or_else(|| err("orphan HP"))?;
                loaded.hists.get_mut(key).unwrap().pending =
                    parse_u64_list(rest).ok_or_else(|| err("bad pending counts"))?;
            } else if let Some(rest) = tagged(line, "HF") {
                let key = pending_hist.as_ref().ok_or_else(|| err("orphan HF"))?;
                let s = loaded.hists.get_mut(key).unwrap();
                s.fine = parse_hist_ring(rest).ok_or_else(|| err("bad HF ring"))?;
                truncate_front(&mut s.fine, self.cfg.fine_capacity);
            } else if let Some(rest) = tagged(line, "HC") {
                let key = pending_hist.as_ref().ok_or_else(|| err("orphan HC"))?;
                let s = loaded.hists.get_mut(key).unwrap();
                s.coarse = parse_hist_ring(rest).ok_or_else(|| err("bad HC ring"))?;
                truncate_front(&mut s.coarse, self.cfg.coarse_capacity);
            } else {
                return Err(err("unrecognised record"));
            }
        }
        *self.inner.lock().unwrap() = loaded;
        Ok(restored)
    }
}

/// Split a `TAG payload` line; an empty payload may omit the space
/// (`save` writes `TAG ` but editors/trims may drop the trailing blank).
fn tagged<'a>(line: &'a str, tag: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(tag)?;
    if rest.is_empty() {
        Some("")
    } else {
        rest.strip_prefix(' ')
    }
}

fn push_scalar(series: &mut ScalarSeries, now_ms: u64, value: f64, cfg: &TsdbConfig) {
    series.fine.push_back((now_ms, value));
    truncate_front(&mut series.fine, cfg.fine_capacity);
    series.pending += value;
    series.pending_n += 1;
    if series.pending_n >= cfg.coarse_factor.max(1) {
        let folded = match series.kind {
            MetricKind::Counter => series.pending,
            MetricKind::Gauge => series.pending / series.pending_n as f64,
        };
        series.coarse.push_back((now_ms, folded));
        truncate_front(&mut series.coarse, cfg.coarse_capacity);
        series.pending = 0.0;
        series.pending_n = 0;
    }
}

fn push_hist(series: &mut HistSeries, now_ms: u64, deltas: Vec<u64>, cfg: &TsdbConfig) {
    if series.pending.len() != deltas.len() {
        series.pending = vec![0; deltas.len()];
        series.pending_n = 0;
    }
    for (acc, d) in series.pending.iter_mut().zip(&deltas) {
        *acc += d;
    }
    series.pending_n += 1;
    series.fine.push_back((now_ms, deltas));
    truncate_front(&mut series.fine, cfg.fine_capacity);
    if series.pending_n >= cfg.coarse_factor.max(1) {
        let folded = std::mem::replace(&mut series.pending, vec![0; series.last_counts.len()]);
        series.coarse.push_back((now_ms, folded));
        truncate_front(&mut series.coarse, cfg.coarse_capacity);
        series.pending_n = 0;
    }
}

fn truncate_front<T>(ring: &mut VecDeque<T>, cap: usize) {
    while ring.len() > cap.max(1) {
        ring.pop_front();
    }
}

/// Merge a coarse and a fine ring into one sorted point list. Coarse
/// points strictly older than the fine window come first; the one coarse
/// fold that *straddles* the fine-window boundary (its interval covers
/// scrapes already evicted from the fine ring *and* the oldest retained
/// fine points) is included too, with the fine points it covers skipped.
/// Every ingest is therefore represented exactly once — counter
/// increments sum to the true total across the whole retained span.
fn merge_rings<T, U, F>(
    coarse: &VecDeque<(u64, T)>,
    fine: &VecDeque<(u64, T)>,
    f: F,
) -> Vec<(u64, U)>
where
    F: Fn(&T) -> U,
{
    let cutoff = fine.front().map(|(t, _)| *t).unwrap_or(u64::MAX);
    let mut out: Vec<(u64, U)> = coarse
        .iter()
        .filter(|(t, _)| *t < cutoff)
        .map(|(t, v)| (*t, f(v)))
        .collect();
    // A fold at `t >= cutoff` whose predecessor is older than the fine
    // window covers evicted scrapes; take the first such fold whole and
    // start the fine points after it.
    let straddler = coarse.iter().find(|(t, _)| *t >= cutoff);
    let fine_start = match straddler {
        Some((t, v)) => {
            out.push((*t, f(v)));
            *t
        }
        None => 0,
    };
    out.extend(
        fine.iter()
            .filter(|(t, _)| *t > fine_start)
            .map(|(t, v)| (*t, f(v))),
    );
    out
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return "-".to_string();
    }
    labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_labels(text: &str) -> Option<Vec<(String, String)>> {
    if text == "-" {
        return Some(Vec::new());
    }
    text.split(';')
        .map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

fn render_scalar_ring(ring: &VecDeque<(u64, f64)>) -> String {
    ring.iter()
        .map(|(t, v)| format!("{t}:{v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_scalar_ring(text: &str) -> Option<VecDeque<(u64, f64)>> {
    if text.trim().is_empty() {
        return Some(VecDeque::new());
    }
    text.split(',')
        .map(|p| {
            let (t, v) = p.split_once(':')?;
            Some((t.parse().ok()?, v.parse().ok()?))
        })
        .collect()
}

fn render_hist_ring(ring: &VecDeque<(u64, Vec<u64>)>) -> String {
    ring.iter()
        .map(|(t, counts)| format!("{t}:{}", join_u64_sep(counts, '|')))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_hist_ring(text: &str) -> Option<VecDeque<(u64, Vec<u64>)>> {
    if text.trim().is_empty() {
        return Some(VecDeque::new());
    }
    text.split(',')
        .map(|p| {
            let (t, counts) = p.split_once(':')?;
            let counts: Option<Vec<u64>> = counts.split('|').map(|c| c.parse().ok()).collect();
            Some((t.parse().ok()?, counts?))
        })
        .collect()
}

fn join_f64(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn join_u64(values: &[u64]) -> String {
    join_u64_sep(values, ',')
}

fn join_u64_sep(values: &[u64], sep: char) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(sep);
        }
        out.push_str(&v.to_string());
    }
    out
}

fn parse_f64_list(text: &str) -> Option<Vec<f64>> {
    if text.trim().is_empty() {
        return Some(Vec::new());
    }
    text.split(',').map(|v| v.parse().ok()).collect()
}

fn parse_u64_list(text: &str) -> Option<Vec<u64>> {
    if text.trim().is_empty() {
        return Some(Vec::new());
    }
    text.split(',').map(|v| v.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_snap(name: &str, value: f64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_metric(
            name,
            "test",
            MetricKind::Counter,
            vec![Sample::plain(value)],
        );
        snap
    }

    fn gauge_snap(name: &str, value: f64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_metric(name, "test", MetricKind::Gauge, vec![Sample::plain(value)]);
        snap
    }

    #[test]
    fn counters_become_increments_and_gauges_last_value() {
        let store = TimeSeriesStore::default();
        store.ingest(&counter_snap("ttlg_x_total", 5.0), 1_000);
        store.ingest(&counter_snap("ttlg_x_total", 12.0), 2_000);
        store.ingest(&counter_snap("ttlg_x_total", 12.0), 3_000);
        let data = store.scalar_data("ttlg_x_total");
        assert_eq!(data.len(), 1);
        assert_eq!(
            data[0].points,
            vec![(1_000, 5.0), (2_000, 7.0), (3_000, 0.0)]
        );

        store.ingest(&gauge_snap("ttlg_depth", 3.0), 4_000);
        store.ingest(&gauge_snap("ttlg_depth", 9.0), 5_000);
        let data = store.scalar_data("ttlg_depth");
        assert_eq!(data[0].points, vec![(4_000, 3.0), (5_000, 9.0)]);
    }

    #[test]
    fn counter_reset_is_detected_and_counted() {
        let store = TimeSeriesStore::default();
        store.ingest(&counter_snap("ttlg_x_total", 100.0), 1_000);
        // Process restart: raw value goes backwards. The new value is the
        // increase since the restart, not a negative delta.
        store.ingest(&counter_snap("ttlg_x_total", 4.0), 2_000);
        let data = store.scalar_data("ttlg_x_total");
        assert_eq!(data[0].points, vec![(1_000, 100.0), (2_000, 4.0)]);
        let mut snap = MetricsSnapshot::new();
        store.export_into(&mut snap);
        let resets = snap
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_tsdb_counter_resets_total")
            .unwrap();
        assert_eq!(resets.samples[0].value, 1.0);
    }

    #[test]
    fn rings_stay_bounded_under_flood() {
        let cfg = TsdbConfig {
            fine_capacity: 16,
            coarse_factor: 4,
            coarse_capacity: 8,
            ..TsdbConfig::default()
        };
        let store = TimeSeriesStore::new(cfg);
        for i in 0..10_000u64 {
            let mut snap = counter_snap("ttlg_x_total", i as f64);
            snap.push_histogram(
                "ttlg_lat_us",
                "test",
                Vec::new(),
                vec![1.0, 2.0],
                vec![i, i / 2, i / 4],
                i as f64,
            );
            store.ingest(&snap, i * 7);
        }
        assert_eq!(store.scrapes(), 10_000);
        let inner = store.inner.lock().unwrap();
        for s in inner.scalars.values() {
            assert!(
                s.fine.len() <= 16,
                "fine ring exceeded cap: {}",
                s.fine.len()
            );
            assert!(
                s.coarse.len() <= 8,
                "coarse ring exceeded cap: {}",
                s.coarse.len()
            );
        }
        for h in inner.hists.values() {
            assert!(h.fine.len() <= 16);
            assert!(h.coarse.len() <= 8);
        }
    }

    #[test]
    fn series_cap_drops_excess_series() {
        let cfg = TsdbConfig {
            max_series: 2,
            ..TsdbConfig::default()
        };
        let store = TimeSeriesStore::new(cfg);
        let mut snap = MetricsSnapshot::new();
        for i in 0..5 {
            snap.push_metric(
                &format!("ttlg_fam_{i}"),
                "test",
                MetricKind::Gauge,
                vec![Sample::plain(1.0)],
            );
        }
        store.ingest(&snap, 1_000);
        assert_eq!(store.series_count(), 2);
        let mut out = MetricsSnapshot::new();
        store.export_into(&mut out);
        let dropped = out
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_tsdb_series_dropped_total")
            .unwrap();
        assert_eq!(dropped.samples[0].value, 3.0);
    }

    #[test]
    fn downsampling_sums_counters_and_averages_gauges() {
        let cfg = TsdbConfig {
            fine_capacity: 4,
            coarse_factor: 4,
            coarse_capacity: 100,
            ..TsdbConfig::default()
        };
        let store = TimeSeriesStore::new(cfg);
        // 8 scrapes: counter +1 each, gauge value = scrape index.
        for i in 0..8u64 {
            let mut snap = counter_snap("ttlg_c_total", (i + 1) as f64);
            snap.push_metric(
                "ttlg_g",
                "test",
                MetricKind::Gauge,
                vec![Sample::plain(i as f64)],
            );
            store.ingest(&snap, (i + 1) * 1_000);
        }
        let inner = store.inner.lock().unwrap();
        let c = inner
            .scalars
            .get(&SeriesKey {
                name: "ttlg_c_total".into(),
                labels: Vec::new(),
            })
            .unwrap();
        // First fold covers scrapes 1-4: first increment is the raw value
        // (1.0, no prior baseline) + three +1 increments = 4.0.
        assert_eq!(
            c.coarse.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![4.0, 4.0]
        );
        let g = inner
            .scalars
            .get(&SeriesKey {
                name: "ttlg_g".into(),
                labels: Vec::new(),
            })
            .unwrap();
        // Gauge folds average: (0+1+2+3)/4 = 1.5, (4+5+6+7)/4 = 5.5.
        assert_eq!(
            g.coarse.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![1.5, 5.5]
        );
    }

    #[test]
    fn merged_read_spans_coarse_and_fine_without_double_counting() {
        let cfg = TsdbConfig {
            fine_capacity: 6,
            coarse_factor: 3,
            coarse_capacity: 100,
            ..TsdbConfig::default()
        };
        let store = TimeSeriesStore::new(cfg);
        // 12 scrapes of +1 increments at 1s cadence. Fine keeps the last 6;
        // coarse holds folds of scrapes 1-3, 4-6, 7-9, 10-12.
        for i in 0..12u64 {
            store.ingest(
                &counter_snap("ttlg_c_total", (i + 1) as f64),
                (i + 1) * 1_000,
            );
        }
        let data = store.scalar_data("ttlg_c_total");
        let total: f64 = data[0].points.iter().map(|(_, v)| v).sum();
        // Every unit of the raw counter is represented exactly once.
        assert_eq!(total, 12.0);
        // The merged timeline spans back past the fine window.
        assert!(data[0].points.first().unwrap().0 < 7_000);
    }

    #[test]
    fn ten_minutes_of_history_is_queryable_at_fine_resolution() {
        let store = TimeSeriesStore::default();
        // Default config: 1s × 600 fine. 700 scrapes → the oldest 100
        // intervals live only in the coarse ring.
        for i in 0..700u64 {
            store.ingest(
                &counter_snap("ttlg_c_total", (i + 1) as f64),
                (i + 1) * 1_000,
            );
        }
        let data = store.scalar_data("ttlg_c_total");
        let span = data[0].points.last().unwrap().0 - data[0].points.first().unwrap().0;
        assert!(span >= 600_000, "retained span {span}ms < 10 min");
        let total: f64 = data[0].points.iter().map(|(_, v)| v).sum();
        assert_eq!(total, 700.0);
    }

    #[test]
    fn save_and_hydrate_round_trip() {
        let store = TimeSeriesStore::default();
        for i in 0..50u64 {
            let mut snap = counter_snap("ttlg_c_total", (i * 3) as f64);
            snap.push_metric(
                "ttlg_g",
                "test",
                MetricKind::Gauge,
                vec![Sample::labelled("schema", "f64-3d", i as f64)],
            );
            snap.push_histogram(
                "ttlg_lat_us",
                "test",
                Vec::new(),
                vec![2.0, 4.0, 8.0],
                vec![i, i / 2, i / 3, i / 5],
                i as f64,
            );
            store.ingest(&snap, 10_000 + i * 1_000);
        }
        let dump = store.save();
        let restored = TimeSeriesStore::default();
        let n = restored.hydrate(&dump).expect("hydrate");
        assert_eq!(n, 3);
        assert_eq!(restored.save(), dump);
        assert_eq!(restored.last_ingest_ms(), store.last_ingest_ms());
        assert_eq!(
            restored.scalar_data("ttlg_c_total")[0].points,
            store.scalar_data("ttlg_c_total")[0].points
        );
        assert_eq!(
            restored.hist_data("ttlg_lat_us")[0].points,
            store.hist_data("ttlg_lat_us")[0].points
        );
        // Counter diffing continues seamlessly after hydrate.
        restored.ingest(&counter_snap("ttlg_c_total", 49.0 * 3.0 + 5.0), 70_000);
        let pts = restored.scalar_data("ttlg_c_total");
        assert_eq!(pts[0].points.last(), Some(&(70_000, 5.0)));
    }

    #[test]
    fn hydrate_rejects_garbage() {
        let store = TimeSeriesStore::default();
        assert!(store.hydrate("").is_err());
        assert!(store.hydrate("not-a-history\n").is_err());
        assert!(store.hydrate("ttlg-tsdb 1\nS c|x|-|nope|0|0\n").is_err());
    }

    #[test]
    fn tsdb_families_are_not_self_ingested() {
        let store = TimeSeriesStore::default();
        let mut snap = MetricsSnapshot::new();
        store.export_into(&mut snap);
        store.ingest(&snap, 1_000);
        assert!(store.family_names().is_empty());
    }
}
