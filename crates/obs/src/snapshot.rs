//! Renderer-neutral metrics snapshot.
//!
//! Producers (the runtime service) assemble a [`MetricsSnapshot`] from
//! their atomics; exporters ([`crate::prom`], [`crate::json`]) render it
//! without knowing anything about the producer. Histograms carry raw
//! per-bucket counts with explicit upper bounds; exporters derive the
//! cumulative form Prometheus wants.

/// Kind of a scalar metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time value.
    Gauge,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One labelled sample of a scalar metric.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label pairs, e.g. `[("schema", "Copy")]`. May be empty.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

impl Sample {
    /// An unlabelled sample.
    pub fn plain(value: f64) -> Self {
        Sample {
            labels: Vec::new(),
            value,
        }
    }

    /// A sample with one label pair.
    pub fn labelled(key: &str, value_label: &str, value: f64) -> Self {
        Sample {
            labels: vec![(key.to_string(), value_label.to_string())],
            value,
        }
    }
}

/// A scalar metric family (one name, many labelled samples).
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric name, e.g. `ttlg_requests_total`.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The samples.
    pub samples: Vec<Sample>,
}

/// A histogram family with explicit bucket upper bounds.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Metric name, e.g. `ttlg_plan_latency_us`.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Labels shared by every bucket of this histogram.
    pub labels: Vec<(String, String)>,
    /// Upper bound of each bucket (same unit as the samples). The final
    /// overflow bucket is implicit (`+Inf`).
    pub upper_bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `upper_bounds.len() + 1`
    /// entries, the last being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values (same unit as the bounds).
    pub sum: f64,
}

impl Histogram {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Cumulative counts (one per upper bound, plus `+Inf`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut cum = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                cum += c;
                cum
            })
            .collect()
    }
}

/// Everything one scrape/export reports.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Scalar metric families.
    pub metrics: Vec<Metric>,
    /// Histogram families.
    pub histograms: Vec<Histogram>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a scalar metric family.
    pub fn push_metric(&mut self, name: &str, help: &str, kind: MetricKind, samples: Vec<Sample>) {
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples,
        });
    }

    /// Add a histogram family.
    #[allow(clippy::too_many_arguments)]
    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: Vec<(String, String)>,
        upper_bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
    ) {
        debug_assert_eq!(counts.len(), upper_bounds.len() + 1);
        self.histograms.push(Histogram {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            upper_bounds,
            counts,
            sum,
        });
    }

    /// Whether the snapshot carries any samples at all.
    pub fn is_empty(&self) -> bool {
        self.metrics.iter().all(|m| m.samples.is_empty()) && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_cumulates() {
        let h = Histogram {
            name: "h".into(),
            help: String::new(),
            labels: Vec::new(),
            upper_bounds: vec![1.0, 2.0],
            counts: vec![3, 4, 5],
            sum: 10.0,
        };
        assert_eq!(h.count(), 12);
        assert_eq!(h.cumulative(), vec![3, 7, 12]);
    }

    #[test]
    fn snapshot_emptiness() {
        let mut s = MetricsSnapshot::new();
        assert!(s.is_empty());
        s.push_metric(
            "x_total",
            "help",
            MetricKind::Counter,
            vec![Sample::plain(1.0)],
        );
        assert!(!s.is_empty());
    }
}
