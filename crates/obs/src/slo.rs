//! Latency-objective (SLO) tracking: hit rate and multi-window burn
//! rate.
//!
//! The tracker answers two questions the raw histograms cannot:
//!
//! 1. **Hit rate** — what fraction of all requests met the latency
//!    objective (`total_ns <= target_us`)?
//! 2. **Burn rate** — how fast is the error budget being consumed *right
//!    now*? Burn rate over a window is
//!    `(violations / total) / (1 - goal)`: `1.0` means the budget burns
//!    exactly at the sustainable rate, `>1` means the SLO will be missed
//!    if the window's behaviour persists. Two windows (short + long) are
//!    tracked so alerts can distinguish a transient spike from a
//!    sustained regression — the standard multi-window burn-rate alert
//!    shape.
//!
//! Recording is lock-free: lifetime counters are plain `fetch_add`s, and
//! each window is a small ring of epoch-stamped slots reset via a CAS by
//! whichever writer first enters a new epoch. A losing writer of that
//! CAS simply adds to the freshly reset slot. Counts around an epoch
//! boundary may land in either slot — burn rates are estimates, which is
//! all an alert needs.

use crate::snapshot::{MetricKind, MetricsSnapshot, Sample};
use std::sync::atomic::{AtomicU64, Ordering};

/// Objective definition. `Copy` so it can ride inside the runtime's
/// `Copy` config.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Per-request latency objective in microseconds (total =
    /// queue-wait + plan-fetch + execute).
    pub target_us: f64,
    /// Objective hit-rate goal, e.g. `0.99` for "99% of requests under
    /// target".
    pub goal: f64,
    /// Short burn-rate window (nanoseconds of wall clock).
    pub short_window_ns: u64,
    /// Long burn-rate window (nanoseconds of wall clock).
    pub long_window_ns: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            target_us: 2_000.0,
            goal: 0.99,
            short_window_ns: 1_000_000_000, // 1 s
            long_window_ns: 10_000_000_000, // 10 s
        }
    }
}

const WINDOW_SLOTS: u64 = 8;
const EMPTY_EPOCH: u64 = u64::MAX;

#[derive(Debug)]
struct WindowSlot {
    epoch: AtomicU64,
    total: AtomicU64,
    violations: AtomicU64,
}

#[derive(Debug)]
struct WindowRing {
    /// Wall-clock span of one slot; the ring covers
    /// `WINDOW_SLOTS * slot_ns`, of which the window reads the most
    /// recent `WINDOW_SLOTS - 1` full slots plus the current one.
    slot_ns: u64,
    slots: Vec<WindowSlot>,
}

impl WindowRing {
    fn new(window_ns: u64) -> WindowRing {
        let slot_ns = (window_ns / WINDOW_SLOTS).max(1);
        WindowRing {
            slot_ns,
            slots: (0..WINDOW_SLOTS)
                .map(|_| WindowSlot {
                    epoch: AtomicU64::new(EMPTY_EPOCH),
                    total: AtomicU64::new(0),
                    violations: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn record(&self, now_ns: u64, violation: bool) {
        let epoch = now_ns / self.slot_ns;
        let slot = &self.slots[(epoch % WINDOW_SLOTS) as usize];
        let cur = slot.epoch.load(Ordering::Acquire);
        if cur != epoch {
            // First writer into a new epoch resets the slot; losers of
            // the CAS see the new epoch and just accumulate.
            if slot
                .epoch
                .compare_exchange(cur, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.total.store(0, Ordering::Relaxed);
                slot.violations.store(0, Ordering::Relaxed);
            }
        }
        slot.total.fetch_add(1, Ordering::Relaxed);
        if violation {
            slot.violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(total, violations)` across slots still inside the window.
    fn totals(&self, now_ns: u64) -> (u64, u64) {
        let cur_epoch = now_ns / self.slot_ns;
        let oldest = cur_epoch.saturating_sub(WINDOW_SLOTS - 1);
        let mut total = 0u64;
        let mut violations = 0u64;
        for slot in &self.slots {
            let e = slot.epoch.load(Ordering::Acquire);
            if e != EMPTY_EPOCH && e >= oldest && e <= cur_epoch {
                total += slot.total.load(Ordering::Relaxed);
                violations += slot.violations.load(Ordering::Relaxed);
            }
        }
        (total, violations)
    }
}

/// Lock-free SLO tracker. See the module docs.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    total: AtomicU64,
    within: AtomicU64,
    short: WindowRing,
    long: WindowRing,
}

/// Point-in-time SLO state.
#[derive(Debug, Clone, Copy)]
pub struct SloSnapshot {
    pub target_us: f64,
    pub goal: f64,
    /// Requests observed over the tracker's lifetime.
    pub total: u64,
    /// Lifetime objective violations (`total - within`).
    pub violations: u64,
    /// Lifetime hit ratio; `1.0` when no requests have been observed
    /// (an empty service has violated nothing).
    pub hit_ratio: f64,
    /// Burn rate over the short window (`0.0` when the window is empty).
    pub burn_rate_short: f64,
    /// Burn rate over the long window (`0.0` when the window is empty).
    pub burn_rate_long: f64,
}

impl SloTracker {
    pub fn new(cfg: SloConfig) -> SloTracker {
        SloTracker {
            short: WindowRing::new(cfg.short_window_ns.max(WINDOW_SLOTS)),
            long: WindowRing::new(cfg.long_window_ns.max(WINDOW_SLOTS)),
            cfg,
            total: AtomicU64::new(0),
            within: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> SloConfig {
        self.cfg
    }

    /// Record one finished request (`total_ns` = attributed total,
    /// `now_ns` = a monotone clock such as [`crate::clock_ns`]).
    pub fn record(&self, total_ns: u64, now_ns: u64) {
        let violation = total_ns as f64 / 1_000.0 > self.cfg.target_us;
        self.total.fetch_add(1, Ordering::Relaxed);
        if !violation {
            self.within.fetch_add(1, Ordering::Relaxed);
        }
        self.short.record(now_ns, violation);
        self.long.record(now_ns, violation);
    }

    fn burn_rate(&self, totals: (u64, u64)) -> f64 {
        let (total, violations) = totals;
        if total == 0 {
            return 0.0;
        }
        let budget = (1.0 - self.cfg.goal).max(f64::EPSILON);
        (violations as f64 / total as f64) / budget
    }

    pub fn snapshot(&self, now_ns: u64) -> SloSnapshot {
        let total = self.total.load(Ordering::Relaxed);
        let within = self.within.load(Ordering::Relaxed);
        SloSnapshot {
            target_us: self.cfg.target_us,
            goal: self.cfg.goal,
            total,
            violations: total.saturating_sub(within),
            hit_ratio: if total == 0 {
                1.0
            } else {
                within as f64 / total as f64
            },
            burn_rate_short: self.burn_rate(self.short.totals(now_ns)),
            burn_rate_long: self.burn_rate(self.long.totals(now_ns)),
        }
    }

    /// Export SLO state as `ttlg_slo_*` metrics.
    pub fn export_into(&self, snap: &mut MetricsSnapshot, now_ns: u64) {
        let s = self.snapshot(now_ns);
        snap.push_metric(
            "ttlg_slo_target_us",
            "Per-request latency objective in microseconds",
            MetricKind::Gauge,
            vec![Sample::plain(s.target_us)],
        );
        snap.push_metric(
            "ttlg_slo_goal",
            "Objective hit-rate goal",
            MetricKind::Gauge,
            vec![Sample::plain(s.goal)],
        );
        snap.push_metric(
            "ttlg_slo_requests_total",
            "Requests observed by the SLO tracker",
            MetricKind::Counter,
            vec![Sample::plain(s.total as f64)],
        );
        snap.push_metric(
            "ttlg_slo_violations_total",
            "Requests that missed the latency objective",
            MetricKind::Counter,
            vec![Sample::plain(s.violations as f64)],
        );
        snap.push_metric(
            "ttlg_slo_hit_ratio",
            "Lifetime fraction of requests meeting the objective (1.0 when empty)",
            MetricKind::Gauge,
            vec![Sample::plain(s.hit_ratio)],
        );
        snap.push_metric(
            "ttlg_slo_burn_rate",
            "Error-budget burn rate per window (1.0 = sustainable)",
            MetricKind::Gauge,
            vec![
                Sample::labelled("window", "short", s.burn_rate_short),
                Sample::labelled("window", "long", s.burn_rate_long),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(target_us: f64) -> SloTracker {
        SloTracker::new(SloConfig {
            target_us,
            goal: 0.9,
            short_window_ns: 8_000,
            long_window_ns: 80_000,
        })
    }

    #[test]
    fn empty_tracker_is_healthy() {
        let t = tracker(100.0);
        let s = t.snapshot(0);
        assert_eq!(s.total, 0);
        assert_eq!(s.hit_ratio, 1.0);
        assert_eq!(s.burn_rate_short, 0.0);
        assert_eq!(s.burn_rate_long, 0.0);
    }

    #[test]
    fn hit_ratio_and_burn_rate() {
        let t = tracker(100.0); // 100 us objective
        let now = 500; // all within one slot
        for _ in 0..8 {
            t.record(50_000, now); // 50 us: within
        }
        for _ in 0..2 {
            t.record(500_000, now); // 500 us: violation
        }
        let s = t.snapshot(now);
        assert_eq!(s.total, 10);
        assert_eq!(s.violations, 2);
        assert!((s.hit_ratio - 0.8).abs() < 1e-12);
        // 20% violations against a 10% budget: burn rate 2.0.
        assert!(
            (s.burn_rate_short - 2.0).abs() < 1e-9,
            "{}",
            s.burn_rate_short
        );
        assert!((s.burn_rate_long - 2.0).abs() < 1e-9);
    }

    #[test]
    fn old_epochs_age_out_of_the_window() {
        let t = tracker(100.0);
        // Slot span = 8000/8 = 1000 ns. Violations at t=0, then clean
        // traffic much later: the short window forgets the violations,
        // lifetime counters do not.
        t.record(500_000, 0);
        t.record(500_000, 0);
        let later = 100_000; // 100 slots later: far outside the ring
        t.record(50_000, later);
        let s = t.snapshot(later);
        assert_eq!(s.violations, 2);
        assert_eq!(s.burn_rate_short, 0.0, "short window still burning");
        assert!(s.hit_ratio < 1.0);
    }

    #[test]
    fn concurrent_records_count_exactly() {
        use std::sync::Arc;
        let t = Arc::new(tracker(1.0)); // everything violates
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        t.record(2_000_000, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = t.snapshot(999);
        assert_eq!(s.total, 4000);
        assert_eq!(s.violations, 4000);
        assert_eq!(s.hit_ratio, 0.0);
    }

    #[test]
    fn export_emits_slo_family() {
        let t = tracker(100.0);
        t.record(500_000, 10);
        let mut snap = MetricsSnapshot::new();
        t.export_into(&mut snap, 10);
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        for expected in [
            "ttlg_slo_target_us",
            "ttlg_slo_goal",
            "ttlg_slo_requests_total",
            "ttlg_slo_violations_total",
            "ttlg_slo_hit_ratio",
            "ttlg_slo_burn_rate",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        let burn = snap
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_slo_burn_rate")
            .unwrap();
        assert_eq!(burn.samples.len(), 2);
    }
}
