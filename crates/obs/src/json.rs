//! JSON snapshot exporter.
//!
//! Renders a [`MetricsSnapshot`] as a single JSON object — the machine
//! counterpart of the plain-text report, for dashboards and log
//! pipelines that ingest JSON. Hand-rolled (this crate is dependency
//! free); strings are escaped per RFC 8259.

use crate::snapshot::{Histogram, Metric, MetricsSnapshot};

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_number(v: f64) -> String {
    // JSON has no Inf/NaN; clamp to null-like sentinels.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn render_labels(pairs: &[(String, String)]) -> String {
    let inner: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn render_metric(m: &Metric) -> String {
    let samples: Vec<String> = m
        .samples
        .iter()
        .map(|s| {
            format!(
                "{{\"labels\":{},\"value\":{}}}",
                render_labels(&s.labels),
                json_number(s.value)
            )
        })
        .collect();
    format!(
        "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"samples\":[{}]}}",
        escape(&m.name),
        m.kind.as_str(),
        escape(&m.help),
        samples.join(",")
    )
}

fn render_histogram(h: &Histogram) -> String {
    let bounds: Vec<String> = h.upper_bounds.iter().map(|&b| json_number(b)).collect();
    let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
    format!(
        "{{\"name\":\"{}\",\"help\":\"{}\",\"labels\":{},\"upper_bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
        escape(&h.name),
        escape(&h.help),
        render_labels(&h.labels),
        bounds.join(","),
        counts.join(","),
        json_number(h.sum),
        h.count()
    )
}

/// Render the snapshot as one JSON object:
/// `{"metrics": [...], "histograms": [...]}`.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let metrics: Vec<String> = snapshot.metrics.iter().map(render_metric).collect();
    let histograms: Vec<String> = snapshot.histograms.iter().map(render_histogram).collect();
    format!(
        "{{\"metrics\":[{}],\"histograms\":[{}]}}\n",
        metrics.join(","),
        histograms.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{MetricKind, MetricsSnapshot, Sample};

    #[test]
    fn renders_metrics_and_histograms() {
        let mut s = MetricsSnapshot::new();
        s.push_metric(
            "x_total",
            "a counter",
            MetricKind::Counter,
            vec![Sample::labelled("schema", "Copy", 2.0)],
        );
        s.push_histogram("h_us", "hist", Vec::new(), vec![2.0], vec![1, 3], 9.5);
        let text = render(&s);
        assert!(text.contains("\"name\":\"x_total\""));
        assert!(text.contains("\"kind\":\"counter\""));
        assert!(text.contains("\"schema\":\"Copy\""));
        assert!(text.contains("\"upper_bounds\":[2]"));
        assert!(text.contains("\"counts\":[1,3]"));
        assert!(text.contains("\"count\":4"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("tab\there"), "tab\\there");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_values_become_null() {
        let mut s = MetricsSnapshot::new();
        s.push_metric(
            "g",
            "gauge",
            MetricKind::Gauge,
            vec![Sample::plain(f64::INFINITY)],
        );
        let text = render(&s);
        assert!(text.contains("\"value\":null"));
    }
}
