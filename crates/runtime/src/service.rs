//! The multi-tenant transposition service.
//!
//! [`TransposeService`] wraps a [`Transposer`] with the things a shared
//! deployment needs:
//!
//! 1. a sharded, bounded, single-flight plan cache
//!    ([`ttlg::ShardedPlanCache`]) so concurrent clients never plan the
//!    same problem twice;
//! 2. batched submission: a batch is grouped by plan key, each distinct
//!    problem is planned once (in parallel across the pool), then every
//!    request executes across scoped worker threads under a configurable
//!    in-flight bound (backpressure for the device);
//! 3. lock-free metrics: per-schema request counters, bytes-moved
//!    totals, plan/execute latency histograms, and a prediction-accuracy
//!    tracker, rendered as plain text, Prometheus text, or JSON;
//! 4. tracing: every request becomes a [`RequestTrace`] decomposed into
//!    queue-wait / plan-fetch / execute with cache hit-miss attribution
//!    and the executor's DRAM-efficiency and shared-memory replay rates,
//!    kept in a bounded ring ([`TransposeService::recent_traces`]) and
//!    emitted as a span to an optional [`Subscriber`].

use crate::async_exec::{
    AsyncConfig, AsyncExecutor, AsyncOutcome, AsyncStatsSnapshot, CompletionHook, TicketHandle,
};
use crate::autotune::{
    run_worker, AutotuneConfig, AutotuneSnapshot, AutotuneStats, AutotunerHandle,
};
use crate::metrics::{Metrics, RequestPhase};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use ttlg::{
    Backend, CacheConfig, CacheStats, DecisionTrace, FetchTiming, Plan, PlanError, PlanKey, Schema,
    ShardedPlanCache, TransposeOptions, TransposeReport, Transposer,
};
use ttlg_obs::{
    clock_ns, profile, shape_class, AttrValue, Event, ExemplarBuckets, ExemplarConfig,
    ExemplarStore, MetricKind, MetricsSnapshot, NullSubscriber, PhaseProfile, ProfileOptions,
    RequestTrace, Sample, SloConfig, SloSnapshot, SloTracker, SpanNode, SpanRecord, Subscriber,
    TimeSeriesStore, TraceRing, TsdbConfig,
};
use ttlg_perfmodel::MeasurementSink;
use ttlg_tensor::{parallel, DenseTensor, Element, Permutation};

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads used to plan and execute a batch.
    pub workers: usize,
    /// Max requests executing concurrently (backpressure bound). `0`
    /// means "same as `workers`".
    pub max_in_flight: usize,
    /// Plan-cache geometry (shards x per-shard LRU capacity).
    pub cache: CacheConfig,
    /// Capacity of the recent-request trace ring.
    pub trace_capacity: usize,
    /// Measure-mode autotuning (disabled by default).
    pub autotune: AutotuneConfig,
    /// Latency objective tracked by the built-in [`SloTracker`].
    pub slo: SloConfig,
    /// Retention policy of the slowest-request [`ExemplarStore`].
    pub exemplars: ExemplarConfig,
    /// Retain the planner's full [`DecisionTrace`] on every built plan
    /// so slow-request exemplars carry the planning decision. Costs one
    /// allocation per *planning* (not per request); on by default.
    pub retain_decision_traces: bool,
    /// Geometry of the lazily started completion-queue executor behind
    /// [`TransposeService::submit_async`] (worker count, queue bounds,
    /// coalescing switch).
    pub async_exec: AsyncConfig,
    /// Metrics-history capture: scrape cadence and the retention rings
    /// of the in-memory [`TimeSeriesStore`].
    pub history: HistoryConfig,
}

/// Configuration of the background metrics-history scraper.
#[derive(Debug, Clone, Copy)]
pub struct HistoryConfig {
    /// Whether [`TransposeService::start_history_scraper`] starts a
    /// scraper at all (manual [`TransposeService::scrape_history_once`]
    /// always works). On by default.
    pub enabled: bool,
    /// Scrape cadence of the background scraper, in milliseconds.
    pub scrape_interval_ms: u64,
    /// Retention rings of the history store.
    pub tsdb: TsdbConfig,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            enabled: true,
            scrape_interval_ms: 1_000,
            tsdb: TsdbConfig::default(),
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = parallel::default_threads().min(8);
        RuntimeConfig {
            workers,
            max_in_flight: 0,
            cache: CacheConfig::default(),
            trace_capacity: 256,
            autotune: AutotuneConfig::default(),
            slo: SloConfig::default(),
            exemplars: ExemplarConfig::default(),
            retain_decision_traces: true,
            async_exec: AsyncConfig::default(),
            history: HistoryConfig::default(),
        }
    }
}

/// One unit of client work: transpose `input` by `perm` under `opts`.
#[derive(Clone)]
pub struct TransposeRequest<E: Element> {
    /// Input tensor (shared; batches often reuse one tensor).
    pub input: Arc<DenseTensor<E>>,
    /// The permutation to apply.
    pub perm: Permutation,
    /// Planning options (part of the plan key).
    pub opts: TransposeOptions,
}

impl<E: Element> TransposeRequest<E> {
    /// A request with default planning options.
    pub fn new(input: Arc<DenseTensor<E>>, perm: Permutation) -> Self {
        TransposeRequest {
            input,
            perm,
            opts: TransposeOptions::default(),
        }
    }

    /// The cache fingerprint this request plans under.
    pub fn plan_key(&self) -> PlanKey {
        PlanKey::new(self.input.shape(), &self.perm, &self.opts)
    }
}

/// A completed request.
pub struct TransposeResponse<E: Element> {
    /// The transposed tensor.
    pub output: DenseTensor<E>,
    /// Simulator timing/bandwidth report.
    pub report: TransposeReport,
}

/// Service-level error: cloneable so one failed plan can be fanned out
/// to every request in the batch that shared it.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Human-readable failure description.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError {
            message: e.to_string(),
        }
    }
}

/// Result of one request through the service.
pub type ServeResult<E> = Result<TransposeResponse<E>, ServeError>;

/// Outcome of [`TransposeService::submit_spanned`]: the response, the
/// flat phase trace, a service-side span forest ready to graft under a
/// caller-owned root span, and the planner's decision trace (when
/// retention is on and the plan was built rather than replayed).
pub struct SpannedOutcome<E: Element> {
    /// The request outcome.
    pub result: ServeResult<E>,
    /// Flat queue/plan/execute phase attribution.
    pub trace: RequestTrace,
    /// Service-side spans: `plan` (children `cache-lookup`,
    /// `plan-build` with `alg3-sweep`), `queue-wait`, `execute`
    /// (children `kernel-launch`, `kernel`).
    pub spans: Vec<SpanNode>,
    /// The full planning decision trace, if retained.
    pub decision: Option<Arc<DecisionTrace>>,
}

/// Assemble the service-side span forest for one spanned request. Child
/// starts are laid out sequentially from their parent's start: the
/// phases genuinely are sequential here (lookup then build then sweep;
/// launch then kernel), so the layout is faithful, not cosmetic.
#[allow(clippy::too_many_arguments)]
fn build_service_spans(
    plan_start: u64,
    fetch_ns: u64,
    timing: FetchTiming,
    hit: bool,
    sweep_ns: u64,
    candidates: usize,
    launch_ns: u64,
    trace: &RequestTrace,
) -> Vec<SpanNode> {
    let mut plan_span = SpanNode::new("plan", plan_start, fetch_ns)
        .with_attr("cache", if hit { "hit" } else { "miss" })
        .with_child(SpanNode::new("cache-lookup", plan_start, timing.lookup_ns));
    if !hit && timing.build_ns > 0 {
        let build_start = plan_start + timing.lookup_ns;
        let mut build = SpanNode::new("plan-build", build_start, timing.build_ns);
        if sweep_ns > 0 {
            build = build.with_child(
                SpanNode::new("alg3-sweep", build_start, sweep_ns)
                    .with_attr("candidates", candidates.to_string()),
            );
        }
        plan_span = plan_span.with_child(build);
    }
    let queue_span = SpanNode::new("queue-wait", trace.start_ns, trace.queue_wait_ns);
    let exec_start = trace.start_ns + trace.queue_wait_ns;
    let mut exec_span = SpanNode::new("execute", exec_start, trace.execute_ns)
        .with_attr("schema", trace.schema.clone());
    if let Some(err) = &trace.error {
        exec_span = exec_span.with_attr("error", err.clone());
    }
    if trace.ok {
        let kernel_ns = trace.measured_ns.max(0.0) as u64;
        exec_span = exec_span
            .with_child(SpanNode::new("kernel-launch", exec_start, launch_ns))
            .with_child(
                SpanNode::new("kernel", exec_start + launch_ns, kernel_ns)
                    .with_attr("predicted_ns", format!("{:.0}", trace.predicted_ns))
                    .with_attr("dram_efficiency", format!("{:.3}", trace.dram_efficiency))
                    .with_attr("smem_replay", format!("{:.3}", trace.smem_replay_rate)),
            );
    }
    vec![plan_span, queue_span, exec_span]
}

/// Counting semaphore bounding in-flight executions (std has none).
struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().expect("semaphore poisoned");
        while *p == 0 {
            p = self.freed.wait(p).expect("semaphore poisoned");
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore poisoned") += 1;
        self.freed.notify_one();
    }
}

/// Hot-key bookkeeping for the autotuner.
#[derive(Debug, Default, Clone, Copy)]
struct HotKeyState {
    /// Requests observed for this key.
    requests: u64,
    /// Candidate measurements already spent on this key.
    measured: usize,
    /// Whether this key has been tuned (or claimed for tuning).
    tuned: bool,
    /// Request count at the last autotune cycle (idle detection).
    seen_requests: u64,
    /// Consecutive autotune cycles with no new requests.
    idle_cycles: u64,
}

/// The concurrent transposition service. See the module docs.
pub struct TransposeService<E: Element> {
    transposer: Transposer,
    cache: ShardedPlanCache<E>,
    metrics: Metrics,
    in_flight: Semaphore,
    workers: usize,
    /// Inner-executor thread cap per request while a batch is running:
    /// the machine's parallelism divided among the in-flight bound, so
    /// concurrent executes share cores instead of oversubscribing.
    exec_threads: usize,
    traces: TraceRing<RequestTrace>,
    subscriber: Arc<dyn Subscriber>,
    next_id: AtomicU64,
    autotune: AutotuneConfig,
    hot: Mutex<HashMap<PlanKey, HotKeyState>>,
    tuner_stats: AutotuneStats,
    sink: Option<Arc<dyn MeasurementSink>>,
    slo: SloTracker,
    exemplars: ExemplarStore<Arc<DecisionTrace>>,
    /// The completion-queue executor, started on first `submit_async`.
    async_core: OnceLock<AsyncExecutor<E>>,
    async_cfg: AsyncConfig,
    /// Metrics history: the delta-encoded time-series store fed by
    /// [`Self::scrape_history_once`] / the background scraper.
    history: TimeSeriesStore,
    history_cfg: HistoryConfig,
    /// Optional snapshot source for scrapes. The gateway installs one
    /// that returns its *merged* snapshot (service + gateway + alert
    /// families) so history covers everything an operator can scrape;
    /// with no source, scrapes fall back to [`Self::metrics_snapshot`].
    history_source: Mutex<Option<HistorySource>>,
    /// Background scraper thread, if started.
    scraper: Mutex<Option<ScraperHandle>>,
    /// History persistence target (`ttlg serve --history-file`).
    history_file: Mutex<Option<PathBuf>>,
    /// Process start, for `ttlg_uptime_seconds`.
    started: Instant,
}

/// Closure producing the snapshot a history scrape ingests. `None`
/// means "skip this scrape" (e.g. the gateway is shutting down).
type HistorySource = Arc<dyn Fn() -> Option<MetricsSnapshot> + Send + Sync>;

/// Stop flag + join handle of the background history scraper.
struct ScraperHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    join: std::thread::JoinHandle<()>,
}

impl<E: Element> TransposeService<E> {
    /// Build a service around an existing transposer.
    pub fn with_config(transposer: Transposer, cfg: RuntimeConfig) -> Self {
        let workers = cfg.workers.max(1);
        let bound = if cfg.max_in_flight == 0 {
            workers
        } else {
            cfg.max_in_flight
        };
        let bound = bound.max(1);
        transposer.set_trace_retention(cfg.retain_decision_traces);
        TransposeService {
            transposer,
            cache: ShardedPlanCache::with_config(cfg.cache),
            metrics: Metrics::new(),
            in_flight: Semaphore::new(bound),
            workers,
            exec_threads: (parallel::default_threads() / bound).max(1),
            traces: TraceRing::new(cfg.trace_capacity),
            subscriber: Arc::new(NullSubscriber),
            next_id: AtomicU64::new(0),
            autotune: cfg.autotune,
            hot: Mutex::new(HashMap::new()),
            tuner_stats: AutotuneStats::default(),
            sink: None,
            slo: SloTracker::new(cfg.slo),
            exemplars: ExemplarStore::new(cfg.exemplars),
            async_core: OnceLock::new(),
            async_cfg: cfg.async_exec,
            history: TimeSeriesStore::new(cfg.history.tsdb),
            history_cfg: cfg.history,
            history_source: Mutex::new(None),
            scraper: Mutex::new(None),
            history_file: Mutex::new(None),
            started: Instant::now(),
        }
    }

    /// A service on the paper's K40c with default configuration.
    pub fn new_k40c() -> Self {
        Self::with_config(Transposer::new_k40c(), RuntimeConfig::default())
    }

    /// Attach a tracing subscriber; every request span and plan-failure
    /// event is delivered to it.
    pub fn with_subscriber(mut self, subscriber: Arc<dyn Subscriber>) -> Self {
        self.subscriber = subscriber;
        self
    }

    /// Attach a measurement sink: every candidate timing the autotuner
    /// measures is streamed to it (e.g. an
    /// [`ttlg_perfmodel::OnlinePredictor`] refining the regression
    /// models online).
    pub fn with_measurement_sink(mut self, sink: Arc<dyn MeasurementSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The underlying transposer (e.g. for direct plan queries).
    pub fn transposer(&self) -> &Transposer {
        &self.transposer
    }

    /// Cache counters (hits/misses/evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resident plans in the cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Service metrics (counters + histograms + prediction tracker).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Render the plain-text metrics report.
    pub fn metrics_report(&self) -> String {
        self.metrics.render(&self.cache.stats())
    }

    /// Capture metrics as a renderer-neutral snapshot, including the
    /// tail-attribution families: trace-ring drops, SLO state, exemplar
    /// retention, and the per-`(schema, shape-class)` phase profiles.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot(&self.cache.stats());
        snap.push_metric(
            "ttlg_trace_dropped_total",
            "Request traces silently dropped before they could be read.",
            MetricKind::Counter,
            vec![Sample::labelled(
                "source",
                "trace-ring",
                self.trace_dropped() as f64,
            )],
        );
        snap.push_metric(
            "ttlg_exemplars_retained",
            "Slow-request exemplars currently retained.",
            MetricKind::Gauge,
            vec![Sample::plain(self.exemplars.total_retained() as f64)],
        );
        snap.push_metric(
            "ttlg_cache_pinned_plans",
            "Measured-best plans pinned in the cache (exempt from LRU eviction).",
            MetricKind::Gauge,
            vec![Sample::plain(self.cache.pinned_plans() as f64)],
        );
        let astats = self.async_stats().unwrap_or_default();
        snap.push_metric(
            "ttlg_completion_queue_depth",
            "Completion records queued for delivery by the async executor.",
            MetricKind::Gauge,
            vec![Sample::plain(astats.completion_depth as f64)],
        );
        self.slo.export_into(&mut snap, clock_ns());
        profile::export_into(&mut snap, &self.phase_profiles());
        snap.push_metric(
            "ttlg_uptime_seconds",
            "Seconds since this service was constructed — a process-restart \
             marker for history consumers (a drop means counter resets follow).",
            MetricKind::Gauge,
            vec![Sample::plain(self.started.elapsed().as_secs_f64())],
        );
        let mut backends: Vec<&str> = Backend::ALL.iter().map(|b| b.label()).collect();
        backends.sort_unstable();
        snap.push_metric(
            "ttlg_build_info",
            "Constant 1 carrying the crate version and compiled backend set.",
            MetricKind::Gauge,
            vec![Sample {
                labels: vec![
                    ("version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
                    ("backend_set".to_string(), backends.join(",")),
                ],
                value: 1.0,
            }],
        );
        self.history.export_into(&mut snap);
        snap
    }

    /// Traces lost to ring wraparound (`pushed - capacity`, saturating).
    pub fn trace_dropped(&self) -> u64 {
        self.traces
            .pushed()
            .saturating_sub(self.traces.capacity() as u64)
    }

    /// Fold the current trace ring into per-`(schema, shape-class)`
    /// phase profiles (hottest first). Offline aggregation: costs
    /// nothing on the request path.
    pub fn phase_profiles(&self) -> Vec<PhaseProfile> {
        profile::aggregate(&self.traces.snapshot(), &ProfileOptions::default())
    }

    /// Render the phase profiles as a flame-style text tree.
    pub fn render_profile(&self) -> String {
        profile::render_flame(&self.phase_profiles())
    }

    /// The slow-request exemplar store.
    pub fn exemplar_store(&self) -> &ExemplarStore<Arc<DecisionTrace>> {
        &self.exemplars
    }

    /// All retained exemplars, slowest-first within each bucket.
    pub fn exemplars(&self) -> ExemplarBuckets<Arc<DecisionTrace>> {
        self.exemplars.snapshot()
    }

    /// Point-in-time SLO state (hit ratio + burn rates).
    pub fn slo_snapshot(&self) -> SloSnapshot {
        self.slo.snapshot(clock_ns())
    }

    /// Export metrics in Prometheus text exposition format.
    pub fn export_prometheus(&self) -> String {
        ttlg_obs::prom::render(&self.metrics_snapshot())
    }

    /// Export metrics as a JSON document.
    pub fn export_json(&self) -> String {
        ttlg_obs::json::render(&self.metrics_snapshot())
    }

    /// The `n` most recent request traces, newest first.
    pub fn recent_traces(&self, n: usize) -> Vec<RequestTrace> {
        self.traces.recent(n)
    }

    /// Fetch (or build, single-flight) the plan for one request, timing
    /// the fetch into the plan-latency histogram. Returns the plan, a
    /// served-from-cache flag, the lookup/build split, and the fetch
    /// wall time.
    #[allow(clippy::type_complexity)]
    fn fetch_plan(
        &self,
        req: &TransposeRequest<E>,
        key: &PlanKey,
    ) -> (Result<(Arc<Plan<E>>, bool, FetchTiming), ServeError>, u64) {
        let t0 = Instant::now();
        let fetched = self.cache.get_or_plan_keyed_timed(
            &self.transposer,
            key,
            req.input.shape(),
            &req.perm,
            &req.opts,
        );
        let elapsed = t0.elapsed().as_nanos() as u64;
        match fetched {
            Ok((plan, hit, timing)) => {
                self.metrics.plan_latency.record_ns(elapsed);
                (Ok((plan, hit, timing)), elapsed)
            }
            Err(e) => {
                self.metrics.record_failure(RequestPhase::Plan, elapsed);
                self.subscriber.on_event(&Event {
                    name: "plan-failure",
                    at_ns: clock_ns(),
                    attrs: vec![("error", AttrValue::Str(e.to_string()))],
                });
                (Err(ServeError::from(e)), elapsed)
            }
        }
    }

    /// Execute one planned request under the in-flight bound, producing
    /// a fully attributed [`RequestTrace`] (returned alongside the
    /// outcome so callers such as the gateway can fold the exact phase
    /// decomposition into their own accounting).
    fn execute_traced(
        &self,
        req: &TransposeRequest<E>,
        plan: &Arc<Plan<E>>,
        cache_hit: bool,
        plan_fetch_ns: u64,
    ) -> (ServeResult<E>, RequestTrace) {
        let mut trace = RequestTrace {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            start_ns: clock_ns(),
            cache_hit: Some(cache_hit),
            plan_fetch_ns,
            shape_class: shape_class(req.input.shape().extents()),
            warmed: plan.is_measured(),
            ..Default::default()
        };
        let tq = Instant::now();
        self.in_flight.acquire();
        trace.queue_wait_ns = tq.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let result = self.transposer.execute(plan, &req.input);
        let execute_ns = t0.elapsed().as_nanos() as u64;
        self.in_flight.release();
        trace.execute_ns = execute_ns;
        let outcome = match result {
            Ok((output, report)) => {
                self.metrics.exec_latency.record_ns(execute_ns);
                self.metrics.record_backend(plan.backend(), execute_ns);
                let bytes = 2 * req.input.volume() as u64 * E::BYTES as u64;
                self.metrics.record_request(report.schema, bytes);
                self.metrics.record_prediction(
                    report.schema,
                    report.predicted_ns,
                    report.kernel_time_ns,
                );
                // Fold the foreground residual stream into refinement:
                // every served request is also a (candidate, measured)
                // training point, so cold keys refine the online model
                // without waiting for the autotuner to re-measure them.
                if let Some(sink) = &self.sink {
                    sink.observe_candidate(plan.candidate(), report.kernel_time_ns);
                    self.metrics.record_residual_point();
                }
                trace.ok = true;
                trace.schema = report.schema.to_string();
                trace.predicted_ns = report.predicted_ns;
                trace.measured_ns = report.kernel_time_ns;
                trace.dram_efficiency = report.stats.dram_efficiency(E::BYTES);
                trace.smem_replay_rate = report.stats.smem_replay_rate();
                Ok(TransposeResponse { output, report })
            }
            Err(e) => {
                self.metrics
                    .record_failure(RequestPhase::Execute, execute_ns);
                trace.schema = plan.schema().to_string();
                trace.error = Some(e.to_string());
                Err(ServeError::from(e))
            }
        };
        let copy = trace.clone();
        self.finish_trace(trace, plan.decision_trace().cloned());
        (outcome, copy)
    }

    /// Record a request that died before it had a plan (the cache never
    /// answered, so `cache_hit` stays `None`).
    fn record_plan_failure(
        &self,
        req: &TransposeRequest<E>,
        plan_fetch_ns: u64,
        err: &ServeError,
    ) -> RequestTrace {
        let trace = RequestTrace {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            start_ns: clock_ns(),
            plan_fetch_ns,
            shape_class: shape_class(req.input.shape().extents()),
            error: Some(err.message.clone()),
            ..Default::default()
        };
        let copy = trace.clone();
        self.finish_trace(trace, None);
        copy
    }

    /// Push a finished trace to the ring, emit its span, and feed the
    /// tail-attribution layer (SLO tracker + exemplar store).
    fn finish_trace(&self, trace: RequestTrace, decision: Option<Arc<DecisionTrace>>) {
        self.subscriber.on_span(&SpanRecord {
            name: "request",
            start_ns: trace.start_ns,
            duration_ns: trace.total_ns(),
            attrs: vec![
                ("id", AttrValue::U64(trace.id)),
                ("schema", AttrValue::Str(trace.schema.clone())),
                ("ok", AttrValue::Bool(trace.ok)),
                (
                    "cache",
                    AttrValue::Str(
                        match trace.cache_hit {
                            Some(true) => "hit",
                            Some(false) => "miss",
                            None => "none",
                        }
                        .to_string(),
                    ),
                ),
                ("queue_wait_ns", AttrValue::U64(trace.queue_wait_ns)),
                ("plan_fetch_ns", AttrValue::U64(trace.plan_fetch_ns)),
                ("execute_ns", AttrValue::U64(trace.execute_ns)),
                ("predicted_ns", AttrValue::F64(trace.predicted_ns)),
                ("measured_ns", AttrValue::F64(trace.measured_ns)),
                ("dram_efficiency", AttrValue::F64(trace.dram_efficiency)),
                ("smem_replay_rate", AttrValue::F64(trace.smem_replay_rate)),
                ("shape_class", AttrValue::Str(trace.shape_class.clone())),
                ("warmed", AttrValue::Bool(trace.warmed)),
            ],
        });
        self.slo.record(trace.total_ns(), clock_ns());
        self.exemplars.offer(&trace, decision.as_ref());
        self.traces.push(trace);
    }

    /// Serve a single request (plan via the shared cache, execute under
    /// the in-flight bound).
    pub fn submit(&self, req: &TransposeRequest<E>) -> ServeResult<E> {
        self.submit_traced(req).0
    }

    /// [`Self::submit`], also returning the request's finished
    /// [`RequestTrace`] so network-facing callers can attribute
    /// queue/plan/execute phases per request without racing the trace
    /// ring.
    pub fn submit_traced(&self, req: &TransposeRequest<E>) -> (ServeResult<E>, RequestTrace) {
        let key = req.plan_key();
        let (fetched, fetch_ns) = self.fetch_plan(req, &key);
        match fetched {
            Ok((plan, hit, _)) => {
                self.note_request(&key);
                self.execute_traced(req, &plan, hit, fetch_ns)
            }
            Err(e) => {
                let trace = self.record_plan_failure(req, fetch_ns, &e);
                (Err(e), trace)
            }
        }
    }

    /// [`Self::submit_traced`], additionally returning a service-side
    /// span forest (plan with cache-lookup / plan-build / alg3-sweep
    /// children; queue-wait; execute with kernel-launch / kernel
    /// children) and the planner's decision trace when retained.
    /// Network-facing callers graft these under their own root span to
    /// form the full request span tree.
    pub fn submit_spanned(&self, req: &TransposeRequest<E>) -> SpannedOutcome<E> {
        let key = req.plan_key();
        let plan_start = clock_ns();
        let (fetched, fetch_ns) = self.fetch_plan(req, &key);
        match fetched {
            Ok((plan, hit, timing)) => {
                self.note_request(&key);
                let decision = plan.decision_trace().cloned();
                let sweep_ns = plan.sweep_wall_ns();
                let candidates = plan.candidates_evaluated();
                let launch_ns = self.transposer.device().launch_overhead_ns as u64;
                let (result, trace) = self.execute_traced(req, &plan, hit, fetch_ns);
                let spans = build_service_spans(
                    plan_start, fetch_ns, timing, hit, sweep_ns, candidates, launch_ns, &trace,
                );
                SpannedOutcome {
                    result,
                    trace,
                    spans,
                    decision,
                }
            }
            Err(e) => {
                let trace = self.record_plan_failure(req, fetch_ns, &e);
                let plan_span = SpanNode::new("plan", plan_start, fetch_ns)
                    .with_attr("error", e.message.clone());
                SpannedOutcome {
                    result: Err(e),
                    trace,
                    spans: vec![plan_span],
                    decision: None,
                }
            }
        }
    }

    /// The latency objective the built-in [`SloTracker`] enforces, so
    /// callers can force-sample requests that missed it.
    pub fn slo_config(&self) -> SloConfig {
        self.slo.config()
    }

    // ---- async submission ---------------------------------------------

    /// Non-blocking submission: hand `req` to the completion-queue
    /// executor and return a [`TicketHandle`] immediately. The handle
    /// can be polled (never blocks) or waited on (parks the calling
    /// thread until a worker finishes the request and the dispatcher
    /// delivers the completion record). Identical in-flight problems —
    /// same plan-key fingerprint, same input tensor `Arc` — coalesce
    /// onto one execution; every coalesced waiter receives the shared
    /// result and its own [`RequestTrace`] marked `coalesced`. When the
    /// submission queue is full the ticket completes inline with an
    /// overload error rather than blocking the caller.
    pub fn submit_async(self: &Arc<Self>, req: TransposeRequest<E>) -> TicketHandle<E> {
        self.async_executor().submit(req, None)
    }

    /// [`Self::submit_async`] with a completion hook: the closure runs
    /// exactly once on the dispatcher thread after the result is
    /// delivered. Push-style consumers (the gateway) use this to drain
    /// the completion queue without parking a thread per request.
    pub fn submit_async_hooked(
        self: &Arc<Self>,
        req: TransposeRequest<E>,
        hook: CompletionHook<E>,
    ) -> TicketHandle<E> {
        self.async_executor().submit(req, Some(hook))
    }

    /// Executor counters, `None` until the first `submit_async` starts
    /// the executor.
    pub fn async_stats(&self) -> Option<AsyncStatsSnapshot> {
        self.async_core.get().map(|c| c.stats())
    }

    fn async_executor(self: &Arc<Self>) -> &AsyncExecutor<E> {
        self.async_core.get_or_init(|| {
            AsyncExecutor::start(Arc::downgrade(self), self.async_cfg, self.workers)
        })
    }

    /// One leader execution on an async worker thread: full
    /// `submit_spanned` semantics with the response `Arc`-wrapped so
    /// coalesced followers can share it.
    pub(crate) fn run_async_leader(&self, req: &TransposeRequest<E>) -> AsyncOutcome<E> {
        let out = self.submit_spanned(req);
        AsyncOutcome {
            result: out.result.map(Arc::new),
            trace: out.trace,
            spans: out.spans,
            decision: out.decision,
            coalesced: false,
        }
    }

    /// Account one coalesced delivery: the request is counted
    /// (requests/bytes/SLO/hotness) and leaves its own ring trace marked
    /// `coalesced` with the leader's measured numbers copied in, but no
    /// execution-side series (exec latency, backend histograms,
    /// prediction residuals) are touched — nothing executed.
    pub(crate) fn deliver_coalesced(
        &self,
        req: &TransposeRequest<E>,
        leader: &AsyncOutcome<E>,
    ) -> RequestTrace {
        let schema = leader.result.as_ref().ok().map(|r| r.report.schema);
        self.coalesced_accounting(req, &leader.trace, schema, leader.decision.clone())
    }

    /// Shared bookkeeping for both coalescing paths (async single-flight
    /// and within-batch dedup).
    fn coalesced_accounting(
        &self,
        req: &TransposeRequest<E>,
        leader_trace: &RequestTrace,
        schema: Option<Schema>,
        decision: Option<Arc<DecisionTrace>>,
    ) -> RequestTrace {
        let trace = RequestTrace {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            start_ns: clock_ns(),
            schema: leader_trace.schema.clone(),
            shape_class: leader_trace.shape_class.clone(),
            warmed: leader_trace.warmed,
            ok: leader_trace.ok,
            cache_hit: Some(true),
            queue_wait_ns: 0,
            plan_fetch_ns: 0,
            execute_ns: leader_trace.execute_ns,
            predicted_ns: leader_trace.predicted_ns,
            measured_ns: leader_trace.measured_ns,
            dram_efficiency: leader_trace.dram_efficiency,
            smem_replay_rate: leader_trace.smem_replay_rate,
            coalesced: true,
            error: leader_trace.error.clone(),
        };
        if let Some(schema) = schema {
            let bytes = 2 * req.input.volume() as u64 * E::BYTES as u64;
            self.metrics.record_request(schema, bytes);
        }
        self.metrics.record_coalesced();
        self.note_request(&req.plan_key());
        let copy = trace.clone();
        self.finish_trace(trace, decision);
        copy
    }

    /// Serve a batch: requests are grouped by plan key, each distinct
    /// problem is planned exactly once (in parallel across the worker
    /// pool); then each *unique in-flight problem* — same plan-key
    /// fingerprint, same input tensor — executes exactly once, with
    /// duplicates coalescing onto the representative's execution (their
    /// responses copy the shared output and their traces are marked
    /// `coalesced`). Responses come back in request order.
    pub fn submit_batch(&self, reqs: &[TransposeRequest<E>]) -> Vec<ServeResult<E>> {
        self.metrics.record_batch();
        // Group by plan key so each distinct problem plans once.
        let keys: Vec<PlanKey> = reqs.iter().map(|r| r.plan_key()).collect();
        let mut groups: HashMap<&PlanKey, usize> = HashMap::new();
        let mut distinct: Vec<usize> = Vec::new(); // representative request per key
        for (i, k) in keys.iter().enumerate() {
            groups.entry(k).or_insert_with(|| {
                distinct.push(i);
                distinct.len() - 1
            });
        }
        // Group by execution identity (plan-key fingerprint + input
        // `Arc`) so duplicate identical problems execute once — the
        // within-batch form of the async path's single-flight table.
        let exec_key = |i: usize| {
            (
                keys[i].problem_fingerprint(),
                Arc::as_ptr(&reqs[i].input) as usize,
            )
        };
        let mut exec_groups: HashMap<(u64, usize), usize> = HashMap::new();
        let mut exec_reps: Vec<usize> = Vec::new(); // representative request per execution
        for i in 0..reqs.len() {
            exec_groups.entry(exec_key(i)).or_insert_with(|| {
                exec_reps.push(i);
                exec_reps.len() - 1
            });
        }

        // Phase 1: plan every distinct problem across the pool. Each
        // slot keeps the cache-hit flag and fetch time so phase 2 can
        // attribute them to every request sharing the plan.
        #[allow(clippy::type_complexity)]
        let plans: Vec<
            OnceLock<(Result<(Arc<Plan<E>>, bool, FetchTiming), ServeError>, u64)>,
        > = (0..distinct.len()).map(|_| OnceLock::new()).collect();
        parallel::parallel_for_threads(distinct.len(), 1, self.workers, |g| {
            let i = distinct[g];
            let built = self.fetch_plan(&reqs[i], &keys[i]);
            plans[g].set(built).ok().expect("plan slot set twice");
        });

        // Phase 2: execute one representative per unique problem across
        // the pool, bounded by the in-flight semaphore.
        #[allow(clippy::type_complexity)]
        let executed: Vec<OnceLock<(ServeResult<E>, Option<RequestTrace>)>> =
            (0..exec_reps.len()).map(|_| OnceLock::new()).collect();
        parallel::parallel_for_threads(exec_reps.len(), 1, self.workers, |x| {
            let i = exec_reps[x];
            let g = groups[&keys[i]];
            let (fetched, fetch_ns) = plans[g].get().expect("plan phase completed");
            let outcome = match fetched {
                // Cap the executor's inner parallelism so the batch's
                // concurrent requests share cores instead of each
                // spawning a full-machine pool. Only the plan group's
                // representative actually touched the cache; every other
                // execution was served from the shared plan — a hit.
                Ok((plan, hit, _)) => {
                    self.note_request(&keys[i]);
                    parallel::with_thread_cap(self.exec_threads, || {
                        let hit = *hit || i != distinct[g];
                        let (res, trace) = self.execute_traced(&reqs[i], plan, hit, *fetch_ns);
                        (res, Some(trace))
                    })
                }
                Err(e) => {
                    let _ = self.record_plan_failure(&reqs[i], *fetch_ns, e);
                    (Err(e.clone()), None)
                }
            };
            executed[x]
                .set(outcome)
                .ok()
                .expect("result slot set twice");
        });

        // Phase 3: fan the shared executions out to every request, in
        // order. Duplicates copy the representative's output, are fully
        // accounted (request counters, SLO, hotness), and leave their
        // own ring trace marked `coalesced`; plan failures are
        // re-recorded per request, as before.
        let mut out: Vec<Option<ServeResult<E>>> = Vec::with_capacity(reqs.len());
        out.resize_with(reqs.len(), || None);
        for (i, slot) in out.iter_mut().enumerate() {
            let x = exec_groups[&exec_key(i)];
            if i == exec_reps[x] {
                continue; // takes the original result below
            }
            let (result, leader_trace) = executed[x].get().expect("exec phase completed");
            let g = groups[&keys[i]];
            *slot = Some(match (result, leader_trace) {
                (Ok(resp), Some(trace)) => {
                    let decision = plans[g]
                        .get()
                        .and_then(|(f, _)| f.as_ref().ok())
                        .and_then(|(plan, _, _)| plan.decision_trace().cloned());
                    let _ = self.coalesced_accounting(
                        &reqs[i],
                        trace,
                        Some(resp.report.schema),
                        decision,
                    );
                    Ok(TransposeResponse {
                        output: resp.output.clone(),
                        report: resp.report.clone(),
                    })
                }
                // The shared execution failed: the duplicate shares the
                // failure (and its coalesced trace carries the error).
                (Err(e), Some(trace)) => {
                    let _ = self.coalesced_accounting(&reqs[i], trace, None, None);
                    Err(e.clone())
                }
                // Planning failed: every request that shared the key
                // records its own plan-failure trace.
                (Err(e), None) => {
                    let fetch_ns = plans[g].get().map(|(_, ns)| *ns).unwrap_or(0);
                    let _ = self.record_plan_failure(&reqs[i], fetch_ns, e);
                    Err(e.clone())
                }
                (Ok(_), None) => unreachable!("successful executions always carry a trace"),
            });
        }
        for (x, slot) in executed.into_iter().enumerate() {
            let (result, _) = slot.into_inner().expect("exec phase completed");
            out[exec_reps[x]] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("every request produced a result"))
            .collect()
    }

    // ---- measure-mode autotuning -------------------------------------

    /// Count a successfully planned request toward its key's hotness
    /// (no-op unless autotuning is enabled — the kill switch costs one
    /// branch).
    fn note_request(&self, key: &PlanKey) {
        if !self.autotune.enabled {
            return;
        }
        let mut hot = self.hot.lock().expect("hot map poisoned");
        hot.entry(key.clone()).or_default().requests += 1;
    }

    /// Autotuner counters.
    pub fn autotune_stats(&self) -> AutotuneSnapshot {
        self.tuner_stats.snapshot()
    }

    /// Tune every key currently due (hot and not yet tuned). Returns the
    /// number of keys tuned. This is the autotuner's unit of work: call
    /// it directly for deterministic tests/benchmarks, or let the
    /// background worker of [`Self::start_autotuner`] drive it.
    pub fn autotune_once(&self) -> usize {
        if !self.autotune.enabled {
            return 0;
        }
        let due: Vec<PlanKey> = {
            let mut hot = self.hot.lock().expect("hot map poisoned");
            hot.iter_mut()
                .filter(|(_, s)| {
                    !s.tuned
                        && s.requests >= self.autotune.hot_threshold
                        && s.measured < self.autotune.budget_per_key
                })
                .map(|(k, s)| {
                    // Claim eagerly so concurrent tuners never double-tune.
                    s.tuned = true;
                    k.clone()
                })
                .collect()
        };
        for key in &due {
            match self.tune_key(key) {
                Ok(measured) => {
                    self.tuner_stats.keys_tuned.fetch_add(1, Ordering::Relaxed);
                    let mut hot = self.hot.lock().expect("hot map poisoned");
                    if let Some(s) = hot.get_mut(key) {
                        s.measured += measured;
                    }
                }
                Err(e) => {
                    self.tuner_stats.failures.fetch_add(1, Ordering::Relaxed);
                    self.subscriber.on_event(&Event {
                        name: "autotune-failure",
                        at_ns: clock_ns(),
                        attrs: vec![("error", AttrValue::Str(e.to_string()))],
                    });
                }
            }
        }
        self.unpin_idle_keys();
        due.len()
    }

    /// The unpin half of the autotune cycle: a key that accumulated no
    /// new requests for [`AutotuneConfig::unpin_after_idle`] consecutive
    /// cycles is dropped from the hot map, and — if it had been tuned —
    /// its cache pin is released so the LRU can evict it once capacity
    /// pressure arrives. Traffic returning later re-heats the key from
    /// scratch.
    fn unpin_idle_keys(&self) {
        if self.autotune.unpin_after_idle == 0 {
            return;
        }
        let mut cold: Vec<PlanKey> = Vec::new();
        {
            let mut hot = self.hot.lock().expect("hot map poisoned");
            hot.retain(|k, s| {
                if s.requests == s.seen_requests {
                    s.idle_cycles += 1;
                } else {
                    s.idle_cycles = 0;
                    s.seen_requests = s.requests;
                }
                if s.idle_cycles < self.autotune.unpin_after_idle {
                    return true;
                }
                if s.tuned {
                    cold.push(k.clone());
                }
                false
            });
        }
        for key in &cold {
            if self.cache.unpin(key) {
                self.tuner_stats
                    .plans_unpinned
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Measure the top-ranked candidates for one key and install the
    /// measured-best plan. Returns how many measurements were spent.
    fn tune_key(&self, key: &PlanKey) -> Result<usize, PlanError> {
        let (shape, perm, opts) = key.problem_parts();
        let budget = self.autotune.budget_per_key.max(1);
        let topk = self.autotune.topk.max(1).min(budget);
        // Cap the tuner's planning sweep and measurement work so it
        // never competes with foreground batches for the whole machine.
        let (warmed, swapped, measured) =
            parallel::with_thread_cap(self.autotune.threads.max(1), || {
                let (plan, ranked) = self.transposer.plan_topk::<E>(&shape, &perm, &opts, topk)?;
                let mut best: Option<(f64, usize)> = None;
                let mut measured = 0usize;
                for (j, rc) in ranked.iter().enumerate() {
                    let m = self
                        .transposer
                        .measure_candidate::<E>(plan.problem(), &rc.candidate)?;
                    let t = m.timing.time_ns;
                    measured += 1;
                    self.tuner_stats
                        .candidates_measured
                        .fetch_add(1, Ordering::Relaxed);
                    if let Some(sink) = &self.sink {
                        sink.observe_candidate(&rc.candidate, t);
                        self.tuner_stats
                            .points_streamed
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if best.as_ref().map(|&(bt, _)| t < bt).unwrap_or(true) {
                        best = Some((t, j));
                    }
                }
                let (best_ns, j) = best.expect("plan_topk returns at least one candidate");
                // The warmed plan predicts its own measured time, so
                // subsequent residuals for this key collapse to ~1.0.
                let warmed = self.transposer.plan_for_candidate::<E>(
                    &shape,
                    &perm,
                    &opts,
                    ranked[j].candidate.clone(),
                    best_ns,
                )?;
                Ok::<_, PlanError>((warmed, j != 0, measured))
            })?;
        if self.cache.warm(key, Arc::new(warmed)) {
            self.tuner_stats
                .plans_warmed
                .fetch_add(1, Ordering::Relaxed);
            if swapped {
                self.tuner_stats
                    .plans_swapped
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(measured)
    }

    /// Spawn the background autotuner worker. It drains due keys via
    /// [`Self::autotune_once`] and parks for
    /// [`AutotuneConfig::poll_interval_ms`] when idle. Stops when the
    /// returned handle is dropped (or [`AutotunerHandle::stop`] is
    /// called).
    pub fn start_autotuner(self: &Arc<Self>) -> AutotunerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let svc = Arc::clone(self);
        let idle = Duration::from_millis(self.autotune.poll_interval_ms.max(1));
        let join = std::thread::Builder::new()
            .name("ttlg-autotuner".into())
            .spawn(move || run_worker(&flag, idle, || svc.autotune_once()))
            .expect("spawn autotuner thread");
        AutotunerHandle::new(stop, join)
    }

    // ------------------------------------------------- metrics history

    /// The metrics-history store fed by [`Self::scrape_history_once`].
    pub fn history(&self) -> &TimeSeriesStore {
        &self.history
    }

    /// The history configuration this service was built with.
    pub fn history_config(&self) -> HistoryConfig {
        self.history_cfg
    }

    /// Install (or clear) the snapshot source history scrapes ingest.
    /// The gateway installs one returning its merged snapshot so the
    /// store also sees `ttlg_gateway_*` families; `None` falls back to
    /// [`Self::metrics_snapshot`].
    pub fn set_history_source(&self, source: Option<HistorySource>) {
        *self.history_source.lock().expect("history source poisoned") = source;
    }

    /// Capture one snapshot and ingest it into the history store, then
    /// persist the store if a history file is configured. Called by the
    /// background scraper at the configured cadence; callers (tests,
    /// studies) may also drive it manually for deterministic timelines.
    pub fn scrape_history_once(&self) {
        let source = self
            .history_source
            .lock()
            .expect("history source poisoned")
            .clone();
        let snap = match source {
            Some(f) => match f() {
                Some(snap) => snap,
                None => return,
            },
            None => self.metrics_snapshot(),
        };
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        self.history.ingest(&snap, now_ms);
        self.persist_history();
    }

    /// Configure history persistence. If `path` already holds a saved
    /// store, it is restored first (so a restarted `ttlg serve` keeps
    /// its history); the store is then re-saved after every scrape.
    /// Returns the number of series restored (0 for a fresh file).
    pub fn set_history_file(&self, path: impl Into<PathBuf>) -> Result<usize, String> {
        let path = path.into();
        let restored = match std::fs::read_to_string(&path) {
            Ok(text) => self
                .history
                .hydrate(&text)
                .map_err(|e| format!("history file {}: {e}", path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(format!("history file {}: {e}", path.display())),
        };
        *self.history_file.lock().expect("history file poisoned") = Some(path);
        Ok(restored)
    }

    /// Best-effort save of the store to the configured history file
    /// (write-to-temp + rename, so a crash never leaves a torn file).
    fn persist_history(&self) {
        let Some(path) = self
            .history_file
            .lock()
            .expect("history file poisoned")
            .clone()
        else {
            return;
        };
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, self.history.save()).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// Start the background history scraper (idempotent; a no-op when
    /// `history.enabled` is false or the interval is zero). The thread
    /// holds only a [`Weak`] reference, so it never keeps the service
    /// alive; it stops on [`Self::stop_history_scraper`] or drop.
    pub fn start_history_scraper(self: &Arc<Self>) {
        if !self.history_cfg.enabled || self.history_cfg.scrape_interval_ms == 0 {
            return;
        }
        let mut slot = self.scraper.lock().expect("scraper poisoned");
        if slot.is_some() {
            return;
        }
        let stop: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
        let flag = Arc::clone(&stop);
        let weak: Weak<Self> = Arc::downgrade(self);
        let interval = Duration::from_millis(self.history_cfg.scrape_interval_ms);
        let join = std::thread::Builder::new()
            .name("ttlg-history".into())
            .spawn(move || loop {
                let (lock, cvar) = &*flag;
                let mut stopped = lock.lock().expect("scraper stop poisoned");
                let deadline = Instant::now() + interval;
                while !*stopped {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let (guard, _) = cvar
                        .wait_timeout(stopped, left)
                        .expect("scraper stop poisoned");
                    stopped = guard;
                }
                let done = *stopped;
                drop(stopped);
                if done {
                    return;
                }
                match weak.upgrade() {
                    Some(svc) => svc.scrape_history_once(),
                    None => return,
                }
            })
            .expect("spawn history scraper thread");
        *slot = Some(ScraperHandle { stop, join });
    }

    /// Stop and join the background history scraper, if running.
    pub fn stop_history_scraper(&self) {
        let handle = self.scraper.lock().expect("scraper poisoned").take();
        if let Some(ScraperHandle { stop, join }) = handle {
            *stop.0.lock().expect("scraper stop poisoned") = true;
            stop.1.notify_all();
            // If the scraper thread itself holds the last Arc, drop runs
            // on that thread — joining would deadlock on self.
            if join.thread().id() != std::thread::current().id() {
                let _ = join.join();
            }
        }
    }
}

impl<E: Element> Drop for TransposeService<E> {
    fn drop(&mut self) {
        self.stop_history_scraper();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_obs::CollectingSubscriber;
    use ttlg_tensor::Shape;

    #[test]
    fn single_submit_round_trips() {
        let svc: TransposeService<u64> = TransposeService::new_k40c();
        let shape = Shape::new(&[16, 8, 4]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let input = Arc::new(DenseTensor::<u64>::iota(shape));
        let req = TransposeRequest::new(Arc::clone(&input), perm.clone());
        let resp = svc.submit(&req).unwrap();
        let expect = ttlg_tensor::reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(resp.output.data(), expect.data());
        assert_eq!(svc.cache_stats().misses, 1);
        assert_eq!(svc.metrics().total_requests(), 1);
        // Second submission hits the cache.
        svc.submit(&req).unwrap();
        assert_eq!(svc.cache_stats().hits, 1);
    }

    #[test]
    fn cpu_backend_requests_serve_and_count_per_backend() {
        let svc: TransposeService<f32> = TransposeService::new_k40c();
        let shape = Shape::new(&[24, 12, 10]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let input = Arc::new(DenseTensor::<f32>::iota(shape));
        let mut cpu_req = TransposeRequest::new(Arc::clone(&input), perm.clone());
        cpu_req.opts = TransposeOptions::for_backend(ttlg::Backend::Cpu);
        let gpu_req = TransposeRequest::new(Arc::clone(&input), perm.clone());

        let resp = svc.submit(&cpu_req).unwrap();
        let expect = ttlg_tensor::reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(resp.output.data(), expect.data());
        assert!(resp.report.kernel_time_ns > 0.0, "wall-clock timing");
        svc.submit(&gpu_req).unwrap();

        // The two requests plan under distinct keys (backend is part of
        // the fingerprint) and land on separate backend lanes.
        assert_eq!(svc.cache_stats().misses, 2);
        let m = svc.metrics();
        assert_eq!(m.requests_for_backend(ttlg::Backend::Cpu), 1);
        assert_eq!(m.requests_for_backend(ttlg::Backend::GpuSim), 1);
        assert_eq!(m.backend_exec_latency(ttlg::Backend::Cpu).count(), 1);
        let prom = svc.export_prometheus();
        assert!(
            prom.contains("ttlg_backend_requests_total{backend=\"cpu\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("ttlg_backend_requests_total{backend=\"gpu_sim\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("ttlg_backend_exec_latency_us_bucket"),
            "{prom}"
        );
    }

    #[test]
    fn submit_spanned_builds_the_service_span_forest() {
        let svc: TransposeService<f64> = TransposeService::new_k40c();
        let shape = Shape::new(&[16, 8, 4]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let input = Arc::new(DenseTensor::<f64>::iota(shape));
        let req = TransposeRequest::new(Arc::clone(&input), perm);

        // Cold: plan is built, so the forest carries plan-build with the
        // Alg. 3 sweep child, and the decision trace is retained.
        let cold = svc.submit_spanned(&req);
        assert!(cold.result.is_ok());
        assert!(cold.decision.is_some(), "cold plan retains decision trace");
        let names: Vec<&str> = cold.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["plan", "queue-wait", "execute"]);
        let plan = &cold.spans[0];
        assert!(plan.find("cache-lookup").is_some());
        assert!(plan.find("plan-build").is_some());
        let sweep = plan.find("alg3-sweep").expect("cold plan swept candidates");
        assert!(sweep.duration_ns > 0);
        let exec = &cold.spans[2];
        assert!(exec.find("kernel-launch").is_some());
        let kernel = exec
            .find("kernel")
            .expect("successful execute has kernel span");
        assert!(kernel.duration_ns > 0);

        // Warm: the plan replays from cache — no build, no sweep.
        let warm = svc.submit_spanned(&req);
        assert!(warm.result.is_ok());
        let plan = &warm.spans[0];
        assert!(plan.find("cache-lookup").is_some());
        assert!(plan.find("plan-build").is_none(), "cache hit never builds");
        assert_eq!(
            plan.attrs.iter().find(|(k, _)| k == "cache").unwrap().1,
            "hit"
        );
        assert_eq!(svc.cache_stats().hits, 1);
    }

    #[test]
    fn batch_plans_each_distinct_problem_once() {
        let svc: TransposeService<u32> = TransposeService::new_k40c();
        let shape = Shape::new(&[8, 8, 8]).unwrap();
        let input = Arc::new(DenseTensor::<u32>::iota(shape));
        let perms = [[2usize, 1, 0], [1, 0, 2], [0, 2, 1]];
        // 12 requests over 3 distinct problems.
        let reqs: Vec<TransposeRequest<u32>> = (0..12)
            .map(|i| {
                TransposeRequest::new(
                    Arc::clone(&input),
                    Permutation::new(&perms[i % perms.len()]).unwrap(),
                )
            })
            .collect();
        let results = svc.submit_batch(&reqs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(svc.cache_stats().misses, 3, "one plan per distinct problem");
        assert_eq!(svc.metrics().total_requests(), 12);
        assert!(svc.metrics().total_bytes() > 0);
        // Every request left a trace; 3 were misses, 9 shared the plans.
        let traces = svc.recent_traces(100);
        assert_eq!(traces.len(), 12);
        let misses = traces.iter().filter(|t| t.cache_hit == Some(false)).count();
        assert_eq!(misses, 3, "batch attribution: one miss per distinct plan");
        assert!(traces.iter().all(|t| t.ok && t.measured_ns > 0.0));
    }

    #[test]
    fn batch_responses_keep_request_order() {
        let svc: TransposeService<u64> = TransposeService::new_k40c();
        let s1 = Shape::new(&[8, 8]).unwrap();
        let s2 = Shape::new(&[4, 4, 4]).unwrap();
        let p1 = Permutation::new(&[1, 0]).unwrap();
        let p2 = Permutation::new(&[2, 0, 1]).unwrap();
        let reqs = vec![
            TransposeRequest::new(Arc::new(DenseTensor::<u64>::iota(s1)), p1),
            TransposeRequest::new(Arc::new(DenseTensor::<u64>::iota(s2)), p2),
        ];
        let results = svc.submit_batch(&reqs);
        for (req, res) in reqs.iter().zip(results.iter()) {
            let out = &res.as_ref().unwrap().output;
            let expect =
                ttlg_tensor::reference::transpose_reference(&req.input, &req.perm).unwrap();
            assert_eq!(out.data(), expect.data());
        }
    }

    #[test]
    fn metrics_report_mentions_schemas_and_latency() {
        let svc: TransposeService<f64> = TransposeService::new_k40c();
        let shape = Shape::new(&[16, 16]).unwrap();
        let input = Arc::new(DenseTensor::<f64>::iota(shape));
        let req = TransposeRequest::new(input, Permutation::new(&[1, 0]).unwrap());
        svc.submit(&req).unwrap();
        let report = svc.metrics_report();
        assert!(report.contains("ttlg-runtime metrics"));
        assert!(report.contains("plan latency"));
        assert!(report.contains("exec latency"));
        assert!(report.contains("requests"));
    }

    #[test]
    fn traces_attribute_cache_and_decompose_phases() {
        let sub = Arc::new(CollectingSubscriber::new());
        let svc: TransposeService<f32> =
            TransposeService::new_k40c().with_subscriber(Arc::clone(&sub) as Arc<dyn Subscriber>);
        let shape = Shape::new(&[32, 16, 8]).unwrap();
        let input = Arc::new(DenseTensor::<f32>::iota(shape));
        let req = TransposeRequest::new(input, Permutation::new(&[2, 1, 0]).unwrap());
        svc.submit(&req).unwrap();
        svc.submit(&req).unwrap();

        let traces = svc.recent_traces(10);
        assert_eq!(traces.len(), 2);
        // Newest first: the second request hit the cache.
        assert_eq!(traces[0].cache_hit, Some(true));
        assert_eq!(traces[1].cache_hit, Some(false));
        for t in &traces {
            assert!(t.ok);
            assert!(!t.schema.is_empty());
            assert!(t.execute_ns > 0);
            assert!(t.predicted_ns > 0.0 && t.measured_ns > 0.0);
            assert!(t.dram_efficiency > 0.0 && t.dram_efficiency <= 1.0);
            assert!(t.smem_replay_rate >= 0.0);
        }
        assert!(traces[0].id != traces[1].id);

        let spans = sub.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.name == "request"));
        assert_eq!(spans[0].attr("cache"), Some(&AttrValue::Str("miss".into())));
        assert_eq!(spans[1].attr("cache"), Some(&AttrValue::Str("hit".into())));
        assert!(spans[0].attr("execute_ns").is_some());
    }

    #[test]
    fn failed_requests_record_latency_and_trace() {
        let sub = Arc::new(CollectingSubscriber::new());
        let svc: TransposeService<u32> =
            TransposeService::new_k40c().with_subscriber(Arc::clone(&sub) as Arc<dyn Subscriber>);
        let input = Arc::new(DenseTensor::<u32>::iota(Shape::new(&[8, 8, 8]).unwrap()));
        // Forcing Copy on a non-identity permutation yields no admissible
        // candidate: planning must fail gracefully.
        let mut req = TransposeRequest::new(input, Permutation::new(&[2, 1, 0]).unwrap());
        req.opts.forced_schema = Some(ttlg::Schema::Copy);
        let err = svc.submit(&req).err().expect("forced Copy must fail");
        assert!(err.message.contains("no admissible"), "{}", err.message);
        // Satellite: the failure still left a latency sample.
        assert_eq!(svc.metrics().failures(), 1);
        assert_eq!(svc.metrics().plan_latency.count(), 1);
        assert_eq!(svc.metrics().total_requests(), 0);
        // And a trace with no cache attribution (the cache never answered).
        let traces = svc.recent_traces(10);
        assert_eq!(traces.len(), 1);
        assert!(!traces[0].ok);
        assert_eq!(traces[0].cache_hit, None);
        assert!(traces[0].error.is_some());
        // The subscriber saw both the plan-failure event and the span.
        assert_eq!(sub.events().len(), 1);
        assert_eq!(sub.events()[0].name, "plan-failure");
        assert_eq!(sub.spans().len(), 1);
    }

    #[test]
    fn exporters_emit_live_metrics() {
        let svc: TransposeService<f64> = TransposeService::new_k40c();
        let input = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[16, 16, 4]).unwrap()));
        let req = TransposeRequest::new(input, Permutation::new(&[2, 1, 0]).unwrap());
        svc.submit(&req).unwrap();

        let prom = svc.export_prometheus();
        assert!(prom.contains("# TYPE ttlg_requests_total counter"));
        assert!(prom.contains("ttlg_backend_requests_total{backend=\"gpu_sim\"} 1"));
        assert!(prom.contains("ttlg_backend_requests_total{backend=\"cpu\"} 0"));
        assert!(prom.contains("ttlg_plan_latency_us_quantile{quantile=\"0.99\"}"));
        assert!(prom.contains("ttlg_prediction_samples_total"));
        assert!(prom.contains("ttlg_exec_latency_us_bucket"));
        // Every non-comment line is `name{labels} value`.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name_part.is_empty());
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
        }

        let json = svc.export_json();
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains("\"ttlg_requests_total\""));
        assert!(json.contains("\"histograms\""));

        // The ratio histogram for the served schema is non-empty.
        let snap = svc.metrics_snapshot();
        let ratio: u64 = snap
            .histograms
            .iter()
            .filter(|h| h.name == "ttlg_prediction_ratio")
            .map(|h| h.count())
            .sum();
        assert_eq!(ratio, 1);
    }

    /// Ranks candidates *backwards* (fast-by-analysis looks slow and
    /// vice versa) while staying inside the analytic guard band — the
    /// modeled winner is then the worst guard-eligible candidate, so a
    /// measured pass must swap it out.
    struct Inverted(ttlg::AnalyticPredictor);

    impl ttlg::TimePredictor for Inverted {
        fn predict_ns(&self, c: &ttlg::Candidate) -> f64 {
            1.0e12 / self.0.predict_ns(c).max(1.0)
        }
        fn name(&self) -> &str {
            "inverted"
        }
    }

    fn autotuned_config() -> RuntimeConfig {
        RuntimeConfig {
            autotune: crate::autotune::AutotuneConfig {
                enabled: true,
                hot_threshold: 2,
                topk: 4,
                budget_per_key: 8,
                threads: 1,
                poll_interval_ms: 1,
                ..crate::autotune::AutotuneConfig::default()
            },
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn autotuner_swaps_in_measured_best_plan_for_hot_keys() {
        let device = ttlg_gpu_sim::DeviceConfig::k40c();
        let transposer = Transposer::with_predictor(
            device.clone(),
            Arc::new(Inverted(ttlg::AnalyticPredictor::new(device))),
        );
        let svc: TransposeService<f64> =
            TransposeService::with_config(transposer, autotuned_config());
        let input = Arc::new(DenseTensor::<f64>::iota(
            ttlg_tensor::Shape::new(&[16, 16, 16, 16]).unwrap(),
        ));
        let req =
            TransposeRequest::new(Arc::clone(&input), Permutation::new(&[3, 1, 0, 2]).unwrap());

        // Not hot yet: one request is below the threshold.
        svc.submit(&req).unwrap();
        assert_eq!(svc.autotune_once(), 0);
        let before = svc.submit(&req).unwrap();
        assert_eq!(svc.autotune_once(), 1, "key is now hot");
        assert_eq!(svc.autotune_once(), 0, "tuned keys are not re-tuned");

        let stats = svc.autotune_stats();
        assert_eq!(stats.keys_tuned, 1);
        assert_eq!(stats.plans_warmed, 1);
        assert!(stats.candidates_measured >= 2);
        assert_eq!(stats.failures, 0);
        assert!(
            stats.plans_swapped >= 1,
            "inverted model's winner must lose the measured bake-off: {stats:?}"
        );

        // The warmed plan serves from the cache, still correct, and
        // predicts its own measured time.
        let hits_before = svc.cache_stats().hits;
        let after = svc.submit(&req).unwrap();
        assert_eq!(svc.cache_stats().hits, hits_before + 1);
        let expect = ttlg_tensor::reference::transpose_reference(&input, &req.perm).unwrap();
        assert_eq!(after.output.data(), expect.data());
        let rel = (after.report.predicted_ns - after.report.kernel_time_ns).abs()
            / after.report.kernel_time_ns;
        assert!(rel < 1e-9, "warmed plan predicts its measured time: {rel}");
        assert!(
            after.report.kernel_time_ns < before.report.kernel_time_ns,
            "measured-best plan beats the mis-modeled one: {} vs {}",
            after.report.kernel_time_ns,
            before.report.kernel_time_ns
        );
    }

    #[test]
    fn idle_tuned_keys_lose_their_pin_and_become_evictable() {
        let cfg = RuntimeConfig {
            cache: CacheConfig {
                shards: 1,
                capacity_per_shard: 2,
            },
            autotune: crate::autotune::AutotuneConfig {
                enabled: true,
                hot_threshold: 2,
                topk: 2,
                budget_per_key: 4,
                threads: 1,
                poll_interval_ms: 1,
                unpin_after_idle: 2,
            },
            ..RuntimeConfig::default()
        };
        let svc: TransposeService<u32> = TransposeService::with_config(Transposer::new_k40c(), cfg);
        let input = Arc::new(DenseTensor::<u32>::iota(Shape::new(&[8, 8, 8]).unwrap()));
        let req = TransposeRequest::new(Arc::clone(&input), Permutation::new(&[2, 1, 0]).unwrap());

        // Warm: the key goes hot, gets tuned, and its plan is pinned.
        svc.submit(&req).unwrap();
        svc.submit(&req).unwrap();
        assert_eq!(svc.autotune_once(), 1, "key went hot and got tuned");
        assert_eq!(svc.cache.pinned_plans(), 1);

        // Fresh traffic between cycles resets the idle counter.
        svc.submit(&req).unwrap();
        assert_eq!(svc.autotune_once(), 0);
        assert_eq!(svc.cache.pinned_plans(), 1, "traffic keeps the pin");

        // Cool: two request-free cycles cross `unpin_after_idle`.
        assert_eq!(svc.autotune_once(), 0);
        assert_eq!(svc.autotune_once(), 0);
        assert_eq!(svc.cache.pinned_plans(), 0, "idle key unpinned");
        assert_eq!(svc.autotune_stats().plans_unpinned, 1);
        assert!(svc.hot.lock().unwrap().is_empty(), "bookkeeping dropped");

        // The plan is still resident — unpinning is not eviction...
        let hits = svc.cache_stats().hits;
        svc.submit(&req).unwrap();
        assert_eq!(svc.cache_stats().hits, hits + 1);
        // ...but it lost its immunity: flooding the single shard past
        // capacity evicts it like any other LRU entry.
        for p in [[0usize, 2, 1], [1, 2, 0], [1, 0, 2], [2, 0, 1]] {
            let other = TransposeRequest::new(Arc::clone(&input), Permutation::new(&p).unwrap());
            svc.submit(&other).unwrap();
        }
        let misses = svc.cache_stats().misses;
        svc.submit(&req).unwrap();
        assert_eq!(svc.cache_stats().misses, misses + 1, "evicted: replanned");
    }

    #[test]
    fn autotuner_kill_switch_disables_tracking_and_tuning() {
        let svc: TransposeService<u32> = TransposeService::new_k40c();
        let input = Arc::new(DenseTensor::<u32>::iota(
            ttlg_tensor::Shape::new(&[8, 8, 8]).unwrap(),
        ));
        let req = TransposeRequest::new(input, Permutation::new(&[2, 1, 0]).unwrap());
        for _ in 0..5 {
            svc.submit(&req).unwrap();
        }
        assert_eq!(svc.autotune_once(), 0);
        assert_eq!(
            svc.autotune_stats(),
            crate::autotune::AutotuneSnapshot::default()
        );
        assert!(svc.hot.lock().unwrap().is_empty(), "no hot-key bookkeeping");
    }

    #[test]
    fn autotuner_streams_measurements_to_the_sink() {
        #[derive(Default)]
        struct Counting(AtomicU64);
        impl MeasurementSink for Counting {
            fn observe_candidate(&self, _c: &ttlg::Candidate, measured_ns: f64) {
                assert!(measured_ns > 0.0);
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(Counting::default());
        let svc: TransposeService<f32> =
            TransposeService::with_config(Transposer::new_k40c(), autotuned_config())
                .with_measurement_sink(Arc::clone(&sink) as Arc<dyn MeasurementSink>);
        let input = Arc::new(DenseTensor::<f32>::iota(
            ttlg_tensor::Shape::new(&[12, 10, 8, 6]).unwrap(),
        ));
        let req = TransposeRequest::new(input, Permutation::new(&[2, 3, 1, 0]).unwrap());
        svc.submit(&req).unwrap();
        svc.submit(&req).unwrap();
        // Foreground residual stream: both served requests were also
        // training points for the sink, counted separately from the
        // autotuner's stream.
        assert_eq!(svc.metrics().residual_points(), 2);
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
        assert_eq!(svc.autotune_once(), 1);
        let stats = svc.autotune_stats();
        assert_eq!(
            stats.points_streamed + svc.metrics().residual_points(),
            sink.0.load(Ordering::Relaxed)
        );
        assert_eq!(stats.points_streamed, stats.candidates_measured);
        assert!(stats.points_streamed > 0);
        // The snapshot exports the foreground counter.
        let prom = svc.export_prometheus();
        assert!(prom.contains("ttlg_residual_points_total 2"), "{prom}");
    }

    #[test]
    fn background_autotuner_never_disturbs_foreground_batches() {
        // Hammer test: the background worker tunes while foreground
        // threads push batches; totals must come out exact and
        // failure-free (the tuner's thread cap keeps it out of the way).
        let svc: Arc<TransposeService<u64>> = Arc::new(TransposeService::with_config(
            Transposer::new_k40c(),
            autotuned_config(),
        ));
        let handle = svc.start_autotuner();
        let input = Arc::new(DenseTensor::<u64>::iota(
            ttlg_tensor::Shape::new(&[8, 6, 5, 4]).unwrap(),
        ));
        const THREADS: usize = 4;
        const ROUNDS: usize = 3;
        let perms = [[3usize, 1, 0, 2], [2, 3, 1, 0], [1, 0, 3, 2]];
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let svc = Arc::clone(&svc);
                let input = Arc::clone(&input);
                s.spawn(move || {
                    for _ in 0..ROUNDS {
                        let reqs: Vec<TransposeRequest<u64>> = perms
                            .iter()
                            .map(|p| {
                                TransposeRequest::new(
                                    Arc::clone(&input),
                                    Permutation::new(p).unwrap(),
                                )
                            })
                            .collect();
                        for r in svc.submit_batch(&reqs) {
                            r.unwrap();
                        }
                    }
                });
            }
        });
        // Drain any keys that went hot after the last worker pass.
        while svc.autotune_once() > 0 {}
        handle.stop();
        assert_eq!(
            svc.metrics().total_requests(),
            (THREADS * ROUNDS * perms.len()) as u64,
            "foreground totals are exact"
        );
        assert_eq!(svc.metrics().failures(), 0);
        let stats = svc.autotune_stats();
        assert_eq!(stats.failures, 0);
        assert_eq!(
            stats.keys_tuned,
            perms.len() as u64,
            "every hot key tuned once"
        );
        assert_eq!(stats.plans_warmed, perms.len() as u64);
    }

    #[test]
    fn trace_ring_keeps_only_recent_requests() {
        let cfg = RuntimeConfig {
            trace_capacity: 4,
            ..RuntimeConfig::default()
        };
        let svc: TransposeService<u32> = TransposeService::with_config(Transposer::new_k40c(), cfg);
        let input = Arc::new(DenseTensor::<u32>::iota(Shape::new(&[8, 8]).unwrap()));
        let req = TransposeRequest::new(input, Permutation::new(&[1, 0]).unwrap());
        assert_eq!(svc.trace_dropped(), 0);
        for _ in 0..10 {
            svc.submit(&req).unwrap();
        }
        let traces = svc.recent_traces(100);
        assert_eq!(traces.len(), 4, "bounded by trace_capacity");
        // Newest first and contiguous.
        assert_eq!(traces[0].id, 9);
        assert_eq!(traces[3].id, 6);
        // Satellite: ring wraparound is no longer silent.
        assert_eq!(svc.trace_dropped(), 6);
        let prom = svc.export_prometheus();
        assert!(
            prom.contains("ttlg_trace_dropped_total{source=\"trace-ring\"} 6"),
            "{prom}"
        );
    }

    #[test]
    fn tail_attribution_wires_through_the_service() {
        let svc: TransposeService<f64> = TransposeService::new_k40c();
        let big = Arc::new(DenseTensor::<f64>::iota(
            Shape::new(&[16, 16, 16, 16]).unwrap(),
        ));
        let small = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[8, 8]).unwrap()));
        let r1 = TransposeRequest::new(Arc::clone(&big), Permutation::new(&[3, 1, 0, 2]).unwrap());
        let r2 = TransposeRequest::new(small, Permutation::new(&[1, 0]).unwrap());
        for _ in 0..3 {
            svc.submit(&r1).unwrap();
            svc.submit(&r2).unwrap();
        }
        // Traces carry the new attribution fields.
        let traces = svc.recent_traces(10);
        assert!(traces.iter().all(|t| !t.shape_class.is_empty()));
        assert!(traces.iter().any(|t| t.shape_class == "r4v16")); // 65536 elements
        assert!(traces.iter().all(|t| !t.warmed), "no autotuner ran");
        // Profiles group by (schema, shape-class) and attribute phases.
        let profiles = svc.phase_profiles();
        assert!(profiles.len() >= 2, "two shape classes: {profiles:?}");
        let top = &profiles[0];
        assert_eq!(top.requests, 3);
        assert!(top.shares_at(0.99).is_some());
        let flame = svc.render_profile();
        assert!(flame.contains("execute"), "{flame}");
        assert!(flame.contains(&top.shape_class), "{flame}");
        // Exemplars were captured per bucket, with the planner decision
        // attached (retention is on by default).
        let exemplars = svc.exemplars();
        assert!(exemplars.len() >= 2);
        for ((schema, class), entries) in &exemplars {
            assert!(!entries.is_empty(), "{schema}/{class} retained nothing");
            for e in entries {
                assert_eq!(&e.trace.shape_class, class);
                let d = e.decision.as_ref().expect("decision trace retained");
                assert!(d.chosen.is_some());
            }
        }
        // SLO tracker saw every request.
        let slo = svc.slo_snapshot();
        assert_eq!(slo.total, 6);
        assert!(slo.hit_ratio > 0.0);
    }

    #[test]
    fn disabling_decision_retention_drops_exemplar_payloads() {
        let cfg = RuntimeConfig {
            retain_decision_traces: false,
            ..RuntimeConfig::default()
        };
        let svc: TransposeService<u32> = TransposeService::with_config(Transposer::new_k40c(), cfg);
        let input = Arc::new(DenseTensor::<u32>::iota(Shape::new(&[8, 8, 8]).unwrap()));
        let req = TransposeRequest::new(input, Permutation::new(&[2, 1, 0]).unwrap());
        svc.submit(&req).unwrap();
        let exemplars = svc.exemplars();
        assert_eq!(exemplars.len(), 1);
        assert!(exemplars[0].1[0].decision.is_none());
    }

    #[test]
    fn warmed_plans_tag_their_requests() {
        let svc: TransposeService<f64> =
            TransposeService::with_config(Transposer::new_k40c(), autotuned_config());
        let input = Arc::new(DenseTensor::<f64>::iota(
            ttlg_tensor::Shape::new(&[16, 16, 16, 16]).unwrap(),
        ));
        let req = TransposeRequest::new(input, Permutation::new(&[3, 1, 0, 2]).unwrap());
        svc.submit(&req).unwrap();
        svc.submit(&req).unwrap();
        assert_eq!(svc.autotune_once(), 1);
        svc.submit(&req).unwrap();
        let traces = svc.recent_traces(3);
        assert!(traces[0].warmed, "post-warming request tagged");
        assert!(!traces[1].warmed && !traces[2].warmed, "pre-warming not");
        // Satellite: the warmed plan is pinned against LRU eviction and
        // the snapshot exposes the pin count.
        let prom = svc.export_prometheus();
        assert!(prom.contains("ttlg_cache_pinned_plans 1"), "{prom}");
        let profiles = svc.phase_profiles();
        assert_eq!(profiles[0].warmed_requests, 1);
        assert_eq!(profiles[0].requests, 3);
    }

    #[test]
    fn batch_duplicates_execute_once() {
        let svc: TransposeService<u32> = TransposeService::new_k40c();
        let shape = Shape::new(&[8, 8, 8]).unwrap();
        let input = Arc::new(DenseTensor::<u32>::iota(shape));
        let perms = [[2usize, 1, 0], [1, 0, 2], [0, 2, 1]];
        // 12 requests, but only 3 unique in-flight problems: duplicates
        // share the representative's execution.
        let reqs: Vec<TransposeRequest<u32>> = (0..12)
            .map(|i| {
                TransposeRequest::new(
                    Arc::clone(&input),
                    Permutation::new(&perms[i % perms.len()]).unwrap(),
                )
            })
            .collect();
        let results = svc.submit_batch(&reqs);
        for (req, res) in reqs.iter().zip(results.iter()) {
            let out = &res.as_ref().unwrap().output;
            let expect =
                ttlg_tensor::reference::transpose_reference(&req.input, &req.perm).unwrap();
            assert_eq!(out.data(), expect.data(), "coalesced copies stay correct");
        }
        // Executions: one per unique problem. Requests: all twelve.
        assert_eq!(svc.metrics().exec_latency.count(), 3);
        assert_eq!(svc.metrics().total_requests(), 12);
        assert_eq!(svc.metrics().coalesced_requests(), 9);
        let traces = svc.recent_traces(100);
        assert_eq!(traces.len(), 12);
        assert_eq!(traces.iter().filter(|t| t.coalesced).count(), 9);
        assert!(traces.iter().all(|t| t.ok && t.measured_ns > 0.0));
        let prom = svc.export_prometheus();
        assert!(prom.contains("ttlg_coalesced_requests_total 9"), "{prom}");
        assert!(prom.contains("ttlg_coalesced_ratio 0.75"), "{prom}");
    }

    #[test]
    fn submit_async_round_trips_and_never_blocks_the_caller() {
        let cfg = RuntimeConfig {
            async_exec: crate::async_exec::AsyncConfig {
                workers: 1,
                submit_capacity: 4,
                completion_capacity: 4,
                coalesce: false,
            },
            ..RuntimeConfig::default()
        };
        let svc: Arc<TransposeService<u64>> =
            Arc::new(TransposeService::with_config(Transposer::new_k40c(), cfg));
        let input = Arc::new(DenseTensor::<u64>::iota(Shape::new(&[16, 8, 4]).unwrap()));
        let perm = Permutation::new(&[2, 0, 1]).unwrap();

        // A single round trip delivers the correct output.
        let ticket = svc.submit_async(TransposeRequest::new(Arc::clone(&input), perm.clone()));
        let out = ticket.wait();
        let resp = out.result.as_ref().expect("async round trip");
        let expect = ttlg_tensor::reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(resp.output.data(), expect.data());
        assert!(!out.coalesced);
        assert!(out.trace.ok);
        assert!(!out.spans.is_empty(), "submit_spanned parity");

        // Bounded-time guarantee: flooding far past the submission
        // queue's capacity must never block the caller — each call
        // either enqueues or completes the ticket inline with an
        // overload error, and poll() answers immediately either way.
        let tickets: Vec<_> = (0..64)
            .map(|_| {
                let t0 = Instant::now();
                let t = svc.submit_async(TransposeRequest::new(Arc::clone(&input), perm.clone()));
                let _ = t.poll();
                assert!(
                    t0.elapsed() < Duration::from_millis(250),
                    "submit_async + poll must be bounded-time: {:?}",
                    t0.elapsed()
                );
                t
            })
            .collect();
        let mut ok = 0u64;
        let mut overloaded = 0u64;
        for t in &tickets {
            let out = t
                .wait_timeout(Duration::from_secs(10))
                .expect("every ticket completes");
            match &out.result {
                Ok(resp) => {
                    ok += 1;
                    assert_eq!(resp.output.data(), expect.data());
                }
                Err(e) => {
                    overloaded += 1;
                    assert!(e.message.contains("overloaded"), "{}", e.message);
                }
            }
        }
        let stats = svc.async_stats().expect("executor started");
        assert_eq!(stats.submitted, 65);
        assert_eq!(ok + overloaded + 1, stats.submitted);
        assert_eq!(stats.rejected, overloaded);
        assert_eq!(stats.executed, ok + 1);
        assert_eq!(stats.coalesced, 0, "coalescing disabled");
    }

    /// Satellite: 16-thread coalescing hammer. A single async worker is
    /// first pinned down by slow CPU-backend blockers, so every
    /// duplicate submitted while the blockers drain attaches to its
    /// key's single in-flight leader — exactly one execution per unique
    /// in-flight key, deterministically.
    #[test]
    fn coalescing_hammer_executes_each_inflight_key_once() {
        let cfg = RuntimeConfig {
            workers: 1,
            async_exec: crate::async_exec::AsyncConfig {
                workers: 1,
                submit_capacity: 4096,
                completion_capacity: 4096,
                coalesce: true,
            },
            ..RuntimeConfig::default()
        };
        let svc: Arc<TransposeService<f64>> =
            Arc::new(TransposeService::with_config(Transposer::new_k40c(), cfg));

        // Blockers: distinct large CPU-backend problems that keep the
        // single worker busy while the hammer threads submit.
        const BLOCKERS: usize = 3;
        let big = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[96, 96, 48]).unwrap()));
        let blocker_perms = [[2usize, 1, 0], [1, 2, 0], [2, 0, 1]];
        let blockers: Vec<_> = (0..BLOCKERS)
            .map(|b| {
                let mut req = TransposeRequest::new(
                    Arc::clone(&big),
                    Permutation::new(&blocker_perms[b]).unwrap(),
                );
                req.opts = TransposeOptions::for_backend(ttlg::Backend::Cpu);
                svc.submit_async(req)
            })
            .collect();

        // Hammer: 16 threads x 4 rounds x 3 unique problems, all
        // sharing one input Arc — 192 submissions, 3 executions.
        const THREADS: usize = 16;
        const ROUNDS: usize = 4;
        let input = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[8, 6, 5]).unwrap()));
        let perms = [[2usize, 1, 0], [1, 0, 2], [0, 2, 1]];
        let coalesced_seen = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let svc = Arc::clone(&svc);
                let input = Arc::clone(&input);
                let coalesced_seen = &coalesced_seen;
                s.spawn(move || {
                    let tickets: Vec<_> = (0..ROUNDS)
                        .flat_map(|_| {
                            perms.iter().map(|p| {
                                svc.submit_async(TransposeRequest::new(
                                    Arc::clone(&input),
                                    Permutation::new(p).unwrap(),
                                ))
                            })
                        })
                        .collect();
                    for (t, p) in tickets.iter().zip((0..ROUNDS).flat_map(|_| perms.iter())) {
                        let out = t
                            .wait_timeout(Duration::from_secs(30))
                            .expect("hammer ticket completes");
                        let resp = out.result.as_ref().expect("hammer request ok");
                        let perm = Permutation::new(p).unwrap();
                        let expect =
                            ttlg_tensor::reference::transpose_reference(&input, &perm).unwrap();
                        assert_eq!(
                            resp.output.data(),
                            expect.data(),
                            "every waiter gets a correct result"
                        );
                        if out.coalesced {
                            assert!(out.trace.coalesced);
                            coalesced_seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for b in &blockers {
            assert!(b
                .wait_timeout(Duration::from_secs(30))
                .expect("blocker completes")
                .result
                .is_ok());
        }

        let total = (THREADS * ROUNDS * perms.len() + BLOCKERS) as u64;
        let stats = svc.async_stats().expect("executor started");
        assert_eq!(stats.submitted, total);
        assert_eq!(stats.rejected, 0);
        // Exactly one execution per unique in-flight key: the blockers
        // plus one leader per hammer problem.
        assert_eq!(stats.executed, (BLOCKERS + perms.len()) as u64);
        assert_eq!(stats.coalesced, total - stats.executed);
        assert_eq!(coalesced_seen.load(Ordering::Relaxed), stats.coalesced);
        // Metrics reconcile: every submission is a served request, the
        // coalesced counter matches, and nothing failed.
        assert_eq!(svc.metrics().total_requests(), total);
        assert_eq!(svc.metrics().coalesced_requests(), stats.coalesced);
        assert_eq!(svc.metrics().failures(), 0);
        assert_eq!(
            svc.metrics().exec_latency.count(),
            stats.executed,
            "only leaders touch the execution histograms"
        );
        let prom = svc.export_prometheus();
        assert!(prom.contains("# TYPE ttlg_coalesced_requests_total counter"));
        assert!(prom.contains("# TYPE ttlg_completion_queue_depth gauge"));
    }

    /// Prometheus golden test for the new SLO/profile/tail families.
    #[test]
    fn prometheus_exports_slo_and_profile_families() {
        let svc: TransposeService<f64> = TransposeService::new_k40c();
        let input = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[16, 16, 4]).unwrap()));
        let req = TransposeRequest::new(input, Permutation::new(&[2, 1, 0]).unwrap());
        svc.submit(&req).unwrap();

        let prom = svc.export_prometheus();
        for family in [
            "# TYPE ttlg_trace_dropped_total counter",
            "# TYPE ttlg_exemplars_retained gauge",
            "# TYPE ttlg_slo_target_us gauge",
            "# TYPE ttlg_slo_goal gauge",
            "# TYPE ttlg_slo_requests_total counter",
            "# TYPE ttlg_slo_violations_total counter",
            "# TYPE ttlg_slo_hit_ratio gauge",
            "# TYPE ttlg_slo_burn_rate gauge",
            "# TYPE ttlg_profile_requests gauge",
            "# TYPE ttlg_profile_phase_ns gauge",
            "# TYPE ttlg_profile_p99_us gauge",
            "# TYPE ttlg_residual_points_total counter",
        ] {
            assert!(prom.contains(family), "missing {family}\n{prom}");
        }
        assert!(prom.contains("ttlg_slo_requests_total 1"), "{prom}");
        assert!(prom.contains("ttlg_exemplars_retained 1"), "{prom}");
        assert!(
            prom.contains("ttlg_slo_burn_rate{window=\"short\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("ttlg_profile_phase_ns{schema=\"Orthogonal-Distinct\""),
            "{prom}"
        );
        assert!(prom.contains("phase=\"execute\""), "{prom}");
        // Every non-comment line still parses as `name{labels} value`,
        // including the NaN sentinel for empty quantiles.
        for line in prom.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name_part.is_empty());
            assert!(value.parse::<f64>().is_ok() || value == "+Inf", "{line}");
        }
        // JSON renderer carries the same families (NaN -> null there).
        let json = svc.export_json();
        assert!(json.contains("\"ttlg_slo_hit_ratio\""));
        assert!(json.contains("\"ttlg_profile_requests\""));
        assert!(json.contains("\"ttlg_trace_dropped_total\""));
    }

    #[test]
    fn snapshot_carries_uptime_build_info_and_tsdb_health() {
        let svc: TransposeService<u64> = TransposeService::new_k40c();
        let snap = svc.metrics_snapshot();
        let uptime = snap
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_uptime_seconds")
            .expect("uptime exported");
        assert!(uptime.samples[0].value >= 0.0);
        let build = snap
            .metrics
            .iter()
            .find(|m| m.name == "ttlg_build_info")
            .expect("build info exported");
        assert_eq!(build.samples[0].value, 1.0);
        let labels = &build.samples[0].labels;
        assert!(labels.iter().any(|(k, v)| k == "version" && !v.is_empty()));
        assert!(labels
            .iter()
            .any(|(k, v)| k == "backend_set" && v.contains("gpu_sim") && v.contains("cpu")));
        assert!(snap
            .metrics
            .iter()
            .any(|m| m.name == "ttlg_tsdb_scrapes_total"));
    }

    #[test]
    fn manual_history_scrapes_populate_the_store() {
        let svc: TransposeService<u64> = TransposeService::new_k40c();
        let input = Arc::new(DenseTensor::<u64>::iota(Shape::new(&[8, 8, 8]).unwrap()));
        let req = TransposeRequest::new(Arc::clone(&input), Permutation::new(&[2, 1, 0]).unwrap());
        svc.scrape_history_once();
        svc.submit(&req).unwrap();
        svc.submit(&req).unwrap();
        svc.scrape_history_once();
        assert_eq!(svc.history().scrapes(), 2);
        let data = svc.history().scalar_data("ttlg_requests_total");
        assert!(!data.is_empty(), "request counter retained");
        let total: f64 = data
            .iter()
            .flat_map(|s| s.points.iter().map(|(_, v)| *v))
            .sum();
        assert_eq!(total, 2.0, "two increments across the scrapes");
    }

    #[test]
    fn history_file_restores_across_service_restarts() {
        let dir = std::env::temp_dir().join("ttlg-runtime-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("hist-{}.ttlg", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let svc: TransposeService<u64> = TransposeService::new_k40c();
        assert_eq!(svc.set_history_file(&path).unwrap(), 0, "fresh file");
        let input = Arc::new(DenseTensor::<u64>::iota(Shape::new(&[8, 8, 8]).unwrap()));
        let req = TransposeRequest::new(Arc::clone(&input), Permutation::new(&[2, 1, 0]).unwrap());
        svc.submit(&req).unwrap();
        svc.scrape_history_once();
        let scrapes = svc.history().scrapes();
        assert!(scrapes > 0);
        drop(svc);

        // A restarted service restores the retained series.
        let svc2: TransposeService<u64> = TransposeService::new_k40c();
        let restored = svc2.set_history_file(&path).unwrap();
        assert!(restored > 0, "series restored from disk");
        assert_eq!(svc2.history().scrapes(), scrapes);
        assert!(!svc2.history().scalar_data("ttlg_requests_total").is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn background_scraper_starts_stops_and_drops_cleanly() {
        let mut cfg = RuntimeConfig::default();
        cfg.history.scrape_interval_ms = 5;
        let svc: Arc<TransposeService<u64>> =
            Arc::new(TransposeService::with_config(Transposer::new_k40c(), cfg));
        svc.start_history_scraper();
        svc.start_history_scraper(); // idempotent
        let deadline = Instant::now() + Duration::from_secs(5);
        while svc.history().scrapes() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(svc.history().scrapes() >= 2, "scraper ingested snapshots");
        svc.stop_history_scraper();
        let after = svc.history().scrapes();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(svc.history().scrapes(), after, "no scrapes after stop");
        // Drop with a previously running scraper is clean (Drop joins a
        // second time harmlessly).
        drop(svc);

        // And dropping a service whose scraper is still running joins it.
        let mut cfg = RuntimeConfig::default();
        cfg.history.scrape_interval_ms = 5;
        let svc: Arc<TransposeService<u64>> =
            Arc::new(TransposeService::with_config(Transposer::new_k40c(), cfg));
        svc.start_history_scraper();
        drop(svc);
    }
}
