//! The multi-tenant transposition service.
//!
//! [`TransposeService`] wraps a [`Transposer`] with the three things a
//! shared deployment needs:
//!
//! 1. a sharded, bounded, single-flight plan cache
//!    ([`ttlg::ShardedPlanCache`]) so concurrent clients never plan the
//!    same problem twice;
//! 2. batched submission: a batch is grouped by plan key, each distinct
//!    problem is planned once (in parallel across the pool), then every
//!    request executes across scoped worker threads under a configurable
//!    in-flight bound (backpressure for the device);
//! 3. lock-free metrics: per-schema request counters, bytes-moved
//!    totals, and plan/execute latency histograms, rendered as a
//!    plain-text report.

use crate::metrics::Metrics;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;
use ttlg::{
    CacheConfig, CacheStats, Plan, PlanError, PlanKey, ShardedPlanCache, TransposeOptions,
    TransposeReport, Transposer,
};
use ttlg_tensor::{parallel, DenseTensor, Element, Permutation};

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads used to plan and execute a batch.
    pub workers: usize,
    /// Max requests executing concurrently (backpressure bound). `0`
    /// means "same as `workers`".
    pub max_in_flight: usize,
    /// Plan-cache geometry (shards x per-shard LRU capacity).
    pub cache: CacheConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = parallel::default_threads().min(8);
        RuntimeConfig {
            workers,
            max_in_flight: 0,
            cache: CacheConfig::default(),
        }
    }
}

/// One unit of client work: transpose `input` by `perm` under `opts`.
#[derive(Clone)]
pub struct TransposeRequest<E: Element> {
    /// Input tensor (shared; batches often reuse one tensor).
    pub input: Arc<DenseTensor<E>>,
    /// The permutation to apply.
    pub perm: Permutation,
    /// Planning options (part of the plan key).
    pub opts: TransposeOptions,
}

impl<E: Element> TransposeRequest<E> {
    /// A request with default planning options.
    pub fn new(input: Arc<DenseTensor<E>>, perm: Permutation) -> Self {
        TransposeRequest {
            input,
            perm,
            opts: TransposeOptions::default(),
        }
    }

    /// The cache fingerprint this request plans under.
    pub fn plan_key(&self) -> PlanKey {
        PlanKey::new(self.input.shape(), &self.perm, &self.opts)
    }
}

/// A completed request.
pub struct TransposeResponse<E: Element> {
    /// The transposed tensor.
    pub output: DenseTensor<E>,
    /// Simulator timing/bandwidth report.
    pub report: TransposeReport,
}

/// Service-level error: cloneable so one failed plan can be fanned out
/// to every request in the batch that shared it.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// Human-readable failure description.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError {
            message: e.to_string(),
        }
    }
}

/// Result of one request through the service.
pub type ServeResult<E> = Result<TransposeResponse<E>, ServeError>;

/// Counting semaphore bounding in-flight executions (std has none).
struct Semaphore {
    permits: Mutex<usize>,
    freed: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().expect("semaphore poisoned");
        while *p == 0 {
            p = self.freed.wait(p).expect("semaphore poisoned");
        }
        *p -= 1;
    }

    fn release(&self) {
        *self.permits.lock().expect("semaphore poisoned") += 1;
        self.freed.notify_one();
    }
}

/// The concurrent transposition service. See the module docs.
pub struct TransposeService<E: Element> {
    transposer: Transposer,
    cache: ShardedPlanCache<E>,
    metrics: Metrics,
    in_flight: Semaphore,
    workers: usize,
    /// Inner-executor thread cap per request while a batch is running:
    /// the machine's parallelism divided among the in-flight bound, so
    /// concurrent executes share cores instead of oversubscribing.
    exec_threads: usize,
}

impl<E: Element> TransposeService<E> {
    /// Build a service around an existing transposer.
    pub fn with_config(transposer: Transposer, cfg: RuntimeConfig) -> Self {
        let workers = cfg.workers.max(1);
        let bound = if cfg.max_in_flight == 0 {
            workers
        } else {
            cfg.max_in_flight
        };
        let bound = bound.max(1);
        TransposeService {
            transposer,
            cache: ShardedPlanCache::with_config(cfg.cache),
            metrics: Metrics::new(),
            in_flight: Semaphore::new(bound),
            workers,
            exec_threads: (parallel::default_threads() / bound).max(1),
        }
    }

    /// A service on the paper's K40c with default configuration.
    pub fn new_k40c() -> Self {
        Self::with_config(Transposer::new_k40c(), RuntimeConfig::default())
    }

    /// The underlying transposer (e.g. for direct plan queries).
    pub fn transposer(&self) -> &Transposer {
        &self.transposer
    }

    /// Cache counters (hits/misses/evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resident plans in the cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Service metrics (counters + histograms).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Render the plain-text metrics report.
    pub fn metrics_report(&self) -> String {
        self.metrics.render(&self.cache.stats())
    }

    /// Fetch (or build, single-flight) the plan for one request, timing
    /// the fetch into the plan-latency histogram.
    fn fetch_plan(
        &self,
        req: &TransposeRequest<E>,
        key: &PlanKey,
    ) -> Result<Arc<Plan<E>>, ServeError> {
        let t0 = Instant::now();
        let plan = self.cache.get_or_plan_keyed(
            &self.transposer,
            key,
            req.input.shape(),
            &req.perm,
            &req.opts,
        );
        self.metrics
            .plan_latency
            .record_ns(t0.elapsed().as_nanos() as u64);
        plan.map_err(|e| {
            self.metrics.record_failure();
            ServeError::from(e)
        })
    }

    /// Execute one planned request under the in-flight bound.
    fn execute(&self, req: &TransposeRequest<E>, plan: &Arc<Plan<E>>) -> ServeResult<E> {
        self.in_flight.acquire();
        let t0 = Instant::now();
        let result = self.transposer.execute(plan, &req.input);
        let elapsed = t0.elapsed().as_nanos() as u64;
        self.in_flight.release();
        self.metrics.exec_latency.record_ns(elapsed);
        match result {
            Ok((output, report)) => {
                let bytes = 2 * req.input.volume() as u64 * E::BYTES as u64;
                self.metrics.record_request(report.schema, bytes);
                Ok(TransposeResponse { output, report })
            }
            Err(e) => {
                self.metrics.record_failure();
                Err(ServeError::from(e))
            }
        }
    }

    /// Serve a single request (plan via the shared cache, execute under
    /// the in-flight bound).
    pub fn submit(&self, req: &TransposeRequest<E>) -> ServeResult<E> {
        let key = req.plan_key();
        let plan = self.fetch_plan(req, &key)?;
        self.execute(req, &plan)
    }

    /// Serve a batch: requests are grouped by plan key, each distinct
    /// problem is planned exactly once (in parallel across the worker
    /// pool), then all requests execute across the pool. Responses come
    /// back in request order.
    pub fn submit_batch(&self, reqs: &[TransposeRequest<E>]) -> Vec<ServeResult<E>> {
        self.metrics.record_batch();
        // Group by plan key so each distinct problem plans once.
        let keys: Vec<PlanKey> = reqs.iter().map(|r| r.plan_key()).collect();
        let mut groups: HashMap<&PlanKey, usize> = HashMap::new();
        let mut distinct: Vec<usize> = Vec::new(); // representative request per key
        for (i, k) in keys.iter().enumerate() {
            groups.entry(k).or_insert_with(|| {
                distinct.push(i);
                distinct.len() - 1
            });
        }

        // Phase 1: plan every distinct problem across the pool.
        let plans: Vec<OnceLock<Result<Arc<Plan<E>>, ServeError>>> =
            (0..distinct.len()).map(|_| OnceLock::new()).collect();
        parallel::parallel_for_threads(distinct.len(), 1, self.workers, |g| {
            let i = distinct[g];
            let built = self.fetch_plan(&reqs[i], &keys[i]);
            plans[g].set(built).ok().expect("plan slot set twice");
        });

        // Phase 2: execute everything across the pool, bounded by the
        // in-flight semaphore.
        let results: Vec<OnceLock<ServeResult<E>>> =
            (0..reqs.len()).map(|_| OnceLock::new()).collect();
        parallel::parallel_for_threads(reqs.len(), 1, self.workers, |i| {
            let g = groups[&keys[i]];
            let outcome = match plans[g].get().expect("plan phase completed") {
                // Cap the executor's inner parallelism so the batch's
                // concurrent requests share cores instead of each
                // spawning a full-machine pool.
                Ok(plan) => {
                    parallel::with_thread_cap(self.exec_threads, || self.execute(&reqs[i], plan))
                }
                Err(e) => Err(e.clone()),
            };
            results[i].set(outcome).ok().expect("result slot set twice");
        });

        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every request produced a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::Shape;

    #[test]
    fn single_submit_round_trips() {
        let svc: TransposeService<u64> = TransposeService::new_k40c();
        let shape = Shape::new(&[16, 8, 4]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let input = Arc::new(DenseTensor::<u64>::iota(shape));
        let req = TransposeRequest::new(Arc::clone(&input), perm.clone());
        let resp = svc.submit(&req).unwrap();
        let expect = ttlg_tensor::reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(resp.output.data(), expect.data());
        assert_eq!(svc.cache_stats().misses, 1);
        assert_eq!(svc.metrics().total_requests(), 1);
        // Second submission hits the cache.
        svc.submit(&req).unwrap();
        assert_eq!(svc.cache_stats().hits, 1);
    }

    #[test]
    fn batch_plans_each_distinct_problem_once() {
        let svc: TransposeService<u32> = TransposeService::new_k40c();
        let shape = Shape::new(&[8, 8, 8]).unwrap();
        let input = Arc::new(DenseTensor::<u32>::iota(shape));
        let perms = [[2usize, 1, 0], [1, 0, 2], [0, 2, 1]];
        // 12 requests over 3 distinct problems.
        let reqs: Vec<TransposeRequest<u32>> = (0..12)
            .map(|i| {
                TransposeRequest::new(
                    Arc::clone(&input),
                    Permutation::new(&perms[i % perms.len()]).unwrap(),
                )
            })
            .collect();
        let results = svc.submit_batch(&reqs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(svc.cache_stats().misses, 3, "one plan per distinct problem");
        assert_eq!(svc.metrics().total_requests(), 12);
        assert!(svc.metrics().total_bytes() > 0);
    }

    #[test]
    fn batch_responses_keep_request_order() {
        let svc: TransposeService<u64> = TransposeService::new_k40c();
        let s1 = Shape::new(&[8, 8]).unwrap();
        let s2 = Shape::new(&[4, 4, 4]).unwrap();
        let p1 = Permutation::new(&[1, 0]).unwrap();
        let p2 = Permutation::new(&[2, 0, 1]).unwrap();
        let reqs = vec![
            TransposeRequest::new(Arc::new(DenseTensor::<u64>::iota(s1)), p1),
            TransposeRequest::new(Arc::new(DenseTensor::<u64>::iota(s2)), p2),
        ];
        let results = svc.submit_batch(&reqs);
        for (req, res) in reqs.iter().zip(results.iter()) {
            let out = &res.as_ref().unwrap().output;
            let expect =
                ttlg_tensor::reference::transpose_reference(&req.input, &req.perm).unwrap();
            assert_eq!(out.data(), expect.data());
        }
    }

    #[test]
    fn metrics_report_mentions_schemas_and_latency() {
        let svc: TransposeService<f64> = TransposeService::new_k40c();
        let shape = Shape::new(&[16, 16]).unwrap();
        let input = Arc::new(DenseTensor::<f64>::iota(shape));
        let req = TransposeRequest::new(input, Permutation::new(&[1, 0]).unwrap());
        svc.submit(&req).unwrap();
        let report = svc.metrics_report();
        assert!(report.contains("ttlg-runtime metrics"));
        assert!(report.contains("plan latency"));
        assert!(report.contains("exec latency"));
        assert!(report.contains("requests"));
    }
}
