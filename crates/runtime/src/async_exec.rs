//! In-tree completion-queue executor: non-blocking submission with
//! single-flight request coalescing.
//!
//! [`TransposeService::submit_async`] hands a request to a small worker
//! pool and returns a [`TicketHandle`] immediately — the caller never
//! blocks, not even when the executor is saturated (a full submission
//! queue completes the ticket with an overload error instead of
//! waiting). The moving parts, all `std`-only:
//!
//! * a **bounded submission queue** workers drain; `submit_async` uses a
//!   non-blocking `try_push` so the caller's latency is bounded by two
//!   short mutex critical sections;
//! * a **bounded MPSC completion queue**: workers push completion
//!   records, a single dispatcher thread pops them, fulfills the
//!   ticket's result slot, wakes waiters, and fires the per-ticket
//!   completion hook — so planning, execution, and result delivery are
//!   three decoupled stages;
//! * a **waiter table with parked-thread wakeups**: [`TicketHandle::wait`]
//!   registers the calling thread and parks; completion unparks every
//!   registered waiter ([`TicketHandle::poll`] never blocks at all);
//! * a **single-flight table** keyed by `(PlanKey problem fingerprint,
//!   input identity)`: identical in-flight problems share one plan *and*
//!   one execution. The first submission becomes the leader and is
//!   enqueued; later identical submissions attach as followers and are
//!   never enqueued. When the leader's execution completes, every
//!   follower receives the shared result (`Arc`) with its own
//!   [`RequestTrace`] marked `coalesced`.
//!
//! Worker threads hold only a [`Weak`] reference to the service, so
//! dropping the last service `Arc` tears the executor down: queues
//! close, in-flight tickets fail with a shutdown error, threads join.

use crate::service::{ServeError, TransposeRequest, TransposeResponse, TransposeService};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};
use ttlg::DecisionTrace;
use ttlg_obs::{RequestTrace, SpanNode};
use ttlg_tensor::Element;

/// Executor geometry, embedded in
/// [`crate::RuntimeConfig::async_exec`]. `Copy` so the enclosing config
/// stays `Copy`.
#[derive(Debug, Clone, Copy)]
pub struct AsyncConfig {
    /// Executor worker threads; `0` means "same as the service's
    /// `workers`".
    pub workers: usize,
    /// Submission-queue capacity. A full queue rejects (completes the
    /// ticket with an overload error) instead of blocking the caller.
    pub submit_capacity: usize,
    /// Completion-queue capacity. A full queue backpressures *workers*
    /// (never the submitting caller).
    pub completion_capacity: usize,
    /// Single-flight coalescing of identical in-flight problems.
    pub coalesce: bool,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            workers: 0,
            submit_capacity: 256,
            completion_capacity: 256,
            coalesce: true,
        }
    }
}

/// What a completed ticket resolves to. The response is `Arc`-shared:
/// coalesced followers receive the same execution's output without
/// copying it.
pub struct AsyncOutcome<E: Element> {
    /// The request outcome (shared across coalesced waiters).
    pub result: Result<Arc<TransposeResponse<E>>, ServeError>,
    /// This request's own phase trace (followers get their own trace,
    /// marked [`RequestTrace::coalesced`], with the leader's measured
    /// numbers copied in).
    pub trace: RequestTrace,
    /// Service-side span forest (`submit_spanned` parity).
    pub spans: Vec<SpanNode>,
    /// The planner's decision trace, when retained.
    pub decision: Option<Arc<DecisionTrace>>,
    /// Whether this request rode another request's execution.
    pub coalesced: bool,
}

/// Per-ticket completion callback, fired exactly once by the dispatcher
/// thread after the result slot is filled and waiters are woken. This
/// is how push-style consumers (the gateway) drain the completion queue
/// without dedicating a blocked thread per request.
pub type CompletionHook<E> = Box<dyn FnOnce(&Arc<AsyncOutcome<E>>) + Send>;

/// Shared ticket state: the result slot, the done flag, and the parked
/// waiter table.
struct TicketState<E: Element> {
    id: u64,
    done: AtomicBool,
    payload: Mutex<Option<Arc<AsyncOutcome<E>>>>,
    waiters: Mutex<Vec<Thread>>,
    hook: Mutex<Option<CompletionHook<E>>>,
}

impl<E: Element> TicketState<E> {
    fn new(id: u64, hook: Option<CompletionHook<E>>) -> Arc<Self> {
        Arc::new(TicketState {
            id,
            done: AtomicBool::new(false),
            payload: Mutex::new(None),
            waiters: Mutex::new(Vec::new()),
            hook: Mutex::new(hook),
        })
    }

    /// Fill the slot, publish `done`, wake every parked waiter, fire the
    /// hook. Idempotent: later calls are no-ops.
    fn complete(&self, payload: Arc<AsyncOutcome<E>>) {
        {
            let mut slot = self.payload.lock().expect("ticket slot poisoned");
            if slot.is_some() {
                return;
            }
            *slot = Some(Arc::clone(&payload));
        }
        self.done.store(true, Ordering::Release);
        let waiters = std::mem::take(&mut *self.waiters.lock().expect("waiter table poisoned"));
        for w in waiters {
            w.unpark();
        }
        let hook = self.hook.lock().expect("hook slot poisoned").take();
        if let Some(hook) = hook {
            hook(&payload);
        }
    }
}

/// The caller's side of one async submission: poll, park-wait, or both.
pub struct TicketHandle<E: Element> {
    state: Arc<TicketState<E>>,
}

impl<E: Element> TicketHandle<E> {
    /// Monotonic ticket id (unique per executor).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// Whether the result is ready. Never blocks.
    pub fn is_done(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }

    /// The result, if ready. Never blocks beyond one uncontended mutex.
    pub fn poll(&self) -> Option<Arc<AsyncOutcome<E>>> {
        if !self.is_done() {
            return None;
        }
        self.state
            .payload
            .lock()
            .expect("ticket slot poisoned")
            .clone()
    }

    /// Park the calling thread until the result is ready.
    pub fn wait(&self) -> Arc<AsyncOutcome<E>> {
        loop {
            if let Some(p) = self.poll() {
                return p;
            }
            self.state
                .waiters
                .lock()
                .expect("waiter table poisoned")
                .push(thread::current());
            // Re-check after registering: completion may have drained the
            // table between our poll and our push. The timeout is a
            // belt-and-braces backstop against a lost unpark.
            if !self.is_done() {
                thread::park_timeout(Duration::from_millis(20));
            }
        }
    }

    /// [`Self::wait`] with a deadline; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<AsyncOutcome<E>>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.poll() {
                return Some(p);
            }
            let now = Instant::now();
            if now >= deadline {
                return self.poll();
            }
            self.state
                .waiters
                .lock()
                .expect("waiter table poisoned")
                .push(thread::current());
            if !self.is_done() {
                thread::park_timeout((deadline - now).min(Duration::from_millis(20)));
            }
        }
    }
}

/// Point-in-time executor counters, exported by the service as the
/// `ttlg_coalesced_*` / `ttlg_completion_queue_depth` families and
/// consumed directly by `bench-serve --async`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AsyncStatsSnapshot {
    /// Tickets issued by `submit_async` (leaders + followers + rejects).
    pub submitted: u64,
    /// Work items actually executed by the worker pool.
    pub executed: u64,
    /// Followers that shared another request's execution.
    pub coalesced: u64,
    /// Submissions rejected because the submission queue was full.
    pub rejected: u64,
    /// Completion records currently queued for delivery.
    pub completion_depth: usize,
    /// Work items currently queued for execution.
    pub submit_depth: usize,
}

/// Bounded two-condvar queue: non-blocking or blocking producers,
/// blocking consumers, explicit close.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    added: Condvar,
    removed: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            added: Condvar::new(),
            removed: Condvar::new(),
        }
    }

    /// Non-blocking push; the item comes back on a full or closed queue.
    fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed || s.items.len() >= s.capacity {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.added.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space. `false` if the queue closed (the
    /// item is dropped; callers complete tickets inline in that case).
    fn push_blocking(&self, item: T) -> bool {
        let mut s = self.state.lock().expect("queue poisoned");
        while !s.closed && s.items.len() >= s.capacity {
            s = self.removed.wait(s).expect("queue poisoned");
        }
        if s.closed {
            return false;
        }
        s.items.push_back(item);
        drop(s);
        self.added.notify_one();
        true
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    fn pop_blocking(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.removed.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.added.wait(s).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.added.notify_all();
        self.removed.notify_all();
    }

    fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }
}

/// Identity of one in-flight problem: the plan key's stable fingerprint
/// plus the input tensor's `Arc` identity (same allocation ⇒ same
/// bytes). The leader's work item holds the input `Arc` alive for the
/// lifetime of the table entry, so the pointer cannot be recycled while
/// the entry exists.
type CoalesceKey = (u64, usize);

struct WorkItem<E: Element> {
    req: TransposeRequest<E>,
    ticket: Arc<TicketState<E>>,
    key: Option<CoalesceKey>,
}

struct CompletionRecord<E: Element> {
    ticket: Arc<TicketState<E>>,
    payload: Arc<AsyncOutcome<E>>,
}

struct AsyncShared<E: Element> {
    submissions: BoundedQueue<WorkItem<E>>,
    completions: BoundedQueue<CompletionRecord<E>>,
    /// Single-flight table: in-flight problem -> followers awaiting the
    /// leader's execution.
    inflight: Mutex<HashMap<CoalesceKey, Vec<Arc<TicketState<E>>>>>,
    coalesce: bool,
    next_ticket: AtomicU64,
    submitted: AtomicU64,
    executed: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
}

/// The executor: worker pool + dispatcher around the two queues. Owned
/// by the service (lazily created on first `submit_async`); `Drop`
/// closes the queues and joins every thread.
pub struct AsyncExecutor<E: Element> {
    shared: Arc<AsyncShared<E>>,
    workers: Vec<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl<E: Element> AsyncExecutor<E> {
    pub(crate) fn start(svc: Weak<TransposeService<E>>, cfg: AsyncConfig, workers: usize) -> Self {
        let shared = Arc::new(AsyncShared {
            submissions: BoundedQueue::new(cfg.submit_capacity),
            completions: BoundedQueue::new(cfg.completion_capacity),
            inflight: Mutex::new(HashMap::new()),
            coalesce: cfg.coalesce,
            next_ticket: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let n = if cfg.workers == 0 {
            workers
        } else {
            cfg.workers
        }
        .max(1);
        let worker_handles = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let svc = svc.clone();
                thread::Builder::new()
                    .name(format!("ttlg-async-{i}"))
                    .spawn(move || worker_loop(&shared, &svc))
                    .expect("spawn async worker")
            })
            .collect();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("ttlg-async-cq".into())
                .spawn(move || {
                    while let Some(rec) = shared.completions.pop_blocking() {
                        rec.ticket.complete(rec.payload);
                    }
                })
                .expect("spawn completion dispatcher")
        };
        AsyncExecutor {
            shared,
            workers: worker_handles,
            dispatcher: Some(dispatcher),
        }
    }

    /// Issue a ticket for `req`. Never blocks: a coalescible request
    /// attaches to the in-flight leader, a fresh one enqueues, and a
    /// full queue completes the ticket with an overload error inline.
    pub(crate) fn submit(
        &self,
        req: TransposeRequest<E>,
        hook: Option<CompletionHook<E>>,
    ) -> TicketHandle<E> {
        let shared = &self.shared;
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        let ticket = TicketState::new(shared.next_ticket.fetch_add(1, Ordering::Relaxed), hook);
        let key = if shared.coalesce {
            let fp = req.plan_key().problem_fingerprint();
            let identity = Arc::as_ptr(&req.input) as usize;
            let key = (fp, identity);
            let mut tbl = shared.inflight.lock().expect("inflight table poisoned");
            if let Some(followers) = tbl.get_mut(&key) {
                // Single-flight: ride the in-flight leader's execution.
                followers.push(Arc::clone(&ticket));
                return TicketHandle { state: ticket };
            }
            tbl.insert(key, Vec::new());
            Some(key)
        } else {
            None
        };
        let item = WorkItem {
            req,
            ticket: Arc::clone(&ticket),
            key,
        };
        if let Err(item) = shared.submissions.try_push(item) {
            // Saturated: fail fast, inline, without touching the
            // (possibly also full) completion queue. Followers that
            // attached between the table insert and this rejection fail
            // with the same error.
            let orphans = item
                .key
                .and_then(|k| {
                    shared
                        .inflight
                        .lock()
                        .expect("inflight table poisoned")
                        .remove(&k)
                })
                .unwrap_or_default();
            let payload = Arc::new(overload_outcome::<E>(shared.submissions.len()));
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            item.ticket.complete(Arc::clone(&payload));
            for orphan in orphans {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
                orphan.complete(Arc::clone(&payload));
            }
        }
        TicketHandle { state: ticket }
    }

    /// Point-in-time counters.
    pub(crate) fn stats(&self) -> AsyncStatsSnapshot {
        AsyncStatsSnapshot {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            completion_depth: self.shared.completions.len(),
            submit_depth: self.shared.submissions.len(),
        }
    }
}

impl<E: Element> Drop for AsyncExecutor<E> {
    fn drop(&mut self) {
        // Close the submission queue; workers drain what is already
        // queued (failing tickets if the service is gone) and exit.
        self.shared.submissions.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // All producers are gone: close the completion queue so the
        // dispatcher delivers the remainder and exits.
        self.shared.completions.close();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
    }
}

fn overload_outcome<E: Element>(depth: usize) -> AsyncOutcome<E> {
    AsyncOutcome {
        result: Err(ServeError {
            message: format!("async executor overloaded: submission queue full ({depth} queued)"),
        }),
        trace: RequestTrace {
            error: Some("async executor overloaded".into()),
            ..Default::default()
        },
        spans: Vec::new(),
        decision: None,
        coalesced: false,
    }
}

fn shutdown_outcome<E: Element>() -> AsyncOutcome<E> {
    AsyncOutcome {
        result: Err(ServeError {
            message: "service shut down before the request executed".into(),
        }),
        trace: RequestTrace {
            error: Some("service shut down".into()),
            ..Default::default()
        },
        spans: Vec::new(),
        decision: None,
        coalesced: false,
    }
}

fn worker_loop<E: Element>(shared: &AsyncShared<E>, svc: &Weak<TransposeService<E>>) {
    while let Some(item) = shared.submissions.pop_blocking() {
        let svc = match svc.upgrade() {
            Some(svc) => svc,
            None => {
                let followers = take_followers(shared, item.key);
                let payload = Arc::new(shutdown_outcome::<E>());
                for f in followers {
                    let p = Arc::new(AsyncOutcome {
                        result: payload.result.clone(),
                        trace: payload.trace.clone(),
                        spans: payload.spans.clone(),
                        decision: payload.decision.clone(),
                        coalesced: true,
                    });
                    push_completion(shared, f, p);
                }
                push_completion(shared, Arc::clone(&item.ticket), payload);
                continue;
            }
        };
        shared.executed.fetch_add(1, Ordering::Relaxed);
        let leader = svc.run_async_leader(&item.req);
        let payload = Arc::new(leader);
        let followers = take_followers(shared, item.key);
        // Per-follower service accounting (request counters, ring
        // trace marked coalesced, SLO) happens before delivery so
        // metrics and results can never disagree.
        let follower_payloads: Vec<Arc<AsyncOutcome<E>>> = followers
            .iter()
            .map(|_| {
                shared.coalesced.fetch_add(1, Ordering::Relaxed);
                let trace = svc.deliver_coalesced(&item.req, &payload);
                Arc::new(AsyncOutcome {
                    result: payload.result.clone(),
                    trace,
                    spans: payload.spans.clone(),
                    decision: payload.decision.clone(),
                    coalesced: true,
                })
            })
            .collect();
        drop(svc);
        for (ticket, p) in followers.into_iter().zip(follower_payloads) {
            push_completion(shared, ticket, p);
        }
        push_completion(shared, Arc::clone(&item.ticket), payload);
    }
}

fn take_followers<E: Element>(
    shared: &AsyncShared<E>,
    key: Option<CoalesceKey>,
) -> Vec<Arc<TicketState<E>>> {
    key.and_then(|k| {
        shared
            .inflight
            .lock()
            .expect("inflight table poisoned")
            .remove(&k)
    })
    .unwrap_or_default()
}

/// Push one completion record, delivering inline if the completion
/// queue has closed (shutdown race).
fn push_completion<E: Element>(
    shared: &AsyncShared<E>,
    ticket: Arc<TicketState<E>>,
    payload: Arc<AsyncOutcome<E>>,
) {
    let rec = CompletionRecord {
        ticket: Arc::clone(&ticket),
        payload: Arc::clone(&payload),
    };
    if !shared.completions.push_blocking(rec) {
        ticket.complete(payload);
    }
}
