//! # ttlg-runtime
//!
//! A concurrent, multi-tenant transposition execution service layered on
//! the `ttlg` core — the paper's repeated-use scenario (plan once, run
//! many times, Fig. 12) industrialised for many concurrent clients.
//!
//! Five pieces:
//!
//! * **Sharded plan cache** — [`ttlg::ShardedPlanCache`] (re-exported
//!   here): N mutex shards keyed by problem fingerprint, per-shard LRU
//!   eviction, single-flight planning, atomic counters.
//! * **Batched submission** — [`TransposeService::submit_batch`] groups
//!   requests by plan key, plans each distinct problem once, executes
//!   each unique in-flight problem once (duplicates coalesce onto the
//!   shared execution), and runs the batch across a scoped worker pool
//!   with a configurable in-flight bound.
//! * **Async submission** — [`TransposeService::submit_async`] hands the
//!   request to an in-tree completion-queue executor ([`async_exec`]:
//!   bounded MPSC of completion records, parked-thread wakeups, no
//!   external async runtime) and returns a poll/wait [`TicketHandle`]
//!   without ever blocking the caller; identical in-flight problems
//!   single-flight onto one plan *and* one execution.
//! * **Metrics** — per-schema request counters, bytes-moved totals,
//!   plan/execute latency histograms with p50/p95/p99 quantiles, and a
//!   per-schema prediction-accuracy tracker ([`Metrics`]); exported as a
//!   plain-text report, Prometheus text
//!   ([`TransposeService::export_prometheus`]), or JSON
//!   ([`TransposeService::export_json`]).
//! * **Tracing** — every request becomes a [`RequestTrace`] decomposed
//!   into queue-wait / plan-fetch / execute with cache hit-miss
//!   attribution and the executor's DRAM-efficiency and shared-memory
//!   replay rates; the most recent traces are queryable
//!   ([`TransposeService::recent_traces`]) and each is emitted as a span
//!   to an optional [`Subscriber`].
//! * **Measure-mode autotuning** — an optional background worker
//!   ([`TransposeService::start_autotuner`]) re-measures the top-ranked
//!   candidates for hot plan keys under a thread cap, installs the
//!   measured-best plan into the cache, and streams every measurement to
//!   an online model refiner ([`MeasurementSink`]); see [`autotune`].
//! * **Tail attribution** — ring snapshots fold into hierarchical phase
//!   profiles keyed by `(schema, shape-class)`
//!   ([`TransposeService::phase_profiles`]), the slowest requests per
//!   bucket are retained in full with their planner decision traces
//!   ([`TransposeService::exemplars`]), and a latency SLO is tracked
//!   with short/long-window burn rates
//!   ([`TransposeService::slo_snapshot`]).
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ttlg_runtime::{TransposeRequest, TransposeService};
//! use ttlg_tensor::{DenseTensor, Permutation, Shape};
//!
//! let svc: TransposeService<f64> = TransposeService::new_k40c();
//! let input = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[16, 16, 16]).unwrap()));
//! let reqs: Vec<_> = [[2, 1, 0], [1, 0, 2], [2, 1, 0]]
//!     .iter()
//!     .map(|p| TransposeRequest::new(Arc::clone(&input), Permutation::new(p).unwrap()))
//!     .collect();
//! let results = svc.submit_batch(&reqs);
//! assert!(results.iter().all(|r| r.is_ok()));
//! // Three requests, but only two distinct problems were planned.
//! assert_eq!(svc.cache_stats().misses, 2);
//! println!("{}", svc.metrics_report());
//! // Each request left a fully attributed trace, and the same state
//! // exports as Prometheus text or JSON.
//! assert_eq!(svc.recent_traces(10).len(), 3);
//! assert!(svc.export_prometheus().contains("ttlg_requests_total"));
//! // Non-blocking submission: poll or wait on the returned ticket.
//! let svc = Arc::new(svc);
//! let ticket = svc.submit_async(reqs[0].clone());
//! assert!(ticket.wait().result.is_ok());
//! ```

pub mod async_exec;
pub mod autotune;
pub mod metrics;
pub mod service;

pub use async_exec::{AsyncConfig, AsyncOutcome, AsyncStatsSnapshot, CompletionHook, TicketHandle};
pub use autotune::{AutotuneConfig, AutotuneSnapshot, AutotunerHandle};
pub use metrics::{LatencyHistogram, Metrics, RequestPhase, HIST_BUCKETS};
pub use service::{
    HistoryConfig, RuntimeConfig, ServeError, ServeResult, SpannedOutcome, TransposeRequest,
    TransposeResponse, TransposeService,
};
pub use ttlg::{CacheConfig, CacheStats, PlanKey, ShardedPlanCache};
pub use ttlg_obs::{
    eval_range, shape_class, AlertEngine, AlertRule, AlertState, AlertStatus, CollectingSubscriber,
    Exemplar, ExemplarBuckets, ExemplarConfig, ExemplarStore, MetricsSnapshot, NullSubscriber,
    PhaseProfile, PhaseShares, PredictionStats, PredictionTracker, ProfileOptions, QueryError,
    QueryResult, QuerySeries, RequestTrace, SampleReason, SloConfig, SloSnapshot, SloTracker,
    SpanNode, StoredTrace, Subscriber, TimeSeriesStore, TraceContext, TraceRing, TraceStore,
    TraceStoreConfig, TsdbConfig,
};
pub use ttlg_perfmodel::MeasurementSink;
