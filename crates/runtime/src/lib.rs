//! # ttlg-runtime
//!
//! A concurrent, multi-tenant transposition execution service layered on
//! the `ttlg` core — the paper's repeated-use scenario (plan once, run
//! many times, Fig. 12) industrialised for many concurrent clients.
//!
//! Three pieces:
//!
//! * **Sharded plan cache** — [`ttlg::ShardedPlanCache`] (re-exported
//!   here): N mutex shards keyed by problem fingerprint, per-shard LRU
//!   eviction, single-flight planning, atomic counters.
//! * **Batched submission** — [`TransposeService::submit_batch`] groups
//!   requests by plan key, plans each distinct problem once, and
//!   executes the batch across a scoped worker pool with a configurable
//!   in-flight bound.
//! * **Metrics** — per-schema request counters, bytes-moved totals, and
//!   fixed-bucket latency histograms for the plan and execute phases
//!   ([`Metrics`]), exported as a plain-text report.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use ttlg_runtime::{TransposeRequest, TransposeService};
//! use ttlg_tensor::{DenseTensor, Permutation, Shape};
//!
//! let svc: TransposeService<f64> = TransposeService::new_k40c();
//! let input = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[16, 16, 16]).unwrap()));
//! let reqs: Vec<_> = [[2, 1, 0], [1, 0, 2], [2, 1, 0]]
//!     .iter()
//!     .map(|p| TransposeRequest::new(Arc::clone(&input), Permutation::new(p).unwrap()))
//!     .collect();
//! let results = svc.submit_batch(&reqs);
//! assert!(results.iter().all(|r| r.is_ok()));
//! // Three requests, but only two distinct problems were planned.
//! assert_eq!(svc.cache_stats().misses, 2);
//! println!("{}", svc.metrics_report());
//! ```

pub mod metrics;
pub mod service;

pub use metrics::{LatencyHistogram, Metrics};
pub use service::{
    RuntimeConfig, ServeError, ServeResult, TransposeRequest, TransposeResponse, TransposeService,
};
pub use ttlg::{CacheConfig, CacheStats, PlanKey, ShardedPlanCache};
