//! Built-in service metrics: per-schema request counters, bytes-moved
//! totals, fixed-bucket latency histograms for the plan and execute
//! phases, and a per-schema prediction-accuracy tracker. Everything is
//! lock-free (plain atomics), so recording from the worker pool never
//! serializes the hot path.
//!
//! Besides the plain-text report ([`Metrics::render`]), the whole state
//! can be captured as a renderer-neutral [`ttlg_obs::MetricsSnapshot`]
//! ([`Metrics::snapshot`]) for the Prometheus-text and JSON exporters.

use std::sync::atomic::{AtomicU64, Ordering};
use ttlg::{Backend, Schema};
use ttlg_obs::{
    log2_bucket_quantile_us, MetricKind, MetricsSnapshot, PredictionTracker, Sample, RATIO_BUCKETS,
};

/// All schemas, in display order for the report.
const SCHEMAS: [Schema; 6] = [
    Schema::Copy,
    Schema::FviMatchLarge,
    Schema::FviMatchSmall,
    Schema::OrthogonalDistinct,
    Schema::OrthogonalArbitrary,
    Schema::Naive,
];

fn schema_index(s: Schema) -> usize {
    match s {
        Schema::Copy => 0,
        Schema::FviMatchLarge => 1,
        Schema::FviMatchSmall => 2,
        Schema::OrthogonalDistinct => 3,
        Schema::OrthogonalArbitrary => 4,
        Schema::Naive => 5,
    }
}

/// The request phase a latency sample (or failure) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestPhase {
    /// Plan fetch (cache hit or build).
    Plan,
    /// Kernel execution.
    Execute,
}

/// Number of histogram buckets. Bucket `i` holds samples in
/// `[2^i, 2^{i+1})` microseconds, except bucket 0 (`< 2 us`) and the
/// last bucket, which absorbs everything larger.
pub const HIST_BUCKETS: usize = 16;

/// A fixed-bucket log2 latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_for(ns: u64) -> usize {
        let us = ns / 1_000;
        if us == 0 {
            return 0;
        }
        // floor(log2(us)): a sample of `us` microseconds with highest set
        // bit `i` lands in bucket `i` = `[2^i, 2^{i+1})`.
        ((u64::BITS - 1 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Record one sample, in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_for(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Mean sample, nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns() as f64 / n as f64
        }
    }

    /// Per-bucket counts, in bucket order.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimate quantile `q` in microseconds. An empty histogram yields
    /// `f64::NAN` — the explicit "no data" sentinel of
    /// [`log2_bucket_quantile_us`] — never a misleading bucket bound.
    pub fn quantile_us(&self, q: f64) -> f64 {
        log2_bucket_quantile_us(&self.bucket_counts(), q)
    }

    /// Render non-empty buckets as `  [lo, hi) us : count` lines.
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let label = if i == 0 {
                "[0, 2) us".to_string()
            } else if i == HIST_BUCKETS - 1 {
                format!("[{}, inf) us", 1u64 << (HIST_BUCKETS - 1))
            } else {
                format!("[{}, {}) us", 1u64 << i, 1u64 << (i + 1))
            };
            writeln!(out, "    {label:<18} {c:>10}").unwrap();
        }
    }
}

/// Aggregate service metrics. One instance lives in the service; all
/// counters are atomics so workers record concurrently without locks.
#[derive(Debug)]
pub struct Metrics {
    requests_by_schema: [AtomicU64; 6],
    bytes_by_schema: [AtomicU64; 6],
    /// Completed requests by execution backend (index = `Backend::index`).
    requests_by_backend: [AtomicU64; 2],
    /// Execute-phase latency split by backend — GPU-sim nanoseconds are
    /// synthetic and CPU nanoseconds are wall clock, so the combined
    /// `exec_latency` histogram alone would blur two different scales.
    backend_exec_latency: [LatencyHistogram; 2],
    /// Wall-clock latency of the plan-fetch phase (cache hit or build).
    pub plan_latency: LatencyHistogram,
    /// Wall-clock latency of the execute phase.
    pub exec_latency: LatencyHistogram,
    failures: AtomicU64,
    batches: AtomicU64,
    prediction: PredictionTracker,
    /// Foreground predicted/measured pairs streamed to the measurement
    /// sink (autotuner-streamed points are counted separately in
    /// [`crate::autotune::AutotuneStats`]).
    residual_points: AtomicU64,
    /// Requests that shared another identical in-flight request's
    /// execution (single-flight coalescing) instead of running their
    /// own kernel. Counted in `requests_by_schema` too: a coalesced
    /// request is still a served request.
    coalesced_requests: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Metrics {
            requests_by_schema: Default::default(),
            bytes_by_schema: Default::default(),
            requests_by_backend: Default::default(),
            backend_exec_latency: Default::default(),
            plan_latency: LatencyHistogram::new(),
            exec_latency: LatencyHistogram::new(),
            failures: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            prediction: PredictionTracker::new(SCHEMAS.iter().map(|s| s.to_string())),
            residual_points: AtomicU64::new(0),
            coalesced_requests: AtomicU64::new(0),
        }
    }

    /// Record one completed request: its schema and the paper's
    /// bytes-moved metric (`2 * volume * elem_bytes`).
    pub fn record_request(&self, schema: Schema, bytes_moved: u64) {
        let i = schema_index(schema);
        self.requests_by_schema[i].fetch_add(1, Ordering::Relaxed);
        self.bytes_by_schema[i].fetch_add(bytes_moved, Ordering::Relaxed);
    }

    /// Record one completed request's execution backend and its
    /// execute-phase latency on that backend's histogram.
    pub fn record_backend(&self, backend: Backend, exec_ns: u64) {
        let i = backend.index();
        self.requests_by_backend[i].fetch_add(1, Ordering::Relaxed);
        self.backend_exec_latency[i].record_ns(exec_ns);
    }

    /// Completed requests dispatched to one backend.
    pub fn requests_for_backend(&self, backend: Backend) -> u64 {
        self.requests_by_backend[backend.index()].load(Ordering::Relaxed)
    }

    /// The execute-latency histogram of one backend.
    pub fn backend_exec_latency(&self, backend: Backend) -> &LatencyHistogram {
        &self.backend_exec_latency[backend.index()]
    }

    /// Record a failed request. The phase's wall-clock time still counts
    /// toward its latency histogram — failures are not free, and dropping
    /// them would bias the latency figures optimistic.
    pub fn record_failure(&self, phase: RequestPhase, ns: u64) {
        match phase {
            RequestPhase::Plan => self.plan_latency.record_ns(ns),
            RequestPhase::Execute => self.exec_latency.record_ns(ns),
        }
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one processed batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one model-predicted vs simulator-measured kernel time pair.
    pub fn record_prediction(&self, schema: Schema, predicted_ns: f64, measured_ns: f64) {
        self.prediction
            .record(schema_index(schema), predicted_ns, measured_ns);
    }

    /// The per-schema prediction-accuracy tracker.
    pub fn prediction(&self) -> &PredictionTracker {
        &self.prediction
    }

    /// Count one foreground residual (predicted/measured pair) streamed
    /// to the measurement sink for online model refinement.
    pub fn record_residual_point(&self) {
        self.residual_points.fetch_add(1, Ordering::Relaxed);
    }

    /// Foreground residual points streamed to the measurement sink.
    pub fn residual_points(&self) -> u64 {
        self.residual_points.load(Ordering::Relaxed)
    }

    /// Count one request that coalesced onto another identical
    /// in-flight request's execution.
    pub fn record_coalesced(&self) {
        self.coalesced_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests served by sharing an identical in-flight execution.
    pub fn coalesced_requests(&self) -> u64 {
        self.coalesced_requests.load(Ordering::Relaxed)
    }

    /// Total completed requests across all schemas.
    pub fn total_requests(&self) -> u64 {
        self.requests_by_schema
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total bytes moved across all schemas.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_schema
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Failed requests.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Batches processed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Requests recorded for one schema.
    pub fn requests_for(&self, schema: Schema) -> u64 {
        self.requests_by_schema[schema_index(schema)].load(Ordering::Relaxed)
    }

    /// Capture everything as a renderer-neutral snapshot for the
    /// Prometheus-text and JSON exporters.
    pub fn snapshot(&self, cache: &ttlg::CacheStats) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let per_schema = |arr: &[AtomicU64; 6]| -> Vec<Sample> {
            SCHEMAS
                .iter()
                .map(|&sc| {
                    Sample::labelled(
                        "schema",
                        &sc.to_string(),
                        arr[schema_index(sc)].load(Ordering::Relaxed) as f64,
                    )
                })
                .collect()
        };
        snap.push_metric(
            "ttlg_requests_total",
            "Completed requests by schema.",
            MetricKind::Counter,
            per_schema(&self.requests_by_schema),
        );
        snap.push_metric(
            "ttlg_bytes_moved_total",
            "Bytes moved (2 * volume * elem_bytes) by schema.",
            MetricKind::Counter,
            per_schema(&self.bytes_by_schema),
        );
        snap.push_metric(
            "ttlg_backend_requests_total",
            "Completed requests by execution backend.",
            MetricKind::Counter,
            Backend::ALL
                .iter()
                .map(|b| {
                    Sample::labelled(
                        "backend",
                        b.label(),
                        self.requests_by_backend[b.index()].load(Ordering::Relaxed) as f64,
                    )
                })
                .collect(),
        );
        for b in Backend::ALL {
            let hist = &self.backend_exec_latency[b.index()];
            let upper_bounds: Vec<f64> = (1..HIST_BUCKETS).map(|i| (1u64 << i) as f64).collect();
            snap.push_histogram(
                "ttlg_backend_exec_latency_us",
                "Execute-phase latency by backend, microseconds (GPU-sim = modeled device time, cpu = wall clock).",
                vec![("backend".to_string(), b.label().to_string())],
                upper_bounds,
                hist.bucket_counts(),
                hist.total_ns() as f64 / 1e3,
            );
        }
        snap.push_metric(
            "ttlg_failures_total",
            "Failed requests (plan or execute errors).",
            MetricKind::Counter,
            vec![Sample::plain(self.failures() as f64)],
        );
        snap.push_metric(
            "ttlg_batches_total",
            "Batches processed.",
            MetricKind::Counter,
            vec![Sample::plain(self.batches() as f64)],
        );
        let coalesced = self.coalesced_requests();
        let total = self.total_requests();
        snap.push_metric(
            "ttlg_coalesced_requests_total",
            "Requests that shared an identical in-flight request's execution.",
            MetricKind::Counter,
            vec![Sample::plain(coalesced as f64)],
        );
        snap.push_metric(
            "ttlg_coalesced_ratio",
            "Fraction of served requests that coalesced instead of executing.",
            MetricKind::Gauge,
            vec![Sample::plain(if total == 0 {
                0.0
            } else {
                coalesced as f64 / total as f64
            })],
        );
        snap.push_metric(
            "ttlg_plan_cache_hits_total",
            "Plan-cache hits.",
            MetricKind::Counter,
            vec![Sample::plain(cache.hits as f64)],
        );
        snap.push_metric(
            "ttlg_plan_cache_misses_total",
            "Plan-cache misses (plans built).",
            MetricKind::Counter,
            vec![Sample::plain(cache.misses as f64)],
        );
        snap.push_metric(
            "ttlg_plan_cache_evictions_total",
            "Plans evicted from the cache.",
            MetricKind::Counter,
            vec![Sample::plain(cache.evictions as f64)],
        );

        let phases: [(&LatencyHistogram, &str, &str); 2] = [
            (
                &self.plan_latency,
                "ttlg_plan_latency_us",
                "Plan-fetch latency (cache hit or build), microseconds.",
            ),
            (
                &self.exec_latency,
                "ttlg_exec_latency_us",
                "Execute-phase latency, microseconds.",
            ),
        ];
        for (hist, name, help) in phases {
            let counts = hist.bucket_counts();
            snap.push_metric(
                &format!("{name}_quantile"),
                &format!("Estimated latency quantiles for {name}, microseconds."),
                MetricKind::Gauge,
                vec![
                    Sample::labelled("quantile", "0.5", log2_bucket_quantile_us(&counts, 0.5)),
                    Sample::labelled("quantile", "0.95", log2_bucket_quantile_us(&counts, 0.95)),
                    Sample::labelled("quantile", "0.99", log2_bucket_quantile_us(&counts, 0.99)),
                ],
            );
            let upper_bounds: Vec<f64> = (1..HIST_BUCKETS).map(|i| (1u64 << i) as f64).collect();
            snap.push_histogram(
                name,
                help,
                Vec::new(),
                upper_bounds,
                counts,
                hist.total_ns() as f64 / 1e3,
            );
        }

        let mut sample_counts = Vec::new();
        let mut mean_residual = Vec::new();
        let mut mean_abs_residual = Vec::new();
        let mut geo_mean_error = Vec::new();
        for (i, label) in self.prediction.labels().iter().enumerate() {
            let st = self.prediction.stats(i);
            sample_counts.push(Sample::labelled("schema", label, st.count as f64));
            if st.count == 0 {
                continue;
            }
            mean_residual.push(Sample::labelled("schema", label, st.mean_residual_ns));
            mean_abs_residual.push(Sample::labelled("schema", label, st.mean_abs_residual_ns));
            geo_mean_error.push(Sample::labelled("schema", label, st.geo_mean_error));
            snap.push_histogram(
                "ttlg_prediction_ratio",
                "Predicted/measured kernel-time ratio.",
                vec![("schema".to_string(), label.clone())],
                RATIO_BUCKETS.to_vec(),
                self.prediction.ratio_counts(i),
                self.prediction.ratio_sum(i),
            );
        }
        snap.push_metric(
            "ttlg_prediction_samples_total",
            "Prediction-residual samples by schema.",
            MetricKind::Counter,
            sample_counts,
        );
        snap.push_metric(
            "ttlg_residual_points_total",
            "Foreground predicted/measured pairs streamed to the measurement sink.",
            MetricKind::Counter,
            vec![Sample::plain(self.residual_points() as f64)],
        );
        snap.push_metric(
            "ttlg_prediction_mean_residual_ns",
            "Mean signed residual predicted - measured, ns (positive = over-prediction).",
            MetricKind::Gauge,
            mean_residual,
        );
        snap.push_metric(
            "ttlg_prediction_mean_abs_residual_ns",
            "Mean absolute prediction residual, ns.",
            MetricKind::Gauge,
            mean_abs_residual,
        );
        snap.push_metric(
            "ttlg_prediction_geo_mean_error",
            "Geometric mean of max(p/m, m/p) — the paper's Table II metric; 1.0 = perfect.",
            MetricKind::Gauge,
            geo_mean_error,
        );
        snap
    }

    /// Plain-text report: per-schema counters, bytes moved, both latency
    /// histograms with quantiles, and prediction accuracy.
    pub fn render(&self, cache: &ttlg::CacheStats) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "== ttlg-runtime metrics ==").unwrap();
        writeln!(
            s,
            "requests : {} ok, {} failed, {} batches",
            self.total_requests(),
            self.failures(),
            self.batches()
        )
        .unwrap();
        writeln!(
            s,
            "cache    : {} hits, {} misses, {} evictions",
            cache.hits, cache.misses, cache.evictions
        )
        .unwrap();
        let backend_totals: Vec<String> = Backend::ALL
            .iter()
            .map(|b| {
                format!(
                    "{} {}",
                    self.requests_by_backend[b.index()].load(Ordering::Relaxed),
                    b.label()
                )
            })
            .collect();
        writeln!(s, "backends : {}", backend_totals.join(", ")).unwrap();
        writeln!(s, "by schema:").unwrap();
        for schema in SCHEMAS {
            let i = schema_index(schema);
            let n = self.requests_by_schema[i].load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let b = self.bytes_by_schema[i].load(Ordering::Relaxed);
            writeln!(
                s,
                "  {:<24} {:>8} requests  {:>14} bytes moved",
                schema.to_string(),
                n,
                b
            )
            .unwrap();
        }
        for (hist, label) in [(&self.plan_latency, "plan"), (&self.exec_latency, "exec")] {
            writeln!(
                s,
                "{label} latency  (n = {}, mean {:.1} us, p50 {:.1} / p95 {:.1} / p99 {:.1} us):",
                hist.count(),
                hist.mean_ns() / 1e3,
                hist.quantile_us(0.5),
                hist.quantile_us(0.95),
                hist.quantile_us(0.99)
            )
            .unwrap();
            hist.render(&mut s);
        }
        if self.prediction.total_count() > 0 {
            writeln!(s, "prediction accuracy (predicted vs measured):").unwrap();
            s.push_str(&self.prediction.render());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn histogram_buckets_cover_the_line() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(1_999); // < 2 us -> bucket 0
        h.record_ns(2_500); // [2, 4) us -> bucket 1
        h.record_ns(1_000_000); // 1000 us -> bucket 9
        h.record_ns(u64::MAX / 2); // overflow bucket
        assert_eq!(h.count(), 5);
        let mut out = String::new();
        h.render(&mut out);
        assert!(out.contains("[0, 2) us"));
        assert!(out.contains("[2, 4) us"));
        assert!(out.contains("[512, 1024) us"), "{out}");
        assert!(out.contains("inf"));
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        // Bucket i must hold exactly [2^i, 2^{i+1}) us.
        assert_eq!(LatencyHistogram::bucket_for(999), 0); // 0 us
        assert_eq!(LatencyHistogram::bucket_for(1_000), 0); // 1 us
        assert_eq!(LatencyHistogram::bucket_for(2_000), 1); // 2 us
        assert_eq!(LatencyHistogram::bucket_for(3_999), 1); // 3 us
        assert_eq!(LatencyHistogram::bucket_for(4_000), 2); // 4 us
        assert_eq!(LatencyHistogram::bucket_for(1_024_000), 10); // 1024 us
        assert_eq!(LatencyHistogram::bucket_for(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_come_from_the_right_buckets() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(3_000); // [2, 4) us
        }
        for _ in 0..10 {
            h.record_ns(1_500_000); // [1024, 2048) us
        }
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        assert!((2.0..4.0).contains(&p50), "p50 {p50}");
        assert!((1024.0..2048.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn per_schema_counters_accumulate() {
        let m = Metrics::new();
        m.record_request(Schema::Copy, 100);
        m.record_request(Schema::Copy, 100);
        m.record_request(Schema::Naive, 50);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_bytes(), 250);
        assert_eq!(m.requests_for(Schema::Copy), 2);
        let text = m.render(&ttlg::CacheStats::default());
        assert!(text.contains("requests"));
        assert!(text.contains("Copy") || text.contains("copy"));
    }

    #[test]
    fn failures_still_record_latency() {
        let m = Metrics::new();
        m.record_failure(RequestPhase::Plan, 3_000);
        m.record_failure(RequestPhase::Execute, 5_000);
        assert_eq!(m.failures(), 2);
        assert_eq!(m.plan_latency.count(), 1);
        assert_eq!(m.exec_latency.count(), 1);
    }

    #[test]
    fn render_includes_quantiles_and_predictions() {
        let m = Metrics::new();
        m.record_request(Schema::Naive, 64);
        m.plan_latency.record_ns(10_000);
        m.exec_latency.record_ns(20_000);
        m.record_prediction(Schema::Naive, 1_000.0, 900.0);
        let text = m.render(&ttlg::CacheStats::default());
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("prediction accuracy"), "{text}");
        assert!(text.contains("geo-mean error"), "{text}");
    }

    #[test]
    fn snapshot_carries_counters_quantiles_and_residuals() {
        let m = Metrics::new();
        m.record_request(Schema::OrthogonalDistinct, 4096);
        m.plan_latency.record_ns(50_000);
        m.exec_latency.record_ns(70_000);
        m.record_prediction(Schema::OrthogonalDistinct, 2_000.0, 1_800.0);
        let cache = ttlg::CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        let snap = m.snapshot(&cache);
        assert!(!snap.is_empty());
        let by_name = |n: &str| {
            snap.metrics
                .iter()
                .find(|m| m.name == n)
                .unwrap_or_else(|| panic!("missing metric {n}"))
        };
        let req = by_name("ttlg_requests_total");
        assert_eq!(req.samples.len(), 6, "one sample per schema");
        let od = req
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "Orthogonal-Distinct"))
            .unwrap();
        assert_eq!(od.value, 1.0);
        assert_eq!(by_name("ttlg_plan_cache_hits_total").samples[0].value, 3.0);
        assert_eq!(by_name("ttlg_plan_latency_us_quantile").samples.len(), 3);
        let geo = by_name("ttlg_prediction_geo_mean_error");
        assert_eq!(geo.samples.len(), 1, "only schemas with samples");
        assert!(geo.samples[0].value > 1.0);
        // Latency histograms: 15 bounds + overflow = 16 counts, 1 sample.
        let plan_hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "ttlg_plan_latency_us")
            .unwrap();
        assert_eq!(plan_hist.upper_bounds.len(), HIST_BUCKETS - 1);
        assert_eq!(plan_hist.counts.len(), HIST_BUCKETS);
        assert_eq!(plan_hist.count(), 1);
        assert!((plan_hist.sum - 50.0).abs() < 1e-9);
        // Ratio histogram for the one schema with samples.
        let ratio = snap
            .histograms
            .iter()
            .find(|h| h.name == "ttlg_prediction_ratio")
            .unwrap();
        assert_eq!(ratio.count(), 1);
    }

    #[test]
    fn backend_counters_and_histograms_always_export() {
        let m = Metrics::new();
        // Both backend families are present even before any traffic —
        // the metric-name contract tests scrape a cold service.
        let snap = m.snapshot(&ttlg::CacheStats::default());
        let req = snap
            .metrics
            .iter()
            .find(|x| x.name == "ttlg_backend_requests_total")
            .expect("backend counter exported cold");
        assert_eq!(req.samples.len(), 2);
        for s in &req.samples {
            assert_eq!(s.value, 0.0);
        }
        let hists: Vec<_> = snap
            .histograms
            .iter()
            .filter(|h| h.name == "ttlg_backend_exec_latency_us")
            .collect();
        assert_eq!(hists.len(), 2, "one histogram per backend");
        // Traffic lands on the right backend lane.
        m.record_backend(Backend::Cpu, 5_000);
        m.record_backend(Backend::Cpu, 7_000);
        m.record_backend(Backend::GpuSim, 3_000);
        assert_eq!(m.requests_for_backend(Backend::Cpu), 2);
        assert_eq!(m.requests_for_backend(Backend::GpuSim), 1);
        assert_eq!(m.backend_exec_latency(Backend::Cpu).count(), 2);
        let snap = m.snapshot(&ttlg::CacheStats::default());
        let req = snap
            .metrics
            .iter()
            .find(|x| x.name == "ttlg_backend_requests_total")
            .unwrap();
        let cpu = req
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "cpu"))
            .unwrap();
        assert_eq!(cpu.value, 2.0);
        let text = m.render(&ttlg::CacheStats::default());
        assert!(text.contains("backends"), "{text}");
        assert!(text.contains("cpu"), "{text}");
    }

    #[test]
    fn concurrent_hammer_keeps_exact_totals() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1_000;
        let m = Arc::new(Metrics::new());
        std::thread::scope(|scope| {
            for w in 0..THREADS {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let schema = SCHEMAS[(w as usize + i as usize) % SCHEMAS.len()];
                        m.record_request(schema, 10);
                        m.plan_latency.record_ns(1_000 * (i % 64));
                        m.exec_latency.record_ns(2_000 * (i % 64));
                        m.record_prediction(schema, 1_100.0, 1_000.0);
                        if i % 100 == 0 {
                            m.record_failure(RequestPhase::Execute, 5_000);
                        }
                    }
                });
            }
        });
        let total = THREADS * PER_THREAD;
        assert_eq!(m.total_requests(), total);
        assert_eq!(m.total_bytes(), total * 10);
        assert_eq!(m.plan_latency.count(), total);
        // exec histogram also took the failure samples
        assert_eq!(m.failures(), THREADS * (PER_THREAD / 100));
        assert_eq!(m.exec_latency.count(), total + m.failures());
        assert_eq!(
            m.plan_latency.bucket_counts().iter().sum::<u64>(),
            total,
            "bucket counts match sample count"
        );
        assert_eq!(m.prediction().total_count(), total);
        // 8 threads x 1000 over 6 schemas, offsets cycle uniformly:
        // every schema gets at least one sample.
        for schema in SCHEMAS {
            assert!(m.requests_for(schema) > 0);
        }
    }
}
