//! Built-in service metrics: per-schema request counters, bytes-moved
//! totals, and fixed-bucket latency histograms for the plan and execute
//! phases. Everything is lock-free (plain atomics), so recording from
//! the worker pool never serializes the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use ttlg::Schema;

/// All schemas, in display order for the report.
const SCHEMAS: [Schema; 6] = [
    Schema::Copy,
    Schema::FviMatchLarge,
    Schema::FviMatchSmall,
    Schema::OrthogonalDistinct,
    Schema::OrthogonalArbitrary,
    Schema::Naive,
];

fn schema_index(s: Schema) -> usize {
    match s {
        Schema::Copy => 0,
        Schema::FviMatchLarge => 1,
        Schema::FviMatchSmall => 2,
        Schema::OrthogonalDistinct => 3,
        Schema::OrthogonalArbitrary => 4,
        Schema::Naive => 5,
    }
}

/// Number of histogram buckets. Bucket `i` holds samples in
/// `[2^i, 2^{i+1})` microseconds, except bucket 0 (`< 2 us`) and the
/// last bucket, which absorbs everything larger.
pub const HIST_BUCKETS: usize = 16;

/// A fixed-bucket log2 latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_for(ns: u64) -> usize {
        let us = ns / 1_000;
        if us == 0 {
            return 0;
        }
        ((u64::BITS - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Record one sample, in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_for(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample, nanoseconds (0 if empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Render non-empty buckets as `  [lo, hi) us : count` lines.
    pub fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            let label = if i == 0 {
                "[0, 2) us".to_string()
            } else if i == HIST_BUCKETS - 1 {
                format!("[{}, inf) us", 1u64 << (HIST_BUCKETS - 1))
            } else {
                format!("[{}, {}) us", 1u64 << i, 1u64 << (i + 1))
            };
            writeln!(out, "    {label:<18} {c:>10}").unwrap();
        }
    }
}

/// Aggregate service metrics. One instance lives in the service; all
/// counters are atomics so workers record concurrently without locks.
#[derive(Debug, Default)]
pub struct Metrics {
    requests_by_schema: [AtomicU64; 6],
    bytes_by_schema: [AtomicU64; 6],
    /// Wall-clock latency of the plan-fetch phase (cache hit or build).
    pub plan_latency: LatencyHistogram,
    /// Wall-clock latency of the execute phase.
    pub exec_latency: LatencyHistogram,
    failures: AtomicU64,
    batches: AtomicU64,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed request: its schema and the paper's
    /// bytes-moved metric (`2 * volume * elem_bytes`).
    pub fn record_request(&self, schema: Schema, bytes_moved: u64) {
        let i = schema_index(schema);
        self.requests_by_schema[i].fetch_add(1, Ordering::Relaxed);
        self.bytes_by_schema[i].fetch_add(bytes_moved, Ordering::Relaxed);
    }

    /// Record a failed request (plan or execute error).
    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one processed batch.
    pub fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Total completed requests across all schemas.
    pub fn total_requests(&self) -> u64 {
        self.requests_by_schema
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total bytes moved across all schemas.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_schema
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Failed requests.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Requests recorded for one schema.
    pub fn requests_for(&self, schema: Schema) -> u64 {
        self.requests_by_schema[schema_index(schema)].load(Ordering::Relaxed)
    }

    /// Plain-text report: per-schema counters, bytes moved, and both
    /// latency histograms.
    pub fn render(&self, cache: &ttlg::CacheStats) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "== ttlg-runtime metrics ==").unwrap();
        writeln!(
            s,
            "requests : {} ok, {} failed, {} batches",
            self.total_requests(),
            self.failures(),
            self.batches.load(Ordering::Relaxed)
        )
        .unwrap();
        writeln!(
            s,
            "cache    : {} hits, {} misses, {} evictions",
            cache.hits, cache.misses, cache.evictions
        )
        .unwrap();
        writeln!(s, "by schema:").unwrap();
        for schema in SCHEMAS {
            let i = schema_index(schema);
            let n = self.requests_by_schema[i].load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let b = self.bytes_by_schema[i].load(Ordering::Relaxed);
            writeln!(
                s,
                "  {:<24} {:>8} requests  {:>14} bytes moved",
                schema.to_string(),
                n,
                b
            )
            .unwrap();
        }
        writeln!(
            s,
            "plan latency  (n = {}, mean {:.1} us):",
            self.plan_latency.count(),
            self.plan_latency.mean_ns() / 1e3
        )
        .unwrap();
        self.plan_latency.render(&mut s);
        writeln!(
            s,
            "exec latency  (n = {}, mean {:.1} us):",
            self.exec_latency.count(),
            self.exec_latency.mean_ns() / 1e3
        )
        .unwrap();
        self.exec_latency.render(&mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_the_line() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(1_999); // < 2 us -> bucket 0
        h.record_ns(2_500); // [2, 4) us -> bucket 1
        h.record_ns(1_000_000); // 1000 us -> bucket 10
        h.record_ns(u64::MAX / 2); // overflow bucket
        assert_eq!(h.count(), 5);
        let mut out = String::new();
        h.render(&mut out);
        assert!(out.contains("[0, 2) us"));
        assert!(out.contains("[2, 4) us"));
        assert!(out.contains("[1024, 2048) us"));
        assert!(out.contains("inf"));
    }

    #[test]
    fn per_schema_counters_accumulate() {
        let m = Metrics::new();
        m.record_request(Schema::Copy, 100);
        m.record_request(Schema::Copy, 100);
        m.record_request(Schema::Naive, 50);
        assert_eq!(m.total_requests(), 3);
        assert_eq!(m.total_bytes(), 250);
        assert_eq!(m.requests_for(Schema::Copy), 2);
        let text = m.render(&ttlg::CacheStats::default());
        assert!(text.contains("requests"));
        assert!(text.contains("Copy") || text.contains("copy"));
    }
}
