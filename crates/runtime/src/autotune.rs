//! Measure-mode autotuning (the paper's cuTT-style "measure" regime,
//! Sec. VI) as a background activity of the service.
//!
//! The model-driven planner picks a candidate per problem without ever
//! running one — right for the single-use regime. For *hot* problems the
//! service sees again and again, spending a few measured runs is
//! amortised almost immediately. The autotuner closes that loop:
//!
//! 1. the service counts requests per [`ttlg::PlanKey`]; a key crossing
//!    [`AutotuneConfig::hot_threshold`] becomes due for tuning;
//! 2. for each due key the tuner re-plans with
//!    [`ttlg::Transposer::plan_topk`], measures the top candidates with
//!    `measure_candidate` under a [`ttlg_tensor::parallel::with_thread_cap`]
//!    budget (so it never steals cores from foreground batches);
//! 3. the measured-best candidate is rebuilt into a plan whose
//!    `predicted_ns` *is* its measured time and swapped into the shared
//!    cache ([`ttlg::ShardedPlanCache::warm`]) — subsequent requests for
//!    that key run the measured winner;
//! 4. every `(candidate, measured)` pair is streamed to an optional
//!    [`ttlg_perfmodel::MeasurementSink`] (e.g. an
//!    [`ttlg_perfmodel::OnlinePredictor`]), so the measurements also
//!    refine the regression models for *cold* keys.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Autotuner configuration (part of
/// [`crate::RuntimeConfig`]); disabled by default — the kill switch is
/// simply `enabled: false`.
#[derive(Debug, Clone, Copy)]
pub struct AutotuneConfig {
    /// Master switch. When `false` the service neither tracks hot keys
    /// nor measures anything.
    pub enabled: bool,
    /// Requests a plan key must accumulate before it is tuned.
    pub hot_threshold: u64,
    /// Candidates from the ranked sweep to consider per key.
    pub topk: usize,
    /// Maximum measured runs to spend on one key (caps `topk`).
    pub budget_per_key: usize,
    /// Thread cap for the tuner's planning and measurement work, so a
    /// background tuner never oversubscribes against foreground batches.
    pub threads: usize,
    /// Idle poll interval of the background worker.
    pub poll_interval_ms: u64,
    /// Unpin policy: a tuned key that accumulates no new requests for
    /// this many consecutive autotune cycles loses its cache pin (and
    /// its hot-key bookkeeping), so `ttlg_cache_pinned_plans` shrinks
    /// once traffic moves elsewhere. `0` disables unpinning — tuned
    /// plans stay pinned for the life of the process.
    pub unpin_after_idle: u64,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            enabled: false,
            hot_threshold: 3,
            topk: 4,
            budget_per_key: 8,
            threads: 1,
            poll_interval_ms: 2,
            unpin_after_idle: 0,
        }
    }
}

/// Lock-free autotuner counters.
#[derive(Debug, Default)]
pub struct AutotuneStats {
    pub(crate) keys_tuned: AtomicU64,
    pub(crate) candidates_measured: AtomicU64,
    pub(crate) plans_warmed: AtomicU64,
    pub(crate) plans_swapped: AtomicU64,
    pub(crate) plans_unpinned: AtomicU64,
    pub(crate) points_streamed: AtomicU64,
    pub(crate) failures: AtomicU64,
}

impl AutotuneStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> AutotuneSnapshot {
        AutotuneSnapshot {
            keys_tuned: self.keys_tuned.load(Ordering::Relaxed),
            candidates_measured: self.candidates_measured.load(Ordering::Relaxed),
            plans_warmed: self.plans_warmed.load(Ordering::Relaxed),
            plans_swapped: self.plans_swapped.load(Ordering::Relaxed),
            plans_unpinned: self.plans_unpinned.load(Ordering::Relaxed),
            points_streamed: self.points_streamed.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`AutotuneStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutotuneSnapshot {
    /// Hot keys fully tuned.
    pub keys_tuned: u64,
    /// Candidate measurements executed.
    pub candidates_measured: u64,
    /// Measured-best plans installed into the cache.
    pub plans_warmed: u64,
    /// Tunings where the measured winner differed from the modeled one.
    pub plans_swapped: u64,
    /// Tuned plans whose cache pin was released by the idle policy.
    pub plans_unpinned: u64,
    /// Measured points streamed to the model sink.
    pub points_streamed: u64,
    /// Keys whose tuning failed (planning or measurement error).
    pub failures: u64,
}

/// Handle to a background autotuner thread (see
/// [`crate::TransposeService::start_autotuner`]). Dropping the handle
/// stops the worker.
pub struct AutotunerHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl AutotunerHandle {
    pub(crate) fn new(stop: Arc<AtomicBool>, join: JoinHandle<()>) -> Self {
        AutotunerHandle {
            stop,
            join: Some(join),
        }
    }

    /// Signal the worker to stop and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            join.thread().unpark();
            let _ = join.join();
        }
    }
}

impl Drop for AutotunerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker loop body: drain due keys, park briefly when idle.
pub(crate) fn run_worker(stop: &AtomicBool, idle: Duration, mut tick: impl FnMut() -> usize) {
    while !stop.load(Ordering::Acquire) {
        if tick() == 0 {
            std::thread::park_timeout(idle);
        }
    }
}
