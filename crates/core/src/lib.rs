//! # ttlg — Tensor Transposition Library (for simulated GPUs)
//!
//! A from-scratch Rust reproduction of **TTLG** (Vedurada et al., IPDPS
//! 2018): out-of-place tensor index permutation with a taxonomy of four
//! data-movement schemas, model-driven kernel/parameter selection, and a
//! queryable performance-prediction interface.
//!
//! The hardware substrate is the transaction-level GPU model of
//! [`ttlg_gpu_sim`] (see DESIGN.md for the substitution rationale).
//!
//! ## Quick start
//!
//! ```
//! use ttlg::{Transposer, TransposeOptions};
//! use ttlg_tensor::{DenseTensor, Permutation, Shape};
//!
//! let shape = Shape::new(&[16, 16, 16]).unwrap();
//! let perm = Permutation::new(&[2, 1, 0]).unwrap();
//! let input: DenseTensor<f64> = DenseTensor::iota(shape);
//!
//! let transposer = Transposer::new_k40c();
//! let plan = transposer.plan::<f64>(input.shape(), &perm, &TransposeOptions::default()).unwrap();
//! let (output, report) = transposer.execute(&plan, &input).unwrap();
//!
//! assert_eq!(output.shape().extents(), &[16, 16, 16]);
//! assert!(report.kernel_time_ns > 0.0);
//! ```

pub mod analysis;
pub mod backend;
pub mod cache;
pub mod features;
pub mod kernels;
pub mod model;
pub mod plan;
pub mod problem;
pub mod schema;
pub mod slice;
pub mod trace;

pub use backend::Backend;
pub use cache::{CacheConfig, CacheStats, FetchTiming, PlanCache, PlanKey, ShardedPlanCache};
pub use model::{cpu_analytic_ns, AnalyticPredictor, Candidate, TimePredictor};
pub use plan::{
    CandidateMeasurement, Plan, PlanError, RankedCandidate, TransposeOptions, TransposeReport,
    Transposer,
};
pub use problem::Problem;
pub use schema::{applicable_schemas, Schema};
pub use trace::{CandidateTrace, DecisionTrace, RejectReason, SweepRejection};
