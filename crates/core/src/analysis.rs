//! Closed-form data-movement analysis (paper Sec. IV-C, Table I).
//!
//! For each schema, the number of 128-byte load/store transactions per
//! memory type (DRAM, shared memory, texture memory) as a function of the
//! problem geometry. The paper states these for 32-element (float)
//! transactions; the formulas here take the element width so both `f32`
//! (32 elems/tx) and `f64` (16 elems/tx) work. The unit tests cross-check
//! these formulas against the *measured* counts from the simulator — the
//! reproduction of Table I.

use crate::kernels::{OaChoice, OdChoice};
use crate::problem::Problem;
use ttlg_tensor::Element;

/// Elements per 128-byte transaction for an element width.
#[inline]
pub fn elems_per_tx(elem_bytes: usize) -> usize {
    128 / elem_bytes
}

/// Transaction counts per memory type, one direction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemCounts {
    /// DRAM (global memory) transactions.
    pub dram: f64,
    /// Warp-level shared-memory accesses.
    pub smem: f64,
    /// Texture-memory transactions (offset arrays).
    pub tex: f64,
}

/// Table I row: input-side and output-side transaction counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransactionAnalysis {
    /// Loads from the input tensor (plus associated smem stores / texture
    /// reads).
    pub input: MemCounts,
    /// Stores to the output tensor (plus associated smem loads / texture
    /// reads).
    pub output: MemCounts,
}

impl TransactionAnalysis {
    /// Total DRAM transactions (both directions).
    pub fn dram_total(&self) -> f64 {
        self.input.dram + self.output.dram
    }
}

/// C1 of Table I — FVI-Match-Small with blocking factor `b`.
///
/// `C1 = ceil(size(i0) * b / epb) * (prod_{k>=1} size(i_k)) / b`.
pub fn c1_fvi_match_small<E: Element>(p: &Problem, b: usize) -> f64 {
    let epb = elems_per_tx(E::BYTES) as f64;
    let n0 = p.extent(0) as f64;
    let rest: f64 = (1..p.rank()).map(|k| p.extent(k) as f64).product();
    let b = b as f64;
    ((n0 * b) / epb).ceil() * (rest / b)
}

/// Table I row for FVI-Match-Small.
pub fn analyze_fvi_match_small<E: Element>(p: &Problem, b: usize) -> TransactionAnalysis {
    let c1 = c1_fvi_match_small::<E>(p, b);
    TransactionAnalysis {
        input: MemCounts {
            dram: c1,
            smem: c1,
            tex: 0.0,
        },
        output: MemCounts {
            dram: c1,
            smem: c1,
            tex: 0.0,
        },
    }
}

/// C2 of Table I — FVI-Match-Large.
///
/// `C2 = ceil(size(i0) / epb) * prod_{k>=1} size(i_k)`.
pub fn c2_fvi_match_large<E: Element>(p: &Problem) -> f64 {
    let epb = elems_per_tx(E::BYTES) as f64;
    let n0 = p.extent(0) as f64;
    let rest: f64 = (1..p.rank()).map(|k| p.extent(k) as f64).product();
    (n0 / epb).ceil() * rest
}

/// Table I row for FVI-Match-Large.
pub fn analyze_fvi_match_large<E: Element>(p: &Problem) -> TransactionAnalysis {
    let c2 = c2_fvi_match_large::<E>(p);
    TransactionAnalysis {
        input: MemCounts {
            dram: c2,
            smem: 0.0,
            tex: 0.0,
        },
        output: MemCounts {
            dram: c2,
            smem: 0.0,
            tex: 0.0,
        },
    }
}

/// C3 of Table I, input side, for the orthogonal kernels: the combined
/// input-slice length is `A = prefix * block_a`; every A-run of the tensor
/// is loaded in `ceil(A/epb)` transactions and there are `volume / A`
/// runs (stated in the paper per-dims with the blocking factor; identical
/// when extents divide evenly, and the measured tests cover the remainder
/// behaviour separately).
pub fn c3_input<E: Element>(p: &Problem, a_vol: usize) -> f64 {
    let epb = elems_per_tx(E::BYTES) as f64;
    let runs = p.volume() as f64 / a_vol as f64;
    ((a_vol as f64) / epb).ceil() * runs
}

/// C3' of Table I, output side (combined output-slice length `B`).
pub fn c3_output<E: Element>(p: &Problem, b_vol: usize) -> f64 {
    let epb = elems_per_tx(E::BYTES) as f64;
    let runs = p.volume() as f64 / b_vol as f64;
    ((b_vol as f64) / epb).ceil() * runs
}

/// Table I row for Orthogonal-Distinct.
pub fn analyze_orthogonal_distinct<E: Element>(p: &Problem, c: &OdChoice) -> TransactionAnalysis {
    let c3 = c3_input::<E>(p, c.a_vol(p));
    let c3p = c3_output::<E>(p, c.b_vol(p));
    TransactionAnalysis {
        input: MemCounts {
            dram: c3,
            smem: c3,
            tex: c3,
        },
        output: MemCounts {
            dram: c3p,
            smem: c3p,
            tex: c3p,
        },
    }
}

/// Table I row for Orthogonal-Arbitrary (note the doubled texture traffic
/// on the output side: `output_offset` and `sm_out_offset`).
pub fn analyze_orthogonal_arbitrary<E: Element>(p: &Problem, c: &OaChoice) -> TransactionAnalysis {
    let c3 = c3_input::<E>(p, c.ilimit(p));
    // Output side: contiguous runs in the output have length equal to the
    // covered leading-output volume.
    let out_run = output_contiguous_run(p, c);
    let c3p = c3_output::<E>(p, out_run);
    TransactionAnalysis {
        input: MemCounts {
            dram: c3,
            smem: c3,
            tex: c3,
        },
        output: MemCounts {
            dram: c3p,
            smem: c3p,
            tex: 2.0 * c3p,
        },
    }
}

/// Length of the contiguous output runs produced by an OA slice: the
/// volume of the leading output dims fully covered by the slice (with the
/// terminal blocking applied).
pub fn output_contiguous_run(p: &Problem, c: &OaChoice) -> usize {
    let mut run = 1usize;
    for od in 0..c.out_dims {
        let j = p.perm.output_dim_source(od);
        let covered = if od + 1 == c.out_dims && j >= c.in_dims {
            c.block_b.min(p.extent(j))
        } else if j == c.in_dims - 1 {
            c.block_a
        } else {
            p.extent(j)
        };
        run *= covered;
        if covered != p.extent(j) {
            break; // a partially covered dim ends the contiguity
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{
        FviMatchLargeKernel, FviMatchSmallKernel, OrthogonalArbitraryKernel,
        OrthogonalDistinctKernel,
    };
    use ttlg_gpu_sim::{DeviceConfig, Executor};
    use ttlg_tensor::{Permutation, Shape};

    fn prob(extents: &[usize], perm: &[usize]) -> Problem {
        Problem::new(
            &Shape::new(extents).unwrap(),
            &Permutation::new(perm).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn c2_matches_measured_fvi_match_large() {
        // Extents chosen so no fusion and clean division.
        let p = prob(&[64, 5, 7], &[0, 2, 1]);
        let want = c2_fvi_match_large::<f64>(&p);
        let k = FviMatchLargeKernel::<f64>::new(&p);
        let ex = Executor::new(DeviceConfig::k40c());
        let got = ex.analyze(&k).unwrap();
        assert_eq!(got.stats.dram_load_tx as f64, want);
        assert_eq!(got.stats.dram_store_tx as f64, want);
    }

    #[test]
    fn c1_matches_measured_fvi_match_small() {
        // n0 = 8, extents divide by b = 4 exactly.
        let p = prob(&[8, 8, 8, 8], &[0, 3, 2, 1]);
        let k = FviMatchSmallKernel::<f64>::with_b(&p, 4);
        let want = c1_fvi_match_small::<f64>(&p, 4);
        let ex = Executor::new(DeviceConfig::k40c());
        let got = ex.analyze(&k).unwrap();
        assert_eq!(got.stats.dram_load_tx as f64, want, "C1 load");
        assert_eq!(got.stats.dram_store_tx as f64, want, "C1 store");
        // Shared-memory accesses follow the same C1 structure but at warp
        // (32-element) granularity rather than 128-byte transactions.
        let warp_accesses = ((8.0 * 4.0) / 32.0_f64).ceil() * (512.0 / 4.0);
        assert_eq!(got.stats.smem_store_acc as f64, warp_accesses);
        assert_eq!(got.stats.smem_load_acc as f64, warp_accesses);
    }

    #[test]
    fn c3_matches_measured_orthogonal_distinct() {
        // [16,2,32,32] => reversal: A = 32 (a,b), B = 32 (d); extents
        // divide evenly so the closed form is exact.
        let p = prob(&[16, 2, 32, 32], &[3, 2, 1, 0]);
        let c = OdChoice::default_for(&p).unwrap();
        assert_eq!((c.a_vol(&p), c.b_vol(&p)), (32, 32));
        let a = analyze_orthogonal_distinct::<f64>(&p, &c);
        let k = OrthogonalDistinctKernel::<f64>::new(&p, c);
        let ex = Executor::new(DeviceConfig::k40c());
        let got = ex.analyze(&k).unwrap();
        assert_eq!(got.stats.dram_load_tx as f64, a.input.dram);
        assert_eq!(got.stats.dram_store_tx as f64, a.output.dram);
    }

    #[test]
    fn c3_matches_measured_orthogonal_arbitrary() {
        // [8,2,8,8] => [c,b,d,a] with the full paper combining: clean
        // division everywhere.
        let p = prob(&[8, 2, 8, 8], &[2, 1, 3, 0]);
        let c = OaChoice {
            in_dims: 3,
            block_a: 8,
            out_dims: 3,
            block_b: 8,
        };
        let a = analyze_orthogonal_arbitrary::<f64>(&p, &c);
        let k = OrthogonalArbitraryKernel::<f64>::new(&p, c, 48 * 1024);
        let ex = Executor::new(DeviceConfig::k40c());
        let got = ex.analyze(&k).unwrap();
        assert_eq!(got.stats.dram_load_tx as f64, a.input.dram);
        assert_eq!(got.stats.dram_store_tx as f64, a.output.dram);
    }

    #[test]
    fn output_run_detection() {
        let p = prob(&[8, 2, 8, 8], &[2, 1, 3, 0]);
        let c = OaChoice {
            in_dims: 3,
            block_a: 8,
            out_dims: 3,
            block_b: 8,
        };
        // output dims c(8), b(2), d(8) all fully covered -> run 128.
        assert_eq!(output_contiguous_run(&p, &c), 128);
        let c2 = OaChoice {
            in_dims: 3,
            block_a: 8,
            out_dims: 3,
            block_b: 4,
        };
        // d only half covered -> run still contiguous across the block: 64.
        assert_eq!(output_contiguous_run(&p, &c2), 64);
    }

    #[test]
    fn float_vs_double_transaction_ratio() {
        let p = prob(&[64, 8, 8], &[0, 2, 1]);
        // floats pack twice as many elements per transaction.
        assert_eq!(
            c2_fvi_match_large::<f64>(&p),
            2.0 * c2_fvi_match_large::<f32>(&p)
        );
    }

    #[test]
    fn analysis_totals() {
        let p = prob(&[16, 2, 32, 32], &[3, 2, 1, 0]);
        let c = OdChoice::default_for(&p).unwrap();
        let a = analyze_orthogonal_distinct::<f64>(&p, &c);
        assert!(a.dram_total() > 0.0);
        assert_eq!(a.input.smem, a.input.dram);
        assert_eq!(a.output.tex, a.output.dram);
    }
}
