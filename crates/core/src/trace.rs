//! Planner decision traces — observability for Alg. 1 + Alg. 3.
//!
//! [`crate::Transposer::plan_traced`] records everything the planner
//! considered for one problem: the admissible schemas from the taxonomy
//! dispatch, every candidate the slice sweep produced (with its slice
//! sizes and both the configured predictor's and the analytic model's
//! time estimates), the configurations the sweep *rejected* and why, the
//! analytic-guard band, and the final choice. The trace is plain data —
//! higher layers (the CLI's `ttlg explain`, the runtime's subscribers)
//! render or export it however they like; [`DecisionTrace::render`] is
//! the human-readable default.

use crate::features::KernelChoice;
use crate::kernels::{OaChoice, OdChoice};
use crate::schema::Schema;

/// Why Alg. 3's sweep discarded a generated slice configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The configuration violates the schema's validity constraints
    /// (dims out of range, blocking beyond the extent, overlap rules).
    Invalid,
    /// The slice does not fit in shared memory (Orthogonal-Arbitrary).
    SmemOverflow,
    /// The occupancy/overbooking bound rejects the slice: too few
    /// resident warps or too few grid blocks (Alg. 3's bound).
    Occupancy,
    /// The same configuration was already enumerated by an earlier
    /// limit step.
    Duplicate,
}

impl RejectReason {
    /// Stable lowercase label (used by exporters).
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::Invalid => "invalid",
            RejectReason::SmemOverflow => "smem-overflow",
            RejectReason::Occupancy => "occupancy",
            RejectReason::Duplicate => "duplicate",
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::Invalid => "violates slice validity constraints",
            RejectReason::SmemOverflow => "slice exceeds shared memory",
            RejectReason::Occupancy => "fails the occupancy/overbooking bound",
            RejectReason::Duplicate => "duplicate of an earlier configuration",
        })
    }
}

/// One configuration Alg. 3 generated and then discarded.
#[derive(Debug, Clone)]
pub struct SweepRejection {
    /// Schema whose sweep produced the configuration.
    pub schema: Schema,
    /// Compact parameter description (same format as candidate params).
    pub params: String,
    /// Why it was discarded.
    pub reason: RejectReason,
}

/// One candidate the model ranked, with both predictions and the
/// guard/choice outcome.
#[derive(Debug, Clone)]
pub struct CandidateTrace {
    /// Schema of the candidate.
    pub schema: Schema,
    /// Compact parameter description ([`choice_params`]).
    pub params: String,
    /// Combined input-slice length (A / ilimit / b*N0; 0 if n/a).
    pub input_slice: usize,
    /// Combined output-slice length (B / olimit; 0 if n/a).
    pub output_slice: usize,
    /// Whole-slice volume (OA; A*B for OD).
    pub total_slice: usize,
    /// Grid size the candidate implies.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory per block, bytes.
    pub smem_bytes: usize,
    /// Configured predictor's time estimate, ns (the ranking key).
    pub predicted_ns: f64,
    /// Closed-form analytic estimate, ns (the guard's key).
    pub analytic_ns: f64,
    /// Whether the analytic guard excluded this candidate from ranking
    /// (`analytic_ns > guard_factor * analytic_best_ns`).
    pub guard_rejected: bool,
    /// Whether this candidate won.
    pub chosen: bool,
}

/// A full record of one planning decision.
#[derive(Debug, Clone, Default)]
pub struct DecisionTrace {
    /// Original (pre-fusion) extents.
    pub extents: Vec<usize>,
    /// Original permutation.
    pub perm: Vec<usize>,
    /// Extents after index fusion.
    pub fused_extents: Vec<usize>,
    /// Permutation after index fusion.
    pub fused_perm: Vec<usize>,
    /// Schemas the taxonomy admitted (preferred first), or the forced
    /// schema.
    pub admissible: Vec<Schema>,
    /// Every candidate the model ranked, in enumeration order.
    pub candidates: Vec<CandidateTrace>,
    /// Configurations the sweep generated and discarded.
    pub rejections: Vec<SweepRejection>,
    /// Best analytic estimate across all candidates, ns.
    pub analytic_best_ns: f64,
    /// The analytic-guard factor applied during ranking.
    pub guard_factor: f64,
    /// Index into `candidates` of the winner.
    pub chosen: Option<usize>,
    /// Modeled plan-construction overhead, ns.
    pub plan_time_ns: f64,
}

/// How many rejections [`DecisionTrace::render`] prints before eliding.
const RENDER_MAX_REJECTIONS: usize = 24;

impl DecisionTrace {
    /// The winning candidate, if planning succeeded.
    pub fn chosen_candidate(&self) -> Option<&CandidateTrace> {
        self.chosen.and_then(|i| self.candidates.get(i))
    }

    /// Admissible schemas that contributed no candidate at all (their
    /// applicability pre-checks failed, or every configuration was
    /// rejected by the sweep).
    pub fn schemas_without_candidates(&self) -> Vec<Schema> {
        self.admissible
            .iter()
            .copied()
            .filter(|s| !self.candidates.iter().any(|c| c.schema == *s))
            .collect()
    }

    /// Human-readable report — what `ttlg explain` prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let dims = |d: &[usize]| {
            d.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("x")
        };
        let perm = |p: &[usize]| {
            format!(
                "[{}]",
                p.iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let mut s = String::new();
        writeln!(
            s,
            "== decision trace: {} perm {} ==",
            dims(&self.extents),
            perm(&self.perm)
        )
        .unwrap();
        writeln!(
            s,
            "fused problem : {} perm {} (rank {})",
            dims(&self.fused_extents),
            perm(&self.fused_perm),
            self.fused_extents.len()
        )
        .unwrap();
        writeln!(
            s,
            "admissible    : {}",
            self.admissible
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
        .unwrap();
        writeln!(
            s,
            "analytic guard: best {:.2} us, factor {:.2}",
            self.analytic_best_ns / 1e3,
            self.guard_factor
        )
        .unwrap();
        writeln!(
            s,
            "candidates ({} ranked, fastest predicted first):",
            self.candidates.len()
        )
        .unwrap();
        let mut order: Vec<usize> = (0..self.candidates.len()).collect();
        order.sort_by(|&i, &j| {
            self.candidates[i]
                .predicted_ns
                .partial_cmp(&self.candidates[j].predicted_ns)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &i in &order {
            let c = &self.candidates[i];
            let mark = if c.chosen { '*' } else { ' ' };
            let desc = format!("{} {}", c.schema, c.params);
            let slices = format!(
                "slice in={} out={} total={}",
                c.input_slice, c.output_slice, c.total_slice
            );
            let note = if c.guard_rejected { "  [guard]" } else { "" };
            writeln!(
                s,
                " {mark} {desc:<44} {slices:<36} pred {:>9.2} us  analytic {:>9.2} us{note}",
                c.predicted_ns / 1e3,
                c.analytic_ns / 1e3
            )
            .unwrap();
        }
        if !self.rejections.is_empty() {
            writeln!(s, "sweep rejections ({}):", self.rejections.len()).unwrap();
            for r in self.rejections.iter().take(RENDER_MAX_REJECTIONS) {
                writeln!(s, "    {} {}: {}", r.schema, r.params, r.reason).unwrap();
            }
            if self.rejections.len() > RENDER_MAX_REJECTIONS {
                writeln!(
                    s,
                    "    ... and {} more",
                    self.rejections.len() - RENDER_MAX_REJECTIONS
                )
                .unwrap();
            }
        }
        let missing = self.schemas_without_candidates();
        if !missing.is_empty() {
            writeln!(
                s,
                "no candidates from: {}",
                missing
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
            .unwrap();
        }
        if let Some(c) = self.chosen_candidate() {
            writeln!(
                s,
                "chosen: {} {} (predicted {:.2} us)",
                c.schema,
                c.params,
                c.predicted_ns / 1e3
            )
            .unwrap();
        }
        writeln!(s, "plan overhead: {:.2} us", self.plan_time_ns / 1e3).unwrap();
        s
    }
}

/// Compact parameter string for an Orthogonal-Distinct choice.
pub fn od_params(c: &OdChoice) -> String {
    format!(
        "in={} a={} out={} b={}",
        c.in_dims, c.block_a, c.out_dims, c.block_b
    )
}

/// Compact parameter string for an Orthogonal-Arbitrary choice.
pub fn oa_params(c: &OaChoice) -> String {
    format!(
        "in={} a={} out={} b={}",
        c.in_dims, c.block_a, c.out_dims, c.block_b
    )
}

/// Compact parameter string for any kernel choice.
pub fn choice_params(choice: &KernelChoice) -> String {
    match choice {
        KernelChoice::Copy => "copy".to_string(),
        KernelChoice::FviMatchLarge => "fvi-large".to_string(),
        KernelChoice::FviMatchSmall { b } => format!("fvi-small b={b}"),
        KernelChoice::OrthogonalDistinct(c) => format!("od {}", od_params(c)),
        KernelChoice::OrthogonalArbitrary(c) => format!("oa {}", oa_params(c)),
        KernelChoice::Naive => "naive".to_string(),
        KernelChoice::CpuTiled { tile, threads, .. } => {
            format!("cpu-tiled tile={tile} threads={threads}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> DecisionTrace {
        DecisionTrace {
            extents: vec![27, 27, 27],
            perm: vec![2, 1, 0],
            fused_extents: vec![27, 27, 27],
            fused_perm: vec![2, 1, 0],
            admissible: vec![Schema::OrthogonalDistinct, Schema::OrthogonalArbitrary],
            candidates: vec![
                CandidateTrace {
                    schema: Schema::OrthogonalDistinct,
                    params: "od in=1 a=27 out=1 b=27".to_string(),
                    input_slice: 27,
                    output_slice: 27,
                    total_slice: 729,
                    grid_blocks: 729,
                    threads_per_block: 256,
                    smem_bytes: 8448,
                    predicted_ns: 42_000.0,
                    analytic_ns: 40_000.0,
                    guard_rejected: false,
                    chosen: true,
                },
                CandidateTrace {
                    schema: Schema::OrthogonalArbitrary,
                    params: "oa in=1 a=27 out=1 b=27".to_string(),
                    input_slice: 27,
                    output_slice: 27,
                    total_slice: 729,
                    grid_blocks: 729,
                    threads_per_block: 256,
                    smem_bytes: 5832,
                    predicted_ns: 60_000.0,
                    analytic_ns: 80_000.0,
                    guard_rejected: true,
                    chosen: false,
                },
            ],
            rejections: vec![SweepRejection {
                schema: Schema::OrthogonalArbitrary,
                params: "in=2 a=27 out=2 b=27".to_string(),
                reason: RejectReason::Occupancy,
            }],
            analytic_best_ns: 40_000.0,
            guard_factor: 1.25,
            chosen: Some(0),
            plan_time_ns: 90_000.0,
        }
    }

    #[test]
    fn render_lists_candidates_rejections_and_choice() {
        let t = sample_trace();
        let text = t.render();
        assert!(text.contains("== decision trace: 27x27x27 perm [2,1,0] =="));
        assert!(text.contains("admissible    : Orthogonal-Distinct, Orthogonal-Arbitrary"));
        assert!(text.contains("candidates (2 ranked"));
        assert!(text.contains("slice in=27 out=27 total=729"));
        assert!(text.contains("[guard]"));
        assert!(text.contains("sweep rejections (1):"));
        assert!(text.contains("fails the occupancy/overbooking bound"));
        assert!(text.contains("chosen: Orthogonal-Distinct od in=1 a=27 out=1 b=27"));
        // The chosen candidate is starred.
        let starred: Vec<&str> = text.lines().filter(|l| l.starts_with(" * ")).collect();
        assert_eq!(starred.len(), 1);
        assert!(starred[0].contains("Orthogonal-Distinct"));
    }

    #[test]
    fn chosen_candidate_and_missing_schemas() {
        let mut t = sample_trace();
        assert_eq!(
            t.chosen_candidate().unwrap().schema,
            Schema::OrthogonalDistinct
        );
        assert!(t.schemas_without_candidates().is_empty());
        t.admissible.push(Schema::FviMatchSmall);
        assert_eq!(t.schemas_without_candidates(), vec![Schema::FviMatchSmall]);
    }

    #[test]
    fn rejection_render_is_capped() {
        let mut t = sample_trace();
        t.rejections = (0..40)
            .map(|i| SweepRejection {
                schema: Schema::OrthogonalDistinct,
                params: format!("in=1 a={i} out=1 b=1"),
                reason: RejectReason::Duplicate,
            })
            .collect();
        let text = t.render();
        assert!(text.contains("sweep rejections (40):"));
        assert!(text.contains("... and 16 more"));
    }

    #[test]
    fn choice_params_formats() {
        assert_eq!(choice_params(&KernelChoice::Copy), "copy");
        assert_eq!(choice_params(&KernelChoice::Naive), "naive");
        assert_eq!(
            choice_params(&KernelChoice::FviMatchSmall { b: 4 }),
            "fvi-small b=4"
        );
        assert_eq!(
            choice_params(&KernelChoice::OrthogonalDistinct(OdChoice {
                in_dims: 2,
                block_a: 7,
                out_dims: 1,
                block_b: 27,
            })),
            "od in=2 a=7 out=1 b=27"
        );
    }

    #[test]
    fn reject_reason_labels_are_stable() {
        assert_eq!(RejectReason::Invalid.as_str(), "invalid");
        assert_eq!(RejectReason::SmemOverflow.as_str(), "smem-overflow");
        assert_eq!(RejectReason::Occupancy.as_str(), "occupancy");
        assert_eq!(RejectReason::Duplicate.as_str(), "duplicate");
    }
}
