//! Execution backends the planner can target.
//!
//! The original library drives everything through the simulated GPU
//! ([`ttlg_gpu_sim`]); the CPU backend (`ttlg-cpu`) moves host bytes for
//! real and is timed by the wall clock. The planner treats the backend
//! as one more dimension of the Alg. 3 sweep: candidates from every
//! admissible backend are ranked together, with the analytic guard
//! applied *within* each backend (a synthetic-GPU nanosecond and a
//! wall-clock nanosecond are not comparable enough to share one guard
//! band).

/// Which executor a plan runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// The transaction-level K40c simulator (synthetic time).
    GpuSim,
    /// Blocked, cache-tiled host loops (real wall-clock time).
    Cpu,
}

impl Backend {
    /// Every backend, in metrics/index order.
    pub const ALL: [Backend; 2] = [Backend::GpuSim, Backend::Cpu];

    /// Stable label for metrics and artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::GpuSim => "gpu_sim",
            Backend::Cpu => "cpu",
        }
    }

    /// Dense index into per-backend metric arrays (matches [`Self::ALL`]).
    pub fn index(&self) -> usize {
        match self {
            Backend::GpuSim => 0,
            Backend::Cpu => 1,
        }
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: usize) -> Option<Backend> {
        Backend::ALL.get(i).copied()
    }

    /// Parse a [`Self::label`] string.
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::ALL.iter().find(|b| b.label() == s).copied()
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.label()), Some(b));
            assert_eq!(Backend::from_index(b.index()), Some(b));
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(Backend::parse("tpu"), None);
        assert_eq!(Backend::from_index(99), None);
    }
}
