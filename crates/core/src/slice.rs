//! Slice-size candidate enumeration (paper Alg. 3).
//!
//! For a given schema the planner enumerates admissible slice/blocking
//! configurations — bounded so that the grid keeps enough thread blocks to
//! occupy the machine (the `overbooking_factor`) — and ranks them with the
//! performance model. This module produces the candidate lists; the
//! predictor choice lives in [`crate::model`].

use crate::features::{
    self, fml_candidate, fms_candidate, naive_candidate, oa_candidate, od_candidate, Candidate,
};
use crate::kernels::{FviMatchSmallKernel, OaChoice, OdChoice};
use crate::problem::Problem;
use crate::schema::Schema;
use crate::trace::{oa_params, od_params, RejectReason, SweepRejection};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_tensor::{Element, WARP_SIZE};

/// Default overbooking factor (empirical in the paper).
pub const DEFAULT_OVERBOOKING: usize = 4;

/// Hard cap on candidates per schema, to bound plan time.
const MAX_CANDIDATES: usize = 96;

/// The input-side cut implied by a combined-length target: the smallest
/// leading dim set whose full prefix reaches `limit`, with the terminal
/// blocking factor that makes the combined length the least value `>=
/// limit` (Alg. 3 lines 8-12). Returns `(in_dims, block_a)`; `None` when
/// even the whole tensor is shorter than `limit`.
fn input_cut(p: &Problem, limit: usize) -> Option<(usize, usize)> {
    let mut prod = 1usize;
    for k in 0..p.rank() {
        let next = prod * p.extent(k);
        if next >= limit {
            let block_a = limit.div_ceil(prod).min(p.extent(k));
            return Some((k + 1, block_a));
        }
        prod = next;
    }
    None
}

/// Output-side cut: same walk over *output* dims, truncating before any
/// dim already inside the input slice (the Fig. 5 behaviour). Returns
/// `(out_dims, block_b, truncated)`.
fn output_cut(p: &Problem, limit: usize, in_dims: usize) -> Option<(usize, usize, bool)> {
    let mut prod = 1usize;
    for k in 0..p.rank() {
        let j = p.perm.output_dim_source(k);
        if j < in_dims {
            // Would overlap the input slice: truncate here.
            if k == 0 {
                return None;
            }
            return Some((k, p.extent(p.perm.output_dim_source(k - 1)), true));
        }
        let next = prod * p.extent(j);
        if next >= limit {
            let block_b = limit.div_ceil(prod).min(p.extent(j));
            return Some((k + 1, block_b, false));
        }
        prod = next;
    }
    None
}

/// Alg. 3: enumerate Orthogonal-Distinct slice choices for a problem.
///
/// Sweeps the input-side and output-side combined-length limits in steps
/// of the warp size up to the overbooking bound, deduplicating the
/// resulting `(dims, blocking)` configurations.
pub fn od_candidates<E: Element>(
    p: &Problem,
    device: &DeviceConfig,
    overbooking: usize,
) -> Vec<OdChoice> {
    od_candidates_logged::<E>(p, device, overbooking, None)
}

/// [`od_candidates`] with an optional rejection log: every configuration
/// the sweep generates and discards is recorded with its reason.
pub fn od_candidates_logged<E: Element>(
    p: &Problem,
    device: &DeviceConfig,
    overbooking: usize,
    mut log: Option<&mut Vec<SweepRejection>>,
) -> Vec<OdChoice> {
    let ws = WARP_SIZE;
    let smem_per_block = ws * (ws + 1) * E::BYTES;
    let min_blocks = device.max_resident_blocks(256, smem_per_block).max(1);
    let maxlimit = (p.volume() / (overbooking.max(1) * min_blocks)).max(ws);

    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    fn push(
        p: &Problem,
        out: &mut Vec<OdChoice>,
        seen: &mut std::collections::HashSet<(usize, usize, usize, usize)>,
        log: Option<&mut Vec<SweepRejection>>,
        c: OdChoice,
    ) {
        let reject = |log: Option<&mut Vec<SweepRejection>>, reason: RejectReason| {
            if let Some(l) = log {
                l.push(SweepRejection {
                    schema: Schema::OrthogonalDistinct,
                    params: od_params(&c),
                    reason,
                });
            }
        };
        if !c.is_valid(p) {
            reject(log, RejectReason::Invalid);
            return;
        }
        if !seen.insert((c.in_dims, c.block_a, c.out_dims, c.block_b)) {
            reject(log, RejectReason::Duplicate);
            return;
        }
        out.push(c);
    }

    // Always include the flow-chart default.
    if let Some(c) = OdChoice::default_for(p) {
        push(p, &mut out, &mut seen, log.as_deref_mut(), c);
    }

    let mut limit_ir = ws;
    while limit_ir <= maxlimit && out.len() < MAX_CANDIDATES {
        if let Some((in_dims, block_a)) = input_cut(p, limit_ir) {
            // The output FVI source must stay outside the input slice.
            let in_dims_eff = {
                let j0 = p.perm.output_dim_source(0);
                if j0 < in_dims {
                    j0
                } else {
                    in_dims
                }
            };
            if in_dims_eff >= 1 {
                let (in_dims, block_a) = if in_dims_eff == in_dims {
                    (in_dims, block_a)
                } else {
                    (in_dims_eff, p.extent(in_dims_eff - 1))
                };
                // Probe the cut blocking and its +1 neighbour: slice
                // lengths like the paper's 189 = 27*7 fall between two
                // 32-step limits and are only reachable this way.
                let a_ext = p.extent(in_dims - 1);
                let mut blocks_a = vec![block_a, (block_a + 1).min(a_ext)];
                blocks_a.dedup();
                for &block_a in &blocks_a {
                    let mut limit_or = ws;
                    let or_cap = (maxlimit / limit_ir).max(ws);
                    while limit_or <= or_cap && out.len() < MAX_CANDIDATES {
                        if let Some((out_dims, block_b, truncated)) =
                            output_cut(p, limit_or, in_dims)
                        {
                            let b_ext = p.extent(p.perm.output_dim_source(out_dims - 1));
                            let mut blocks_b = vec![block_b, (block_b + 1).min(b_ext)];
                            blocks_b.dedup();
                            for &block_b in &blocks_b {
                                push(
                                    p,
                                    &mut out,
                                    &mut seen,
                                    log.as_deref_mut(),
                                    OdChoice {
                                        in_dims,
                                        block_a,
                                        out_dims,
                                        block_b,
                                    },
                                );
                            }
                            if truncated {
                                break; // larger limits truncate identically
                            }
                        } else {
                            break;
                        }
                        limit_or += ws;
                    }
                }
            }
        } else {
            break;
        }
        limit_ir += ws;
    }
    out
}

/// Whether an OA choice leaves the device enough thread blocks for good
/// occupancy — Alg. 3's overbooking bound applied to the
/// Orthogonal-Arbitrary kernel (whose shared-memory footprint *is* the
/// slice, so oversized slices crater residency).
pub fn oa_occupancy_ok<E: Element>(
    p: &Problem,
    c: &OaChoice,
    device: &DeviceConfig,
    overbooking: usize,
) -> bool {
    let slice_vol = c.slice_vol(p);
    if slice_vol == 0 {
        return false;
    }
    // Tiny problems cannot occupy the machine whatever the slice; let
    // them through (launch overhead dominates anyway).
    if p.volume() <= 4 * slice_vol {
        return true;
    }
    let threads = crate::kernels::common::pick_threads(slice_vol, 256);
    let resident = device.max_resident_blocks(threads, slice_vol * E::BYTES);
    // The slice *is* the kernel's shared-memory footprint: keep enough
    // warps resident to stay near DRAM saturation...
    let resident_warps = (resident * threads.div_ceil(32)) as f64;
    let warps_ok = resident_warps >= 0.75 * device.warps_to_saturate;
    // ...and enough blocks in the grid to overbook the SMs (Alg. 3).
    let blocks_ok = p.volume() / slice_vol >= overbooking.max(1) * device.num_sms;
    warps_ok && blocks_ok
}

/// Enumerate Orthogonal-Arbitrary slice choices: a bounded set of
/// `(in_dims, block_a, out_dims, block_b)` combinations that fit shared
/// memory and keep enough blocks in flight (the overbooking bound).
pub fn oa_candidates<E: Element>(
    p: &Problem,
    device: &DeviceConfig,
    overbooking: usize,
) -> Vec<OaChoice> {
    oa_candidates_logged::<E>(p, device, overbooking, None)
}

/// [`oa_candidates`] with an optional rejection log: every configuration
/// the sweep generates and discards is recorded with its reason
/// (validity, shared-memory fit, occupancy bound, duplicate — in that
/// check order).
pub fn oa_candidates_logged<E: Element>(
    p: &Problem,
    device: &DeviceConfig,
    overbooking: usize,
    mut log: Option<&mut Vec<SweepRejection>>,
) -> Vec<OaChoice> {
    let ws = WARP_SIZE;
    let smem_limit = device.smem_per_sm;
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    fn push<E2: Element>(
        p: &Problem,
        device: &DeviceConfig,
        overbooking: usize,
        out: &mut Vec<OaChoice>,
        seen: &mut std::collections::HashSet<(usize, usize, usize, usize)>,
        log: Option<&mut Vec<SweepRejection>>,
        c: OaChoice,
    ) {
        let reject = |log: Option<&mut Vec<SweepRejection>>, reason: RejectReason| {
            if let Some(l) = log {
                l.push(SweepRejection {
                    schema: Schema::OrthogonalArbitrary,
                    params: oa_params(&c),
                    reason,
                });
            }
        };
        if !c.is_valid(p) {
            reject(log, RejectReason::Invalid);
            return;
        }
        if !c.fits_smem(p, E2::BYTES, device.smem_per_sm) {
            reject(log, RejectReason::SmemOverflow);
            return;
        }
        if !oa_occupancy_ok::<E2>(p, &c, device, overbooking) {
            reject(log, RejectReason::Occupancy);
            return;
        }
        if !seen.insert((c.in_dims, c.block_a, c.out_dims, c.block_b)) {
            reject(log, RejectReason::Duplicate);
            return;
        }
        out.push(c);
    }
    if let Some(c) = OaChoice::default_for::<E>(p, smem_limit) {
        push::<E>(
            p,
            device,
            overbooking,
            &mut out,
            &mut seen,
            log.as_deref_mut(),
            c,
        );
    }
    // Minimal in_dims reaching the warp size.
    let min_in = input_cut(p, ws).map(|(d, _)| d).unwrap_or(p.rank());
    for in_dims in min_in..=(min_in + 1).min(p.rank()) {
        let xa = in_dims - 1;
        let prefix = p.shape.prefix_volume(xa);
        let ext = p.extent(xa);
        // block_a variants: least reaching WS, double it, or the full dim.
        let base_block = ws.div_ceil(prefix).min(ext).max(1);
        let mut blocks_a = vec![base_block, (2 * base_block).min(ext), ext];
        blocks_a.dedup();
        for &block_a in &blocks_a {
            // Output dims: smallest covering >= ws, plus one wider.
            for extra in 0..2usize {
                let mut ovol = 1usize;
                let mut out_dims = 0usize;
                let mut ok = true;
                while (ovol < ws || out_dims == 0) && out_dims < p.rank() {
                    let j = p.perm.output_dim_source(out_dims);
                    out_dims += 1;
                    if j == xa && block_a != ext {
                        ok = false;
                        break;
                    }
                    ovol *= p.extent(j);
                }
                if !ok {
                    continue;
                }
                out_dims = (out_dims + extra).min(p.rank());
                let jb = p.perm.output_dim_source(out_dims - 1);
                if (0..out_dims).any(|od| {
                    let j = p.perm.output_dim_source(od);
                    j == xa && block_a != ext && !(od + 1 == out_dims && j >= in_dims)
                }) {
                    continue;
                }
                let before: usize = (0..out_dims - 1)
                    .map(|od| {
                        let j = p.perm.output_dim_source(od);
                        if j == xa {
                            block_a
                        } else {
                            p.extent(j)
                        }
                    })
                    .product();
                let blocks_b: Vec<usize> = if jb >= in_dims {
                    let minimal = p.extent(jb).min(ws.div_ceil(before.max(1))).max(1);
                    let mut v = vec![minimal, (2 * minimal).min(p.extent(jb)), p.extent(jb)];
                    v.dedup();
                    v
                } else {
                    vec![p.extent(jb)]
                };
                for &block_b in &blocks_b {
                    push::<E>(
                        p,
                        device,
                        overbooking,
                        &mut out,
                        &mut seen,
                        log.as_deref_mut(),
                        OaChoice {
                            in_dims,
                            block_a,
                            out_dims,
                            block_b,
                        },
                    );
                    if out.len() >= MAX_CANDIDATES {
                        return out;
                    }
                }
            }
        }
    }
    out
}

/// Enumerate FVI-Match-Small blocking factors (bounded around the
/// default).
pub fn fms_candidates<E: Element>(p: &Problem, smem_limit: usize) -> Vec<usize> {
    let n0 = p.extent(0);
    let default = FviMatchSmallKernel::<E>::default_b(n0, smem_limit);
    FviMatchSmallKernel::<E>::candidate_bs(n0, smem_limit)
        .into_iter()
        .filter(|&b| b >= default.saturating_sub(2) && b <= default.saturating_mul(4))
        .take(12)
        .collect()
}

/// All candidates for one schema, as feature-described [`Candidate`]s.
pub fn enumerate_candidates<E: Element>(
    p: &Problem,
    schema: Schema,
    device: &DeviceConfig,
    overbooking: usize,
    sweep: bool,
) -> Vec<Candidate> {
    enumerate_impl::<E>(p, schema, device, overbooking, sweep, None)
}

/// [`enumerate_candidates`] recording every swept-and-rejected
/// configuration into `log` (the planner's decision trace).
pub fn enumerate_candidates_traced<E: Element>(
    p: &Problem,
    schema: Schema,
    device: &DeviceConfig,
    overbooking: usize,
    sweep: bool,
    log: &mut Vec<SweepRejection>,
) -> Vec<Candidate> {
    enumerate_impl::<E>(p, schema, device, overbooking, sweep, Some(log))
}

fn enumerate_impl<E: Element>(
    p: &Problem,
    schema: Schema,
    device: &DeviceConfig,
    overbooking: usize,
    sweep: bool,
    log: Option<&mut Vec<SweepRejection>>,
) -> Vec<Candidate> {
    let smem_limit = device.smem_per_sm;
    match schema {
        Schema::Copy => {
            if p.is_copy() {
                vec![features::copy_candidate::<E>(p)]
            } else {
                Vec::new()
            }
        }
        Schema::FviMatchLarge => {
            if p.perm.fvi_matches() && !p.perm.is_identity() && p.extent(0) >= WARP_SIZE {
                vec![fml_candidate::<E>(p)]
            } else {
                Vec::new()
            }
        }
        Schema::FviMatchSmall => {
            if p.rank() < 3
                || !p.perm.fvi_matches()
                || p.extent(0) >= WARP_SIZE
                || p.perm.output_dim_source(1) < 2
            {
                return Vec::new();
            }
            let bs = if sweep {
                fms_candidates::<E>(p, smem_limit)
            } else {
                vec![FviMatchSmallKernel::<E>::default_b(p.extent(0), smem_limit)]
            };
            bs.into_iter().map(|b| fms_candidate::<E>(p, b)).collect()
        }
        Schema::OrthogonalDistinct => {
            let cs = if sweep {
                od_candidates_logged::<E>(p, device, overbooking, log)
            } else {
                OdChoice::default_for(p).into_iter().collect()
            };
            cs.into_iter().map(|c| od_candidate::<E>(p, c)).collect()
        }
        Schema::OrthogonalArbitrary => {
            let mut cs = if sweep {
                oa_candidates_logged::<E>(p, device, overbooking, log)
            } else {
                OaChoice::default_for::<E>(p, smem_limit)
                    .into_iter()
                    .filter(|c| oa_occupancy_ok::<E>(p, c, device, overbooking))
                    .collect()
            };
            if cs.is_empty() {
                // Never leave the schema without a candidate: the default
                // (occupancy-poor as it may be) is still executable.
                cs = OaChoice::default_for::<E>(p, smem_limit)
                    .into_iter()
                    .collect();
            }
            cs.into_iter().map(|c| oa_candidate::<E>(p, c)).collect()
        }
        Schema::Naive => vec![naive_candidate::<E>(p)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::{Permutation, Shape};

    fn prob(extents: &[usize], perm: &[usize]) -> Problem {
        Problem::new(
            &Shape::new(extents).unwrap(),
            &Permutation::new(perm).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn input_cut_basic() {
        let p = prob(&[16, 2, 32, 32], &[3, 2, 1, 0]);
        assert_eq!(input_cut(&p, 32), Some((2, 2)));
        assert_eq!(input_cut(&p, 64), Some((3, 2)));
        assert_eq!(input_cut(&p, 16), Some((1, 16)));
        assert!(input_cut(&p, 1 << 30).is_none());
    }

    #[test]
    fn output_cut_truncates_at_input_slice() {
        // 27^5 perm 4 1 2 0 3: the Fig. 5 shape — output truncates at 27.
        let p = prob(&[27, 27, 27, 27, 27], &[4, 1, 2, 0, 3]);
        let (od, bb, trunc) = output_cut(&p, 32, 2).unwrap();
        assert_eq!(od, 1);
        assert_eq!(bb, 27);
        assert!(trunc);
    }

    #[test]
    fn od_sweep_contains_default_and_many_variants() {
        let p = prob(&[27, 27, 27, 27, 27], &[4, 1, 2, 0, 3]);
        let cs = od_candidates::<f64>(&p, &DeviceConfig::k40c(), DEFAULT_OVERBOOKING);
        assert!(cs.len() >= 5, "got {} candidates", cs.len());
        assert!(cs.iter().all(|c| c.is_valid(&p)));
        let default = OdChoice::default_for(&p).unwrap();
        assert!(cs.contains(&default));
        // Fig. 5's winner (A = 189 = 27*7, B = 27) must be in the sweep:
        assert!(
            cs.iter().any(|c| c.a_vol(&p) == 189 && c.b_vol(&p) == 27),
            "sweep must contain the 189x27 slice; has {:?}",
            cs.iter()
                .map(|c| (c.a_vol(&p), c.b_vol(&p)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn oa_candidates_fit_smem() {
        let p = prob(&[8, 2, 8, 8], &[2, 1, 3, 0]);
        let cs = oa_candidates::<f64>(&p, &DeviceConfig::k40c(), DEFAULT_OVERBOOKING);
        assert!(!cs.is_empty());
        for c in &cs {
            assert!(c.is_valid(&p));
            assert!(c.fits_smem(&p, 8, 48 * 1024));
        }
    }

    #[test]
    fn oa_occupancy_bound_rejects_giant_slices_on_big_tensors() {
        // 16^6 tensor: a 32 KiB slice leaves 1 resident block per SM.
        let p = prob(&[16, 16, 16, 16, 16, 16], &[1, 0, 2, 4, 5, 3]);
        let giant = OaChoice {
            in_dims: 2,
            block_a: 16,
            out_dims: 3,
            block_b: 16,
        };
        if giant.is_valid(&p) {
            assert!(!oa_occupancy_ok::<f64>(
                &p,
                &giant,
                &DeviceConfig::k40c(),
                4
            ));
        }
        let cs = oa_candidates::<f64>(&p, &DeviceConfig::k40c(), DEFAULT_OVERBOOKING);
        for c in &cs {
            assert!(oa_occupancy_ok::<f64>(&p, c, &DeviceConfig::k40c(), 4));
        }
    }

    #[test]
    fn fms_candidates_near_default() {
        let p = prob(&[8, 8, 8, 8], &[0, 3, 2, 1]);
        let bs = fms_candidates::<f64>(&p, 48 * 1024);
        assert!(bs.contains(&4));
        assert!(bs.len() <= 12);
    }

    #[test]
    fn enumerate_all_schemas() {
        let dev = DeviceConfig::k40c();
        let p = prob(&[8, 8, 8, 8], &[0, 3, 2, 1]);
        assert!(!enumerate_candidates::<f64>(&p, Schema::FviMatchSmall, &dev, 4, true).is_empty());
        assert!(
            !enumerate_candidates::<f64>(&p, Schema::OrthogonalArbitrary, &dev, 4, true).is_empty()
        );
        let pr = prob(&[64, 64], &[1, 0]);
        assert!(
            !enumerate_candidates::<f64>(&pr, Schema::OrthogonalDistinct, &dev, 4, true).is_empty()
        );
        let pl = prob(&[64, 8, 8], &[0, 2, 1]);
        assert_eq!(
            enumerate_candidates::<f64>(&pl, Schema::FviMatchLarge, &dev, 4, true).len(),
            1
        );
        // FMS enumeration guards against inapplicable problems.
        assert!(enumerate_candidates::<f64>(&pl, Schema::FviMatchSmall, &dev, 4, true).is_empty());
    }

    #[test]
    fn od_sweep_bounded() {
        let p = prob(&[16, 16, 16, 16, 16, 16], &[5, 4, 3, 2, 1, 0]);
        let cs = od_candidates::<f64>(&p, &DeviceConfig::k40c(), DEFAULT_OVERBOOKING);
        assert!(cs.len() <= super::MAX_CANDIDATES);
        assert!(!cs.is_empty());
    }
}
