//! Orthogonal-Arbitrary (paper Algs. 4 + 5): the general schema, used when
//! the combined input and output index sets overlap (and as a fallback for
//! awkward matching-FVI shapes).
//!
//! The slice is `IS x OOS` where `IS` is a set of leading input dims
//! (contiguous in the input, combined length `ilimit`) and
//! `OOS = OS - IS` the output-slice dims not already in `IS` (combined
//! length `olimit`). The whole `ilimit * olimit`-element slice lives in
//! shared memory ("the shared memory size is proportional to the slice
//! volume"). Copy-in is contiguous on the input; write-out walks the
//! output-linear order of the slice through two precomputed indirection
//! arrays (Alg. 4): `output_offset[p]` (global target) and
//! `sm_out_offset[p]` (shared-memory source), both texture-resident.
//! Unlike Orthogonal-Distinct, the buffer is unpadded, so the gather *can*
//! suffer bank conflicts — the paper says as much — and the conflict model
//! measures them.

use crate::kernels::common::{pick_coarsening_dim, pick_threads, GridDim, OuterGrid};
use crate::problem::Problem;
use std::marker::PhantomData;
use ttlg_gpu_sim::{Accounting, BlockIo, BlockKernel, Launch, SmemSim};
use ttlg_tensor::{Element, WARP_SIZE};

/// Slice choice for the Orthogonal-Arbitrary kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OaChoice {
    /// Number of leading input dims in `IS` (last one blocked by
    /// `block_a`).
    pub in_dims: usize,
    /// Blocking factor on input dim `in_dims - 1`.
    pub block_a: usize,
    /// Number of leading *output* dims covered by the slice.
    pub out_dims: usize,
    /// Blocking factor on the source dim of output dim `out_dims - 1`
    /// (meaningful only when that source is not already in `IS`; must
    /// equal the full extent otherwise).
    pub block_b: usize,
}

impl OaChoice {
    /// Combined input-slice length.
    pub fn ilimit(&self, p: &Problem) -> usize {
        p.shape.prefix_volume(self.in_dims - 1) * self.block_a
    }

    /// The `OOS` dims (output-position order) with their chunk extents.
    pub fn oos_dims(&self, p: &Problem) -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for od in 0..self.out_dims {
            let j = p.perm.output_dim_source(od);
            if j < self.in_dims {
                continue; // already covered by IS
            }
            let chunk = if od + 1 == self.out_dims {
                self.block_b.min(p.extent(j))
            } else {
                p.extent(j)
            };
            v.push((j, chunk));
        }
        v
    }

    /// Combined `OOS` length.
    pub fn olimit(&self, p: &Problem) -> usize {
        self.oos_dims(p).iter().map(|&(_, c)| c).product()
    }

    /// Whole-slice element count (the shared-memory footprint).
    pub fn slice_vol(&self, p: &Problem) -> usize {
        self.ilimit(p) * self.olimit(p)
    }

    /// Structural validity (see module docs for the constraints).
    pub fn is_valid(&self, p: &Problem) -> bool {
        if self.in_dims == 0
            || self.in_dims > p.rank()
            || self.out_dims == 0
            || self.out_dims > p.rank()
        {
            return false;
        }
        let xa = self.in_dims - 1;
        if self.block_a == 0 || self.block_a > p.extent(xa) {
            return false;
        }
        let jb = p.perm.output_dim_source(self.out_dims - 1);
        for od in 0..self.out_dims {
            let j = p.perm.output_dim_source(od);
            if j < self.in_dims {
                // A dim shared with IS must be fully covered there if it is
                // the input-blocked dim.
                if j == xa && self.block_a != p.extent(xa) {
                    return false;
                }
            } else if od + 1 < self.out_dims {
                // Intermediate OOS dims are always fully covered; nothing
                // to check (chunk = extent by construction).
            }
        }
        if jb >= self.in_dims {
            if self.block_b == 0 || self.block_b > p.extent(jb) {
                return false;
            }
        } else if self.block_b != p.extent(jb) {
            // Convention: when the terminal output dim lives in IS, block_b
            // must record its full extent.
            return false;
        }
        true
    }

    /// Whether the slice fits the shared-memory budget for elements of
    /// `elem_bytes`.
    pub fn fits_smem(&self, p: &Problem, elem_bytes: usize, smem_limit: usize) -> bool {
        self.slice_vol(p) * elem_bytes <= smem_limit
    }

    /// Default choice: grow `IS` toward the warp size (blocking the
    /// terminal dim), then cover leading output dims until the combined
    /// output length reaches the warp size, blocking the last added `OOS`
    /// dim. When an output dim demands full coverage of a huge
    /// input-blocked dim (blowing shared memory), the input side retreats
    /// one dim and retries. Returns `None` if nothing fits shared memory.
    pub fn default_for<E: Element>(p: &Problem, smem_limit: usize) -> Option<OaChoice> {
        let ws = WARP_SIZE;
        let mut init = 1usize;
        let mut vol = p.extent(0);
        while vol < ws && init < p.rank() {
            init += 1;
            vol *= p.extent(init - 1);
        }
        (1..=init)
            .rev()
            .find_map(|in_dims| Self::default_with_in_dims::<E>(p, in_dims, smem_limit))
    }

    /// The default construction for a fixed `in_dims`; see
    /// [`OaChoice::default_for`].
    fn default_with_in_dims<E: Element>(
        p: &Problem,
        in_dims: usize,
        smem_limit: usize,
    ) -> Option<OaChoice> {
        let ws = WARP_SIZE;
        let xa = in_dims - 1;
        let prefix = p.shape.prefix_volume(xa);
        let mut block_a = p.extent(xa).min(ws.div_ceil(prefix)).max(1);
        // Output side.
        let mut out_dims = 0;
        let mut ovol = 1usize;
        while ovol < ws && out_dims < p.rank() {
            let j = p.perm.output_dim_source(out_dims);
            out_dims += 1;
            if j == xa {
                block_a = p.extent(xa); // output needs the dim in full
            }
            ovol *= if j == xa { block_a } else { p.extent(j) };
        }
        if out_dims == 0 {
            return None;
        }
        // Block the terminal output dim down to what the warp needs.
        let jb = p.perm.output_dim_source(out_dims - 1);
        let before: usize = (0..out_dims - 1)
            .map(|od| {
                let j = p.perm.output_dim_source(od);
                if j == xa {
                    block_a
                } else {
                    p.extent(j)
                }
            })
            .product();
        let block_b = if jb >= in_dims {
            p.extent(jb).min(ws.div_ceil(before.max(1))).max(1)
        } else {
            p.extent(jb)
        };
        let mut c = OaChoice {
            in_dims,
            block_a,
            out_dims,
            block_b,
        };
        if !c.is_valid(p) {
            return None;
        }
        // Shrink blockings until the slice fits shared memory.
        while !c.fits_smem(p, E::BYTES, smem_limit) {
            if c.block_b > 1 && jb >= in_dims {
                c.block_b = c.block_b.div_ceil(2);
            } else if c.block_a > 1 {
                // Only shrinkable if no output dim requires full coverage.
                if (0..c.out_dims).any(|od| p.perm.output_dim_source(od) == xa) {
                    return None;
                }
                c.block_a = c.block_a.div_ceil(2);
            } else {
                return None;
            }
        }
        c.is_valid(p).then_some(c)
    }
}

/// One `OOS` dimension as used at run time.
#[derive(Debug, Clone, Copy)]
struct OosDim {
    /// Chunk extent (block_b for the terminal dim, full extent otherwise).
    chunk: usize,
    /// Input stride of one index.
    in_stride: usize,
}

/// The Orthogonal-Arbitrary kernel.
#[derive(Debug, Clone)]
pub struct OrthogonalArbitraryKernel<E> {
    choice: OaChoice,
    ilimit: usize,
    olimit: usize,
    a_prefix: usize,
    oos: Vec<OosDim>,
    /// Input offset of each OOS position (texture-resident; Alg. 4
    /// `input_offset`).
    in_offset: Vec<usize>,
    /// Global output offset of each slice position in output-linear order
    /// (Alg. 4 `output_offset`).
    out_offset: Vec<usize>,
    /// Shared-memory source of each slice position (Alg. 4
    /// `sm_out_offset`).
    sm_offset: Vec<u32>,
    /// Within-chunk index of the blocked input dim at each slice position
    /// (empty when unblocked) — used for partial-block boundary checks.
    idx_a: Vec<u16>,
    /// Same for the blocked OOS dim.
    idx_b: Vec<u16>,
    grid: OuterGrid,
    a_grid_pos: Option<usize>,
    b_grid_pos: Option<usize>,
    /// Grid position of the coarsened dim, if any.
    coarsen_pos: Option<usize>,
    threads: usize,
    _elem: PhantomData<E>,
}

impl<E: Element> OrthogonalArbitraryKernel<E> {
    /// Build the kernel for a problem and slice choice.
    pub fn new(p: &Problem, choice: OaChoice, smem_limit: usize) -> Self {
        assert!(
            choice.is_valid(p),
            "invalid Orthogonal-Arbitrary choice {choice:?}"
        );
        assert!(
            choice.fits_smem(p, E::BYTES, smem_limit),
            "slice does not fit shared memory: {choice:?}"
        );
        let ilimit = choice.ilimit(p);
        let a_prefix = p.shape.prefix_volume(choice.in_dims - 1);
        let oos_pairs = choice.oos_dims(p);
        let oos: Vec<OosDim> = oos_pairs
            .iter()
            .map(|&(j, chunk)| OosDim {
                chunk,
                in_stride: p.in_strides[j],
            })
            .collect();
        let olimit: usize = oos.iter().map(|d| d.chunk).product();
        let slice_vol = ilimit * olimit;

        // in_offset[r]: decompose r over the OOS chunks (output-position
        // order) and accumulate input strides.
        let mut in_offset = vec![0usize; olimit];
        for (r, slot) in in_offset.iter_mut().enumerate() {
            let mut rem = r;
            let mut off = 0usize;
            for d in &oos {
                let idx = rem % d.chunk;
                rem /= d.chunk;
                off += idx * d.in_stride;
            }
            *slot = off;
        }

        // The slice dims in output-position order, with for each: chunk,
        // output stride, contribution strides toward the smem (r, a)
        // coordinates, and whether it is one of the two blocked dims.
        let xa = choice.in_dims - 1;
        let jb_src = p.perm.output_dim_source(choice.out_dims - 1);
        let blocked_a = choice.block_a < p.extent(xa);
        let blocked_b = jb_src >= choice.in_dims && choice.block_b < p.extent(jb_src);

        struct SeqDim {
            chunk: usize,
            out_stride: usize,
            a_stride: usize,
            r_stride: usize,
            is_a: bool,
            is_b: bool,
        }
        // a-coordinate radix strides for IS dims (input order).
        let mut a_strides = vec![0usize; choice.in_dims];
        {
            let mut acc = 1usize;
            for (j, s) in a_strides.iter_mut().enumerate() {
                *s = acc;
                acc *= if j == xa { choice.block_a } else { p.extent(j) };
            }
        }
        // r-coordinate radix strides for OOS dims (their enumeration order).
        let mut r_strides = vec![0usize; oos.len()];
        {
            let mut acc = 1usize;
            for (k, s) in r_strides.iter_mut().enumerate() {
                *s = acc;
                acc *= oos[k].chunk;
            }
        }
        // Assemble the output-linear sequence: slice dims sorted by output
        // position.
        let mut seq: Vec<SeqDim> = Vec::new();
        {
            // map: input dim -> OOS enumeration index
            let mut oos_index = std::collections::HashMap::new();
            let mut k = 0usize;
            for od in 0..choice.out_dims {
                let j = p.perm.output_dim_source(od);
                if j >= choice.in_dims {
                    oos_index.insert(j, k);
                    k += 1;
                }
            }
            let mut dims_with_outpos: Vec<(usize, usize)> = Vec::new(); // (out_pos, in_dim)
            for j in 0..choice.in_dims {
                dims_with_outpos.push((p.out_pos_of_in[j], j));
            }
            for &(j, _) in &oos_pairs {
                dims_with_outpos.push((p.out_pos_of_in[j], j));
            }
            dims_with_outpos.sort_unstable();
            for (_, j) in dims_with_outpos {
                let in_is = j < choice.in_dims;
                let chunk = if in_is {
                    if j == xa {
                        choice.block_a
                    } else {
                        p.extent(j)
                    }
                } else if j == jb_src {
                    choice.block_b.min(p.extent(j))
                } else {
                    p.extent(j)
                };
                seq.push(SeqDim {
                    chunk,
                    out_stride: p.out_stride_of_in_dim(j),
                    a_stride: if in_is { a_strides[j] } else { 0 },
                    r_stride: if in_is { 0 } else { r_strides[oos_index[&j]] },
                    is_a: in_is && j == xa && blocked_a,
                    is_b: !in_is && j == jb_src && blocked_b,
                });
            }
        }
        debug_assert_eq!(seq.iter().map(|d| d.chunk).product::<usize>(), slice_vol);

        // Walk the output-linear slice space once, filling the indirection
        // arrays (this is Alg. 4, done host-side at plan time).
        let mut out_offset = vec![0usize; slice_vol];
        let mut sm_offset = vec![0u32; slice_vol];
        let mut idx_a = if blocked_a {
            vec![0u16; slice_vol]
        } else {
            Vec::new()
        };
        let mut idx_b = if blocked_b {
            vec![0u16; slice_vol]
        } else {
            Vec::new()
        };
        {
            let mut idxs = vec![0usize; seq.len()];
            for pos in 0..slice_vol {
                let mut out = 0usize;
                let mut a = 0usize;
                let mut r = 0usize;
                let mut ia = 0usize;
                let mut ib = 0usize;
                for (k, d) in seq.iter().enumerate() {
                    let i = idxs[k];
                    out += i * d.out_stride;
                    a += i * d.a_stride;
                    r += i * d.r_stride;
                    if d.is_a {
                        ia = i;
                    }
                    if d.is_b {
                        ib = i;
                    }
                }
                out_offset[pos] = out;
                sm_offset[pos] = (r * ilimit + a) as u32;
                if blocked_a {
                    idx_a[pos] = ia as u16;
                }
                if blocked_b {
                    idx_b[pos] = ib as u16;
                }
                // odometer
                for (k, d) in seq.iter().enumerate() {
                    idxs[k] += 1;
                    if idxs[k] < d.chunk {
                        break;
                    }
                    idxs[k] = 0;
                }
            }
        }

        // Grid.
        let mut slice_set: Vec<usize> = (0..choice.in_dims).collect();
        slice_set.extend(oos_pairs.iter().map(|&(j, _)| j));
        let coarsen_dim = pick_coarsening_dim(p.shape.extents(), &slice_set, p.bytes::<E>());
        let mut grid = OuterGrid::new();
        let mut a_grid_pos = None;
        let mut b_grid_pos = None;
        let mut coarsen_pos = None;
        if blocked_a {
            a_grid_pos = Some(grid.dims().len());
            grid.push(GridDim {
                dim: xa,
                extent: p.extent(xa),
                chunk: choice.block_a,
                in_stride: p.in_strides[xa],
                out_stride: p.out_stride_of_in_dim(xa),
            });
        }
        if blocked_b {
            b_grid_pos = Some(grid.dims().len());
            grid.push(GridDim {
                dim: jb_src,
                extent: p.extent(jb_src),
                chunk: choice.block_b,
                in_stride: p.in_strides[jb_src],
                out_stride: p.out_stride_of_in_dim(jb_src),
            });
        }
        for d in 0..p.rank() {
            if slice_set.contains(&d) {
                continue;
            }
            let chunk = if Some(d) == coarsen_dim {
                coarsen_pos = Some(grid.dims().len());
                p.extent(d)
            } else {
                1
            };
            grid.push(GridDim {
                dim: d,
                extent: p.extent(d),
                chunk,
                in_stride: p.in_strides[d],
                out_stride: p.out_stride_of_in_dim(d),
            });
        }

        let threads = pick_threads(slice_vol, 256);
        OrthogonalArbitraryKernel {
            choice,
            ilimit,
            olimit,
            a_prefix,
            oos,
            in_offset,
            out_offset,
            sm_offset,
            idx_a,
            idx_b,
            grid,
            a_grid_pos,
            b_grid_pos,
            coarsen_pos,
            threads,
            _elem: PhantomData,
        }
    }

    /// Build with the default slice choice; `None` when nothing fits.
    pub fn with_default_choice(p: &Problem, smem_limit: usize) -> Option<Self> {
        OaChoice::default_for::<E>(p, smem_limit).map(|c| Self::new(p, c, smem_limit))
    }

    /// The slice choice in use.
    pub fn choice(&self) -> OaChoice {
        self.choice
    }

    /// `(ilimit, olimit)` — the slice's input-combined and OOS-combined
    /// lengths.
    pub fn limits(&self) -> (usize, usize) {
        (self.ilimit, self.olimit)
    }

    /// Bytes of indirection arrays held in texture memory.
    pub fn offset_array_bytes(&self) -> usize {
        (self.in_offset.len() + self.out_offset.len() + self.sm_offset.len()) * 4
    }

    /// Transpose one sub-slice whose bases are given.
    #[allow(clippy::too_many_arguments)]
    fn run_slice(
        &self,
        in_base: usize,
        out_base: usize,
        cur_a: usize,
        cur_b: usize,
        io: &BlockIo<'_, E>,
        acct: &mut Accounting,
        sm: &mut SmemSim<E>,
    ) {
        let ilimit_cur = self.a_prefix * cur_a;
        let partial = cur_a * self.a_prefix != self.ilimit
            || self
                .b_grid_pos
                .map(|_| cur_b != self.choice.block_b)
                .unwrap_or(false);

        // ---- Copy-in: odometer over current OOS extents. ----
        let mut idxs = vec![0usize; self.oos.len()];
        loop {
            // r in the full-radix enumeration + input offset.
            let mut r_full = 0usize;
            {
                let mut acc = 1usize;
                for (k, d) in self.oos.iter().enumerate() {
                    r_full += idxs[k] * acc;
                    acc *= d.chunk;
                }
            }
            acct.tex_load_contiguous(r_full, 1); // broadcast in_offset[r]
            let base = in_base + self.in_offset[r_full];
            let row = r_full * self.ilimit;
            let mut off = 0usize;
            while off < ilimit_cur {
                let lanes = (ilimit_cur - off).min(32);
                acct.global_load_contiguous(base + off, lanes, E::BYTES);
                acct.smem_access_strided(row + off, lanes, 1, E::BYTES, false);
                for l in 0..lanes {
                    sm.write(row + off + l, io.load(base + off + l));
                }
                acct.elements(lanes as u64);
                off += lanes;
            }
            // odometer over OOS with *current* extents
            let mut done = true;
            for (k, d) in self.oos.iter().enumerate() {
                let lim = if Some(k) == self.blocked_oos_index() {
                    cur_b
                } else {
                    d.chunk
                };
                idxs[k] += 1;
                if idxs[k] < lim {
                    done = false;
                    break;
                }
                idxs[k] = 0;
            }
            if done {
                break;
            }
        }
        acct.barrier();

        // ---- Write-out: output-linear order through the indirection
        // arrays, skipping positions outside the current (partial) chunk
        // extents. ----
        let slice_vol = self.out_offset.len();
        let mut out_lanes = [0usize; 32];
        let mut sm_lanes = [0usize; 32];
        let mut chunk = 0usize;
        while chunk < slice_vol {
            let span = (slice_vol - chunk).min(32);
            let mut n = 0usize;
            for l in 0..span {
                let pos = chunk + l;
                if !self.idx_a.is_empty() && (self.idx_a[pos] as usize) >= cur_a {
                    continue;
                }
                if !self.idx_b.is_empty() && (self.idx_b[pos] as usize) >= cur_b {
                    continue;
                }
                out_lanes[n] = out_base + self.out_offset[pos];
                sm_lanes[n] = self.sm_offset[pos] as usize;
                n += 1;
            }
            if n > 0 {
                acct.tex_load_contiguous(chunk, span); // output_offset
                acct.tex_load_contiguous(chunk, span); // sm_out_offset
                if partial {
                    // boundary checks: the remainder-code mod/div pair
                    acct.special_instr(2 * span as u64);
                }
                acct.global_access_lanes(&out_lanes[..n], E::BYTES, false);
                acct.smem_access_lanes(&sm_lanes[..n], E::BYTES, true);
                for l in 0..n {
                    io.store(out_lanes[l], sm.read(sm_lanes[l]));
                }
            }
            chunk += span;
        }
        acct.barrier();
    }

    /// Index (within `self.oos`) of the blocked OOS dim, if any.
    fn blocked_oos_index(&self) -> Option<usize> {
        // The blocked dim is always the terminal output dim, which is the
        // *last* entry in OOS enumeration order — but only when blocking is
        // active (b_grid_pos set).
        self.b_grid_pos.map(|_| self.oos.len() - 1)
    }
}

impl<E: Element> BlockKernel<E> for OrthogonalArbitraryKernel<E> {
    fn name(&self) -> &str {
        "Orthogonal-Arbitrary"
    }

    fn launch(&self) -> Launch {
        Launch {
            grid_blocks: self.grid.blocks(),
            threads_per_block: self.threads,
            smem_bytes_per_block: self.ilimit * self.olimit * E::BYTES,
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        let d = self.grid.decode(block);
        acct.special_instr(2 * d.decode_divmods as u64 * self.threads as u64);
        let cur_a = match self.a_grid_pos {
            Some(i) => d.chunk_extents[i],
            None => self.choice.block_a,
        };
        let cur_b = match self.b_grid_pos {
            Some(i) => d.chunk_extents[i],
            None => self.choice.block_b,
        };
        let mut sm: SmemSim<E> = SmemSim::new(self.ilimit * self.olimit);
        match self.coarsen_pos {
            None => self.run_slice(d.in_base, d.out_base, cur_a, cur_b, io, acct, &mut sm),
            Some(ci) => {
                let dim = self.grid.dims()[ci];
                for c in 0..d.chunk_extents[ci] {
                    if c > 0 {
                        acct.index_instr(2 * self.threads as u64);
                    }
                    self.run_slice(
                        d.in_base + c * dim.in_stride,
                        d.out_base + c * dim.out_stride,
                        cur_a,
                        cur_b,
                        io,
                        acct,
                        &mut sm,
                    );
                }
            }
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        let epb = (128 / E::BYTES).min(32);
        self.grid.block_class(block, epb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_gpu_sim::{DeviceConfig, ExecMode, Executor};
    use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

    const SMEM: usize = 48 * 1024;

    fn run_case(extents: &[usize], perm: &[usize]) -> ttlg_gpu_sim::TransactionStats {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let k =
            OrthogonalArbitraryKernel::<u64>::with_default_choice(&p, SMEM).expect("OA must apply");
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let mut out = vec![0u64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex
            .run(
                &k,
                input.data(),
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data(), "case {extents:?} perm {perm}");
        assert_eq!(res.stats.elements_moved as usize, p.volume());
        let ana = ex.analyze(&k).unwrap();
        assert_eq!(ana.stats, res.stats);
        res.stats
    }

    #[test]
    fn paper_overlap_example() {
        // Sec. III: [a,b,c,d] => [c,b,d,a], extents 8,2,8,8.
        run_case(&[8, 2, 8, 8], &[2, 1, 3, 0]);
    }

    #[test]
    fn matrix_transpose_via_oa() {
        run_case(&[64, 48], &[1, 0]);
    }

    #[test]
    fn awkward_extents() {
        run_case(&[7, 3, 5, 11], &[2, 1, 3, 0]);
        run_case(&[5, 4, 3, 2, 6], &[3, 0, 4, 2, 1]);
    }

    #[test]
    fn matching_fvi_fallback() {
        // OA as the fallback for tiny matching FVI: [2,2,c,d] => [a,d,c,b].
        run_case(&[2, 2, 16, 16], &[0, 3, 2, 1]);
    }

    #[test]
    fn rank6_all16() {
        run_case(&[16, 16, 16, 16, 16, 16], &[4, 1, 2, 5, 3, 0]);
    }

    #[test]
    fn partial_blocks_correct() {
        // extents that force partial chunks on both blocked dims
        run_case(&[10, 3, 7, 9], &[2, 1, 3, 0]);
        run_case(&[33, 9, 34], &[2, 0, 1]);
    }

    #[test]
    fn default_choice_respects_smem() {
        let p = Problem::new(
            &Shape::new(&[64, 64, 64]).unwrap(),
            &Permutation::new(&[2, 1, 0]).unwrap(),
        )
        .unwrap();
        let c = OaChoice::default_for::<f64>(&p, SMEM).unwrap();
        assert!(c.fits_smem(&p, 8, SMEM));
        assert!(c.is_valid(&p));
    }

    #[test]
    fn choice_volume_math() {
        let p = Problem::new(
            &Shape::new(&[8, 2, 8, 8]).unwrap(),
            &Permutation::new(&[2, 1, 3, 0]).unwrap(),
        )
        .unwrap();
        // Paper Sec. III: combine {a,b,c} on input and {c,b,d} on output.
        let c = OaChoice {
            in_dims: 3,
            block_a: 8,
            out_dims: 3,
            block_b: 8,
        };
        assert!(c.is_valid(&p));
        assert_eq!(c.ilimit(&p), 128);
        assert_eq!(c.olimit(&p), 8); // OOS = {d}
        assert_eq!(c.slice_vol(&p), 1024);
    }

    #[test]
    fn explicit_wide_choice_correct() {
        let shape = Shape::new(&[8, 2, 8, 8]).unwrap();
        let perm = Permutation::new(&[2, 1, 3, 0]).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let c = OaChoice {
            in_dims: 3,
            block_a: 8,
            out_dims: 3,
            block_b: 8,
        };
        let k = OrthogonalArbitraryKernel::<u64>::new(&p, c, SMEM);
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let mut out = vec![0u64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        ex.run(
            &k,
            input.data(),
            &mut out,
            ExecMode::Execute {
                check_disjoint_writes: true,
            },
        )
        .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data());
    }

    #[test]
    fn invalid_choices_rejected() {
        let p = Problem::new(
            &Shape::new(&[8, 2, 8, 8]).unwrap(),
            &Permutation::new(&[2, 1, 3, 0]).unwrap(),
        )
        .unwrap();
        // in_dims 0
        assert!(!OaChoice {
            in_dims: 0,
            block_a: 1,
            out_dims: 1,
            block_b: 8
        }
        .is_valid(&p));
        // block_a exceeding extent
        assert!(!OaChoice {
            in_dims: 1,
            block_a: 9,
            out_dims: 1,
            block_b: 8
        }
        .is_valid(&p));
        // output dim covering the blocked input dim requires full block_a:
        // out dim 1 source is b (dim 1): in_dims = 2 blocks dim 1 with 1 < 2.
        assert!(!OaChoice {
            in_dims: 2,
            block_a: 1,
            out_dims: 2,
            block_b: 2
        }
        .is_valid(&p));
    }

    #[test]
    fn coarsening_engages_and_stays_correct() {
        // 16*2*16*16*24 u64 = 1.5 MiB — too small; scale up to 3 MiB.
        run_case(&[16, 2, 16, 16, 24, 2], &[2, 1, 3, 0, 4, 5]);
    }

    #[test]
    fn offset_arrays_exist() {
        let p = Problem::new(
            &Shape::new(&[8, 2, 8, 8]).unwrap(),
            &Permutation::new(&[2, 1, 3, 0]).unwrap(),
        )
        .unwrap();
        let k = OrthogonalArbitraryKernel::<f64>::with_default_choice(&p, SMEM).unwrap();
        assert!(k.offset_array_bytes() > 0);
        let (il, ol) = k.limits();
        assert!(il >= 1 && ol >= 1);
    }
}
