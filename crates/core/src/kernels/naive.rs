//! The naive "d-nested loop" transposition kernel of the paper's
//! introduction: one thread per output element, a mod/div chain to decode
//! the index, a strided (uncoalesced) read on the input side. Used as the
//! ablation baseline — the taxonomy never selects it.

use crate::problem::Problem;
use std::marker::PhantomData;
use ttlg_gpu_sim::{Accounting, BlockIo, BlockKernel, Launch};
use ttlg_tensor::Element;

/// Threads per block.
const THREADS: usize = 256;

/// Naive elementwise kernel (output-linear thread order).
#[derive(Debug, Clone)]
pub struct NaiveKernel<E> {
    volume: usize,
    rank: usize,
    /// Output-shape extents (mixed radix of the decode chain).
    out_extents: Vec<usize>,
    /// Input stride of each *output* dimension.
    perm_strides: Vec<usize>,
    _elem: PhantomData<E>,
}

impl<E: Element> NaiveKernel<E> {
    /// Build from a problem (works on the fused form — fusing only helps
    /// the naive kernel, which keeps the comparison honest).
    pub fn new(p: &Problem) -> Self {
        let rank = p.rank();
        let out_extents: Vec<usize> = p.out_shape.extents().to_vec();
        let perm_strides: Vec<usize> = (0..rank)
            .map(|od| p.in_strides[p.perm.output_dim_source(od)])
            .collect();
        NaiveKernel {
            volume: p.volume(),
            rank,
            out_extents,
            perm_strides,
            _elem: PhantomData,
        }
    }
}

impl<E: Element> BlockKernel<E> for NaiveKernel<E> {
    fn name(&self) -> &str {
        "Naive"
    }

    fn launch(&self) -> Launch {
        Launch {
            grid_blocks: self.volume.div_ceil(THREADS).max(1),
            threads_per_block: THREADS,
            smem_bytes_per_block: 0,
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        let start = block * THREADS;
        let end = (start + THREADS).min(self.volume);
        let mut in_addrs = [0usize; 32];
        let mut off = start;
        while off < end {
            let lanes = (end - off).min(32);
            for (l, slot) in in_addrs.iter_mut().enumerate().take(lanes) {
                let mut rem = off + l;
                let mut in_off = 0usize;
                for d in 0..self.rank {
                    let e = self.out_extents[d];
                    in_off += (rem % e) * self.perm_strides[d];
                    rem /= e;
                }
                *slot = in_off;
            }
            // The decode chain: one mod + one div per dimension per thread.
            acct.special_instr(2 * self.rank as u64 * lanes as u64);
            acct.global_access_lanes(&in_addrs[..lanes], E::BYTES, true);
            acct.global_store_contiguous(off, lanes, E::BYTES);
            for (l, &a) in in_addrs.iter().enumerate().take(lanes) {
                io.store(off + l, io.load(a));
            }
            acct.elements(lanes as u64);
            off += lanes;
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        // Gather patterns vary by position; classify by block id modulo a
        // small period so sampling still sees representative variety, and
        // distinguish the partial tail block. Exactness of extrapolation
        // only matters for the kernels TTLG can actually select; the naive
        // baseline is benchmarked in Execute mode.
        let tail = u32::from((block + 1) * THREADS > self.volume);
        (block as u32 % 64) | (tail << 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_gpu_sim::{DeviceConfig, ExecMode, Executor};
    use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

    fn run_case(extents: &[usize], perm: &[usize]) -> ttlg_gpu_sim::TransactionStats {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let k = NaiveKernel::<u64>::new(&p);
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let mut out = vec![0u64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex
            .run(
                &k,
                input.data(),
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data(), "case {extents:?} perm {perm}");
        res.stats
    }

    #[test]
    fn correctness_various() {
        run_case(&[8, 8, 8], &[2, 1, 0]);
        run_case(&[7, 5, 3, 2], &[3, 0, 2, 1]);
        run_case(&[64, 32], &[1, 0]);
    }

    #[test]
    fn input_side_is_uncoalesced() {
        // Matrix transpose: input reads stride by 64 elements -> every lane
        // its own transaction.
        let stats = run_case(&[64, 64], &[1, 0]);
        // loads far exceed the coalesced minimum (64*64*8/128 = 256).
        assert!(
            stats.dram_load_tx > 4 * 256,
            "loads: {}",
            stats.dram_load_tx
        );
        // stores are output-linear, fully coalesced.
        assert_eq!(stats.dram_store_tx, 256);
    }

    #[test]
    fn pays_mod_div_per_element() {
        let stats = run_case(&[16, 16, 16], &[2, 1, 0]);
        assert_eq!(stats.special_instr, 2 * 3 * 16u64.pow(3));
    }
}
