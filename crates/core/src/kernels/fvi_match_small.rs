//! FVI-Match-Small (paper Alg. 6 / Fig. 4): input and output share a small
//! fastest-varying index (`N0 < 32`). Data moves in `b x b x N0` slices:
//! each warp copies `b` consecutive rows along `i1` (a contiguous chunk of
//! `b*N0` input elements), staged through a padded shared-memory buffer,
//! and warps then write contiguous `b*N0`-element chunks of the output,
//! gathering "pencils" along the orthogonal dimension.
//!
//! The row length of the 2D buffer view is padded so that element 0 of row
//! 1 maps to bank `N0`, which makes the gather conflict-free (the paper's
//! Fig. 4 discussion).

use crate::kernels::common::{pick_coarsening_dim, GridDim, OuterGrid};
use crate::problem::Problem;
use std::marker::PhantomData;
use ttlg_gpu_sim::{Accounting, BlockIo, BlockKernel, Launch, SmemSim};
use ttlg_tensor::{Element, WARP_SIZE};

/// Shared-memory staging kernel for matching small FVI.
#[derive(Debug, Clone)]
pub struct FviMatchSmallKernel<E> {
    n0: usize,
    /// Blocking factor on `i1` (input side) and `ik` (output side).
    b: usize,
    /// Padded row length of the 2D shared-buffer view, elements.
    row_len: usize,
    /// Input dim serving as the output's second-fastest index.
    dim_ik: usize,
    grid: OuterGrid,
    /// Position of the `i1` / `ik` dimensions within the grid dims.
    i1_grid_pos: usize,
    ik_grid_pos: usize,
    /// Grid position of the coarsened dimension, if any.
    coarsen_pos: Option<usize>,
    out_stride_i1: usize,
    in_stride_ik: usize,
    threads: usize,
    _elem: PhantomData<E>,
}

impl<E: Element> FviMatchSmallKernel<E> {
    /// Admissible blocking factors for a problem: `b` warps per block,
    /// shared buffer within `smem_limit` bytes.
    pub fn candidate_bs(n0: usize, smem_limit: usize) -> Vec<usize> {
        (1..=32usize)
            .filter(|&b| {
                let row_len = Self::padded_row_len(n0, b);
                b * row_len * E::BYTES <= smem_limit && b * n0 <= 4096
            })
            .collect()
    }

    /// Default blocking factor: the smallest `b` with `b * N0 >=` warp
    /// size (full warp efficiency on the contiguous chunks).
    pub fn default_b(n0: usize, smem_limit: usize) -> usize {
        let want = WARP_SIZE.div_ceil(n0);
        Self::candidate_bs(n0, smem_limit)
            .into_iter()
            .find(|&b| b >= want)
            .unwrap_or(1)
    }

    /// Row length (elements) of the 2D buffer view, padded so that
    /// `row_len ≡ N0 (mod 32)` — banks then stagger exactly as Fig. 4
    /// requires (bank of row `r`, column 0 is `r * N0`).
    pub fn padded_row_len(n0: usize, b: usize) -> usize {
        let base = b * n0;
        let want = n0 % 32;
        let have = base % 32;
        base + (want + 32 - have) % 32
    }

    /// Build the kernel with blocking factor `b`.
    pub fn with_b(p: &Problem, b: usize) -> Self {
        assert!(
            p.perm.fvi_matches(),
            "FVI-Match-Small requires matching FVI"
        );
        let n0 = p.extent(0);
        assert!(
            n0 < WARP_SIZE,
            "FVI-Match-Small requires extent(0) < warp size"
        );
        assert!(p.rank() >= 3);
        let dim_ik = p.perm.output_dim_source(1);
        assert!(dim_ik >= 2, "fusion guarantees ik >= 2");
        assert!((1..=32).contains(&b));

        let row_len = Self::padded_row_len(n0, b);
        let tensor_bytes = p.bytes::<E>();
        let slice_dims = [0usize, 1, dim_ik];
        let coarsen_dim = pick_coarsening_dim(p.shape.extents(), &slice_dims, tensor_bytes);

        let mut grid = OuterGrid::new();
        // i1 first (fastest decode), then ik, then the rest.
        grid.push(GridDim {
            dim: 1,
            extent: p.extent(1),
            chunk: b,
            in_stride: p.in_strides[1],
            out_stride: p.out_stride_of_in_dim(1),
        });
        let i1_grid_pos = 0;
        grid.push(GridDim {
            dim: dim_ik,
            extent: p.extent(dim_ik),
            chunk: b,
            in_stride: p.in_strides[dim_ik],
            out_stride: p.out_stride_of_in_dim(dim_ik),
        });
        let ik_grid_pos = 1;
        let mut coarsen_pos = None;
        for d in 2..p.rank() {
            if d == dim_ik {
                continue;
            }
            let chunk = if Some(d) == coarsen_dim {
                coarsen_pos = Some(grid.dims().len());
                p.extent(d)
            } else {
                1
            };
            grid.push(GridDim {
                dim: d,
                extent: p.extent(d),
                chunk,
                in_stride: p.in_strides[d],
                out_stride: p.out_stride_of_in_dim(d),
            });
        }

        FviMatchSmallKernel {
            n0,
            b,
            row_len,
            dim_ik,
            grid,
            i1_grid_pos,
            ik_grid_pos,
            coarsen_pos,
            out_stride_i1: p.out_stride_of_in_dim(1),
            in_stride_ik: p.in_strides[dim_ik],
            threads: WARP_SIZE * b,
            _elem: PhantomData,
        }
    }

    /// Build the kernel with the default blocking factor.
    pub fn new(p: &Problem, smem_limit: usize) -> Self {
        let b = Self::default_b(p.extent(0), smem_limit);
        Self::with_b(p, b)
    }

    /// The blocking factor in use.
    pub fn blocking(&self) -> usize {
        self.b
    }

    /// The input dim serving as the output's second-fastest index.
    pub fn ik_dim(&self) -> usize {
        self.dim_ik
    }
}

impl<E: Element> BlockKernel<E> for FviMatchSmallKernel<E> {
    fn name(&self) -> &str {
        "FVI-Match-Small"
    }

    fn launch(&self) -> Launch {
        Launch {
            grid_blocks: self.grid.blocks(),
            threads_per_block: self.threads,
            smem_bytes_per_block: self.b * self.row_len * E::BYTES,
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        let d = self.grid.decode(block);
        acct.special_instr(2 * d.decode_divmods as u64 * self.threads as u64);
        let b1 = d.chunk_extents[self.i1_grid_pos];
        let bk = d.chunk_extents[self.ik_grid_pos];
        let mut sm: SmemSim<E> = SmemSim::new(self.b * self.row_len);
        match self.coarsen_pos {
            None => self.run_slice(d.in_base, d.out_base, b1, bk, io, acct, &mut sm),
            Some(ci) => {
                let dim = self.grid.dims()[ci];
                for c in 0..d.chunk_extents[ci] {
                    if c > 0 {
                        acct.index_instr(2 * self.threads as u64);
                    }
                    self.run_slice(
                        d.in_base + c * dim.in_stride,
                        d.out_base + c * dim.out_stride,
                        b1,
                        bk,
                        io,
                        acct,
                        &mut sm,
                    );
                }
            }
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        let epb = (128 / E::BYTES).min(32);
        self.grid.block_class(block, epb)
    }
}

impl<E: Element> FviMatchSmallKernel<E> {
    /// Transpose one `b1 x bk x N0` sub-slice.
    #[allow(clippy::too_many_arguments)]
    fn run_slice(
        &self,
        in_base: usize,
        out_base: usize,
        b1: usize,
        bk: usize,
        io: &BlockIo<'_, E>,
        acct: &mut Accounting,
        sm: &mut SmemSim<E>,
    ) {
        let n0 = self.n0;
        // Copy-in: warp w handles ik offset w; b1 rows along i1 are one
        // contiguous chunk of b1*N0 input elements.
        for w in 0..bk {
            let base_in = in_base + w * self.in_stride_ik;
            let run = b1 * n0;
            let mut off = 0;
            while off < run {
                let lanes = (run - off).min(32);
                acct.global_load_contiguous(base_in + off, lanes, E::BYTES);
                acct.smem_access_strided(w * self.row_len + off, lanes, 1, E::BYTES, false);
                for l in 0..lanes {
                    sm.write(w * self.row_len + off + l, io.load(base_in + off + l));
                }
                acct.elements(lanes as u64);
                off += lanes;
            }
        }
        acct.barrier();

        // Write-out: warp w handles i1 offset w; the output chunk of
        // bk*N0 elements is contiguous (out dims: i0 then ik).
        let mut gather = [0usize; 32];
        for w in 0..b1 {
            let base_out = out_base + w * self.out_stride_i1;
            let run = bk * n0;
            let mut off = 0;
            while off < run {
                let lanes = (run - off).min(32);
                acct.global_store_contiguous(base_out + off, lanes, E::BYTES);
                for (l, g) in gather.iter_mut().enumerate().take(lanes) {
                    let pos = off + l;
                    let ik_off = pos / n0;
                    let i0 = pos % n0;
                    *g = ik_off * self.row_len + w * n0 + i0;
                }
                // pos/n0, pos%n0 per lane: the mod/div pair.
                acct.special_instr(2 * lanes as u64);
                acct.smem_access_lanes(&gather[..lanes], E::BYTES, true);
                for (l, &g) in gather.iter().enumerate().take(lanes) {
                    io.store(base_out + off + l, sm.read(g));
                }
                off += lanes;
            }
        }
        acct.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_gpu_sim::{DeviceConfig, ExecMode, Executor};
    use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

    fn run_case(extents: &[usize], perm: &[usize]) {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let k = FviMatchSmallKernel::<u64>::new(&p, 48 * 1024);
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let mut out = vec![0u64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex
            .run(
                &k,
                input.data(),
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data(), "case {extents:?} perm {perm}");
        assert_eq!(res.stats.elements_moved as usize, p.volume());
        let ana = ex.analyze(&k).unwrap();
        assert_eq!(ana.stats, res.stats);
    }

    #[test]
    fn paper_example_abcd_to_adcb() {
        run_case(&[8, 8, 8, 8], &[0, 3, 2, 1]);
    }

    #[test]
    fn awkward_extents() {
        run_case(&[7, 9, 5, 11], &[0, 3, 2, 1]);
        run_case(&[3, 10, 6, 4], &[0, 2, 1, 3]);
    }

    #[test]
    fn rank3() {
        run_case(&[16, 20, 24], &[0, 2, 1]);
    }

    #[test]
    fn rank6_16s() {
        run_case(&[16, 16, 16, 16, 16, 16], &[0, 2, 5, 1, 4, 3]);
    }

    #[test]
    fn padding_makes_gather_conflict_free() {
        let shape = Shape::new(&[8, 32, 32]).unwrap();
        let perm = Permutation::new(&[0, 2, 1]).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let k = FviMatchSmallKernel::<f32>::new(&p, 48 * 1024);
        assert_eq!(k.blocking(), 4); // 4 * 8 = 32 = warp size
                                     // row_len = 4*8 + pad with row_len % 32 == 8 -> 40.
        assert_eq!(FviMatchSmallKernel::<f32>::padded_row_len(8, 4), 40);
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex.analyze(&k).unwrap();
        assert_eq!(
            res.stats.smem_conflict_replays, 0,
            "padding must kill conflicts"
        );
    }

    #[test]
    fn unpadded_row_would_conflict() {
        // Sanity check of the model: b*n0 = 32 with no padding gives a
        // 4-way conflict on the gather (four rows collide per bank).
        let mut gather = [0usize; 32];
        for (pos, g) in gather.iter_mut().enumerate() {
            *g = (pos / 8) * 32 + pos % 8;
        }
        let mut acct = ttlg_gpu_sim::Accounting::new();
        acct.smem_access_lanes(&gather, 4, true);
        assert_eq!(acct.stats.smem_conflict_replays, 3);
    }

    #[test]
    fn candidates_respect_smem() {
        let c = FviMatchSmallKernel::<f64>::candidate_bs(16, 48 * 1024);
        assert!(!c.is_empty());
        for b in c {
            assert!(b * FviMatchSmallKernel::<f64>::padded_row_len(16, b) * 8 <= 48 * 1024);
        }
    }

    #[test]
    fn default_b_reaches_warp_width() {
        assert_eq!(FviMatchSmallKernel::<f64>::default_b(8, 48 * 1024), 4);
        assert_eq!(FviMatchSmallKernel::<f64>::default_b(16, 48 * 1024), 2);
        assert_eq!(FviMatchSmallKernel::<f64>::default_b(31, 48 * 1024), 2);
        assert_eq!(FviMatchSmallKernel::<f64>::default_b(2, 48 * 1024), 16);
    }

    #[test]
    fn coarsening_correctness_large_tensor() {
        // 8*16*16*8*18 u64 = 2.25 MiB: coarsening kicks in on a spare dim.
        run_case(&[8, 16, 16, 8, 18], &[0, 3, 2, 1, 4]);
    }
}
