//! FVI-Match-Large (paper Alg. 7): the fastest-varying index is the same in
//! input and output and its extent is at least the warp size, so rows of
//! `N0` contiguous elements are copied directly — coalesced on both sides,
//! no shared memory.
//!
//! Thread coarsening (Sec. IV-A) lets one block process all indices of one
//! outer dimension, paying the mod/div `decode` only for the first
//! sub-slice and advancing by strides afterwards.

use crate::kernels::common::{pick_coarsening_dim, round_up, GridDim, OuterGrid};
use crate::problem::Problem;
use std::marker::PhantomData;
use ttlg_gpu_sim::{Accounting, BlockIo, BlockKernel, Launch};
use ttlg_tensor::Element;

/// Direct-copy kernel for matching large FVI.
#[derive(Debug, Clone)]
pub struct FviMatchLargeKernel<E> {
    n0: usize,
    grid: OuterGrid,
    /// Index into `grid.dims()` of the dimension a block iterates over
    /// (either the coarsened dim or the rows-per-block packing dim).
    multi: Option<usize>,
    /// Whether `multi` came from the coarsening heuristic (affects only
    /// instruction accounting: coarsening saves the decode).
    coarsened: bool,
    threads: usize,
    _elem: PhantomData<E>,
}

impl<E: Element> FviMatchLargeKernel<E> {
    /// Build the kernel for a fused problem. Requires `perm[0] == 0` and
    /// `extent(0) >= warp size`.
    pub fn new(p: &Problem) -> Self {
        assert!(
            p.perm.fvi_matches(),
            "FVI-Match-Large requires matching FVI"
        );
        let n0 = p.extent(0);
        assert!(
            n0 >= ttlg_tensor::WARP_SIZE,
            "FVI-Match-Large requires extent(0) >= warp size"
        );

        let coarsen_dim =
            pick_coarsening_dim(p.shape.extents(), &[0], p.bytes::<E>()).filter(|&d| d != 0);
        // Rows per block: short rows are packed so blocks keep ~8 warps
        // resident (pure one-warp blocks starve memory-level parallelism).
        let row_threads = round_up(n0, 32).min(256);
        let rows_per_block = (256 / row_threads).max(1);
        let mut grid = OuterGrid::new();
        let mut multi = None;
        let mut coarsened = false;
        for d in 1..p.rank() {
            let chunk = if Some(d) == coarsen_dim {
                multi = Some(grid.dims().len());
                coarsened = true;
                p.extent(d) // entire dimension handled by one block
            } else if coarsen_dim.is_none() && multi.is_none() && rows_per_block > 1 {
                multi = Some(grid.dims().len());
                rows_per_block.min(p.extent(d))
            } else {
                1
            };
            grid.push(GridDim {
                dim: d,
                extent: p.extent(d),
                chunk,
                in_stride: p.in_strides[d],
                out_stride: p.out_stride_of_in_dim(d),
            });
        }
        let threads = if coarsened {
            row_threads
        } else {
            (row_threads * rows_per_block).min(256).max(row_threads)
        };
        FviMatchLargeKernel {
            n0,
            grid,
            multi,
            coarsened,
            threads,
            _elem: PhantomData,
        }
    }

    /// The coarsened grid dimension, if the heuristic engaged.
    pub fn coarsened(&self) -> Option<usize> {
        self.coarsened.then_some(self.multi).flatten()
    }

    fn copy_row(
        &self,
        in_base: usize,
        out_base: usize,
        io: &BlockIo<'_, E>,
        acct: &mut Accounting,
    ) {
        let mut off = 0usize;
        while off < self.n0 {
            let lanes = (self.n0 - off).min(32);
            acct.global_load_contiguous(in_base + off, lanes, E::BYTES);
            acct.global_store_contiguous(out_base + off, lanes, E::BYTES);
            for k in 0..lanes {
                let v = io.load(in_base + off + k);
                io.store(out_base + off + k, v);
            }
            acct.elements(lanes as u64);
            off += lanes;
        }
    }
}

impl<E: Element> BlockKernel<E> for FviMatchLargeKernel<E> {
    fn name(&self) -> &str {
        "FVI-Match-Large"
    }

    fn launch(&self) -> Launch {
        Launch {
            grid_blocks: self.grid.blocks(),
            threads_per_block: self.threads,
            smem_bytes_per_block: 0,
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        let d = self.grid.decode(block);
        // Every thread performs the decode divmods once per block launch.
        acct.special_instr(2 * d.decode_divmods as u64 * self.threads as u64);
        match self.multi {
            None => self.copy_row(d.in_base, d.out_base, io, acct),
            Some(ci) => {
                let dim = self.grid.dims()[ci];
                let count = d.chunk_extents[ci];
                for c in 0..count {
                    // Coarsened sub-slices add strides instead of decoding;
                    // packed rows run concurrently in other warps.
                    if c > 0 && self.coarsened {
                        acct.index_instr(2 * self.threads as u64);
                    }
                    self.copy_row(
                        d.in_base + c * dim.in_stride,
                        d.out_base + c * dim.out_stride,
                        io,
                        acct,
                    );
                }
            }
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        let epb = (128 / E::BYTES).min(32);
        self.grid.block_class(block, epb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_gpu_sim::{DeviceConfig, ExecMode, Executor};
    use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

    fn run_case(extents: &[usize], perm: &[usize]) {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let k = FviMatchLargeKernel::<u64>::new(&p);
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let mut out = vec![0u64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex
            .run(
                &k,
                input.data(),
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data(), "case {extents:?} perm {perm}");
        assert_eq!(res.stats.elements_moved as usize, p.volume());
        // Analyze mode must agree exactly with execute mode.
        let ana = ex.analyze(&k).unwrap();
        assert_eq!(ana.stats, res.stats);
    }

    #[test]
    fn correctness_basic() {
        run_case(&[64, 4, 5, 6], &[0, 3, 2, 1]);
    }

    #[test]
    fn correctness_unaligned_row() {
        run_case(&[37, 5, 7], &[0, 2, 1]);
    }

    #[test]
    fn correctness_exact_warp() {
        run_case(&[32, 3, 4, 2], &[0, 2, 1, 3]);
    }

    #[test]
    fn coarsening_engages_on_big_tensors() {
        // 64 * 8 * 64 * 32 doubles = 8 MB > 2 MB; dim 1 extent 8 in [4,32].
        let p = Problem::new(
            &Shape::new(&[64, 8, 64, 32]).unwrap(),
            &Permutation::new(&[0, 3, 2, 1]).unwrap(),
        )
        .unwrap();
        let k = FviMatchLargeKernel::<f64>::new(&p);
        assert!(k.coarsened().is_some());
        // Grid shrinks by the coarsening factor.
        assert_eq!(k.launch().grid_blocks, 64 * 32);
    }

    #[test]
    fn coarsening_correctness() {
        // 64*8*32*18 u64 = 2.25 MiB > 2 MiB, so coarsening engages.
        run_case(&[64, 8, 32, 18], &[0, 3, 2, 1]);
    }

    #[test]
    fn transaction_count_matches_c2() {
        // Paper Table I: C2 = ceil(size(i0)/32) * prod(other extents)
        // transaction-equivalents; for doubles each 32-wide access is 2 tx.
        let shape = Shape::new(&[64, 5, 7]).unwrap();
        let perm = Permutation::new(&[0, 2, 1]).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let k = FviMatchLargeKernel::<f64>::new(&p);
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex.analyze(&k).unwrap();
        // 64 doubles per row = 4 tx per row each way; 35 rows.
        assert_eq!(res.stats.dram_load_tx, 4 * 35);
        assert_eq!(res.stats.dram_store_tx, 4 * 35);
        assert_eq!(res.stats.smem_load_acc + res.stats.smem_store_acc, 0);
    }

    #[test]
    #[should_panic(expected = "matching FVI")]
    fn rejects_non_matching_fvi() {
        let p = Problem::new(
            &Shape::new(&[64, 64]).unwrap(),
            &Permutation::new(&[1, 0]).unwrap(),
        )
        .unwrap();
        let _ = FviMatchLargeKernel::<f64>::new(&p);
    }
}
