//! Degenerate kernel for permutations that fuse to the identity: a
//! grid-strided, fully coalesced device copy.

use std::marker::PhantomData;
use ttlg_gpu_sim::{Accounting, BlockIo, BlockKernel, Launch};
use ttlg_tensor::Element;

/// Elements handled per thread (grid-stride loop unroll quantum).
const ELEMS_PER_THREAD: usize = 2;
/// Threads per block.
const THREADS: usize = 256;

/// Elements processed per block — shared with the candidate estimator so
/// the planner's grid math matches the kernel.
pub const ELEMS_PER_BLOCK: usize = THREADS * ELEMS_PER_THREAD;

/// Grid-strided copy kernel.
#[derive(Debug, Clone)]
pub struct CopyKernel<E> {
    volume: usize,
    _elem: PhantomData<E>,
}

impl<E: Element> CopyKernel<E> {
    /// Build a copy kernel over `volume` elements.
    pub fn new(volume: usize) -> Self {
        CopyKernel {
            volume,
            _elem: PhantomData,
        }
    }

    fn elems_per_block(&self) -> usize {
        ELEMS_PER_BLOCK
    }
}

impl<E: Element> BlockKernel<E> for CopyKernel<E> {
    fn name(&self) -> &str {
        "Copy"
    }

    fn launch(&self) -> Launch {
        Launch {
            grid_blocks: self.volume.div_ceil(self.elems_per_block()).max(1),
            threads_per_block: THREADS,
            smem_bytes_per_block: 0,
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        let start = block * self.elems_per_block();
        let end = (start + self.elems_per_block()).min(self.volume);
        let mut off = start;
        while off < end {
            let lanes = (end - off).min(32);
            acct.global_load_contiguous(off, lanes, E::BYTES);
            acct.global_store_contiguous(off, lanes, E::BYTES);
            for k in off..off + lanes {
                io.store(k, io.load(k));
            }
            acct.elements(lanes as u64);
            off += lanes;
        }
        acct.index_instr(((end - start) / 8).max(1) as u64);
    }

    fn block_class(&self, block: usize) -> u32 {
        u32::from((block + 1) * self.elems_per_block() > self.volume)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_gpu_sim::{DeviceConfig, ExecMode, Executor};

    #[test]
    fn copies_exactly() {
        let n = 5000;
        let input: Vec<u64> = (0..n as u64).collect();
        let mut out = vec![0u64; n];
        let ex = Executor::new(DeviceConfig::test_tiny());
        let k = CopyKernel::<u64>::new(n);
        let res = ex
            .run(
                &k,
                &input,
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        assert_eq!(out, input);
        assert_eq!(res.stats.elements_moved, n as u64);
    }

    #[test]
    fn transactions_are_minimal() {
        // Aligned full-warp copies: tx = ceil(vol * 8 / 128) each way.
        let n = 4096;
        let ex = Executor::new(DeviceConfig::test_tiny());
        let k = CopyKernel::<u64>::new(n);
        let res = ex.analyze(&k).unwrap();
        assert_eq!(res.stats.dram_load_tx, (n * 8 / 128) as u64);
        assert_eq!(res.stats.dram_store_tx, (n * 8 / 128) as u64);
    }

    #[test]
    fn analyze_matches_execute() {
        let n = 3000; // not a multiple of the block quantum
        let input: Vec<u32> = (0..n as u32).collect();
        let mut out = vec![0u32; n];
        let ex = Executor::new(DeviceConfig::test_tiny());
        let k = CopyKernel::<u32>::new(n);
        let e = ex
            .run(
                &k,
                &input,
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: false,
                },
            )
            .unwrap();
        let a = ex.analyze(&k).unwrap();
        assert_eq!(e.stats, a.stats);
    }
}
