//! Grid geometry shared by all TTLG kernels: the outer-dimension iteration
//! space, block decode (the paper's `decode` / `compute_base`), blocking
//! factors and thread-coarsening bookkeeping.

/// One dimension of the outer (per-block) iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridDim {
    /// Fused input-dim id this grid dimension walks (for reports).
    pub dim: usize,
    /// Original extent of the dimension.
    pub extent: usize,
    /// Indices covered per grid step (the blocking factor; `extent` when
    /// the whole dimension belongs to one block).
    pub chunk: usize,
    /// Input stride (elements) of one index of this dimension.
    pub in_stride: usize,
    /// Output stride (elements) of one index of this dimension.
    pub out_stride: usize,
}

impl GridDim {
    /// Number of grid steps along this dimension.
    #[inline]
    pub fn steps(&self) -> usize {
        self.extent.div_ceil(self.chunk)
    }

    /// Number of valid indices in grid step `step` (smaller for the last,
    /// partial step).
    #[inline]
    pub fn chunk_extent(&self, step: usize) -> usize {
        if (step + 1) * self.chunk <= self.extent {
            self.chunk
        } else {
            self.extent - step * self.chunk
        }
    }

    /// Whether any step of this dimension is partial.
    #[inline]
    pub fn has_partial(&self) -> bool {
        !self.extent.is_multiple_of(self.chunk)
    }
}

/// The decoded state of one block: base offsets plus the per-dimension
/// chunk extents valid for this block.
#[derive(Debug, Clone)]
pub struct DecodedBlock {
    /// Base element offset into the input tensor.
    pub in_base: usize,
    /// Base element offset into the output tensor.
    pub out_base: usize,
    /// For each grid dimension (in [`OuterGrid`] order): the number of
    /// valid indices this block covers along it.
    pub chunk_extents: Vec<usize>,
    /// Number of mod/div pairs spent decoding (for instruction accounting).
    pub decode_divmods: u32,
}

/// The outer iteration space: one grid step combination per thread block.
#[derive(Debug, Clone, Default)]
pub struct OuterGrid {
    dims: Vec<GridDim>,
}

impl OuterGrid {
    /// Empty grid (a single block with no outer indices).
    pub fn new() -> Self {
        OuterGrid { dims: Vec::new() }
    }

    /// Append a dimension (fastest-decoded first).
    pub fn push(&mut self, dim: GridDim) {
        assert!(dim.extent >= 1 && dim.chunk >= 1);
        self.dims.push(dim);
    }

    /// The grid dimensions, in decode order.
    pub fn dims(&self) -> &[GridDim] {
        &self.dims
    }

    /// Total number of thread blocks.
    pub fn blocks(&self) -> usize {
        self.dims
            .iter()
            .map(|d| d.steps())
            .product::<usize>()
            .max(1)
    }

    /// Decode a block id into base offsets and chunk extents — the paper's
    /// `decode(blockid)` + `compute_base` (mod/div chain).
    pub fn decode(&self, block: usize) -> DecodedBlock {
        let mut rem = block;
        let mut in_base = 0usize;
        let mut out_base = 0usize;
        let mut chunk_extents = Vec::with_capacity(self.dims.len());
        for d in &self.dims {
            let steps = d.steps();
            let step = rem % steps;
            rem /= steps;
            in_base += step * d.chunk * d.in_stride;
            out_base += step * d.chunk * d.out_stride;
            chunk_extents.push(d.chunk_extent(step));
        }
        debug_assert_eq!(rem, 0, "block id out of range");
        DecodedBlock {
            in_base,
            out_base,
            chunk_extents,
            decode_divmods: self.dims.len() as u32,
        }
    }

    /// A compact class id for sampled analysis: the partial/full pattern of
    /// every dimension plus the base-address alignments modulo
    /// `align_elems` (transactions only depend on addresses modulo the
    /// 128-byte segment).
    pub fn block_class(&self, block: usize, align_elems: usize) -> u32 {
        let mut rem = block;
        let mut partial_bits = 0u32;
        let mut in_base = 0usize;
        let mut out_base = 0usize;
        for (i, d) in self.dims.iter().enumerate() {
            let steps = d.steps();
            let step = rem % steps;
            rem /= steps;
            if d.chunk_extent(step) != d.chunk {
                partial_bits |= 1 << (i % 8);
            }
            in_base += step * d.chunk * d.in_stride;
            out_base += step * d.chunk * d.out_stride;
        }
        let a = (in_base % align_elems.max(1)) as u32;
        let b = (out_base % align_elems.max(1)) as u32;
        partial_bits | (a << 8) | (b << 16)
    }
}

/// Round `n` up to a multiple of `m`.
#[inline]
pub fn round_up(n: usize, m: usize) -> usize {
    n.div_ceil(m) * m
}

/// Pick a thread-block size for a kernel that streams `work_per_block`
/// elements: a multiple of the warp size, at least one warp, at most
/// `max_threads`.
pub fn pick_threads(work_per_block: usize, max_threads: usize) -> usize {
    let ws = ttlg_tensor::WARP_SIZE;
    round_up(work_per_block.clamp(ws, max_threads), ws).min(round_up(max_threads, ws))
}

/// The coarsening heuristic of Sec. IV-A: the first dimension (in input
/// order, starting after the slice dims) with extent between 4 and 32,
/// considered only for tensors larger than 2 MB.
pub fn pick_coarsening_dim(
    extents: &[usize],
    excluded: &[usize],
    tensor_bytes: usize,
) -> Option<usize> {
    const MIN_TENSOR_BYTES: usize = 2 << 20;
    if tensor_bytes <= MIN_TENSOR_BYTES {
        return None;
    }
    (0..extents.len()).find(|d| !excluded.contains(d) && (4..=32).contains(&extents[*d]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3() -> OuterGrid {
        let mut g = OuterGrid::new();
        g.push(GridDim {
            dim: 1,
            extent: 10,
            chunk: 4,
            in_stride: 16,
            out_stride: 100,
        });
        g.push(GridDim {
            dim: 2,
            extent: 3,
            chunk: 1,
            in_stride: 160,
            out_stride: 10,
        });
        g
    }

    #[test]
    fn steps_and_partials() {
        let d = GridDim {
            dim: 0,
            extent: 10,
            chunk: 4,
            in_stride: 1,
            out_stride: 1,
        };
        assert_eq!(d.steps(), 3);
        assert_eq!(d.chunk_extent(0), 4);
        assert_eq!(d.chunk_extent(2), 2);
        assert!(d.has_partial());
        let e = GridDim {
            dim: 0,
            extent: 8,
            chunk: 4,
            in_stride: 1,
            out_stride: 1,
        };
        assert!(!e.has_partial());
    }

    #[test]
    fn blocks_product() {
        assert_eq!(grid3().blocks(), 3 * 3);
        assert_eq!(OuterGrid::new().blocks(), 1);
    }

    #[test]
    fn decode_bases() {
        let g = grid3();
        // block 0: step (0,0)
        let b = g.decode(0);
        assert_eq!((b.in_base, b.out_base), (0, 0));
        assert_eq!(b.chunk_extents, vec![4, 1]);
        // block 2: dim0 step 2 (partial), dim1 step 0
        let b = g.decode(2);
        assert_eq!(b.in_base, 2 * 4 * 16);
        assert_eq!(b.out_base, 2 * 4 * 100);
        assert_eq!(b.chunk_extents, vec![2, 1]);
        // block 5: dim0 step 2, dim1 step 1
        let b = g.decode(5);
        assert_eq!(b.in_base, 2 * 4 * 16 + 160);
        assert_eq!(b.out_base, 2 * 4 * 100 + 10);
        assert_eq!(b.decode_divmods, 2);
    }

    #[test]
    fn decode_covers_all_blocks_uniquely() {
        let g = grid3();
        let mut seen = std::collections::HashSet::new();
        for blk in 0..g.blocks() {
            let d = g.decode(blk);
            assert!(seen.insert((d.in_base, d.out_base)));
        }
    }

    #[test]
    fn class_distinguishes_partial_blocks() {
        let g = grid3();
        let full = g.block_class(0, 16);
        let partial = g.block_class(2, 16);
        assert_ne!(full, partial);
        // blocks 0 and 3 differ only in dim1 step, same alignment? dim1
        // stride 160 ≡ 0 mod 16 in, 10 mod 16 out -> class differs via
        // out_base alignment.
        let c3 = g.block_class(3, 16);
        assert_ne!(full, c3);
    }

    #[test]
    fn class_equal_for_equivalent_blocks() {
        let mut g = OuterGrid::new();
        // stride multiple of 16: all blocks alignment-equivalent
        g.push(GridDim {
            dim: 1,
            extent: 8,
            chunk: 1,
            in_stride: 32,
            out_stride: 64,
        });
        let c: Vec<u32> = (0..8).map(|b| g.block_class(b, 16)).collect();
        assert!(c.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn pick_threads_bounds() {
        assert_eq!(pick_threads(1, 256), 32);
        assert_eq!(pick_threads(100, 256), 128);
        assert_eq!(pick_threads(10_000, 256), 256);
        assert_eq!(pick_threads(40, 64), 64);
    }

    #[test]
    fn coarsening_heuristic() {
        // tensor too small: no coarsening
        assert_eq!(pick_coarsening_dim(&[16, 8, 100], &[0], 1 << 20), None);
        // big tensor: first non-excluded dim with extent in 4..=32
        assert_eq!(pick_coarsening_dim(&[16, 8, 100], &[0], 4 << 20), Some(1));
        assert_eq!(pick_coarsening_dim(&[16, 3, 100], &[0], 4 << 20), None);
        assert_eq!(pick_coarsening_dim(&[16, 8, 100], &[0, 1], 4 << 20), None);
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(1, 32), 32);
        assert_eq!(round_up(32, 32), 32);
        assert_eq!(round_up(33, 32), 64);
    }
}
