//! The TTLG kernel zoo: one module per schema of the paper's taxonomy,
//! plus the degenerate copy and the naive ablation baseline.

pub mod common;
pub mod copy;
pub mod fvi_match_large;
pub mod fvi_match_small;
pub mod naive;
pub mod orthogonal_arbitrary;
pub mod orthogonal_distinct;

pub use copy::CopyKernel;
pub use fvi_match_large::FviMatchLargeKernel;
pub use fvi_match_small::FviMatchSmallKernel;
pub use naive::NaiveKernel;
pub use orthogonal_arbitrary::{OaChoice, OrthogonalArbitraryKernel};
pub use orthogonal_distinct::{OdChoice, OrthogonalDistinctKernel};
