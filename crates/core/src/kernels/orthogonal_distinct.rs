//! Orthogonal-Distinct (paper Alg. 2): non-matching FVI where the combined
//! leading input dims and combined leading output dims are disjoint sets.
//!
//! The slice is a 2D `A x B` space: the A-axis is the combined input FVI
//! (contiguous in the input tensor), the B-axis the combined output FVI
//! (contiguous in the output tensor). Each thread block transposes one
//! slice through a fixed `32 x 33` padded shared-memory tile, in phases of
//! `32 x 32` elements (thread coarsening over the slice). Offset arrays —
//! `in_offset[r]` (input offset of B-axis position `r`) and `out_offset[a]`
//! (output offset of A-axis position `a`) — are precomputed on the host and
//! read through texture memory, replacing per-element mod/div chains.

use crate::kernels::common::{GridDim, OuterGrid};
use crate::problem::Problem;
use std::marker::PhantomData;
use ttlg_gpu_sim::{Accounting, BlockIo, BlockKernel, Launch, SmemSim};
use ttlg_tensor::{Element, WARP_SIZE};

/// Slice-shape choice for the Orthogonal-Distinct kernel (the output of
/// Alg. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OdChoice {
    /// Number of leading input dims in the slice (the last one is blocked).
    pub in_dims: usize,
    /// Blocking factor on input dim `in_dims - 1`.
    pub block_a: usize,
    /// Number of leading output dims in the slice (the last one is blocked).
    pub out_dims: usize,
    /// Blocking factor on the output-side blocked dim.
    pub block_b: usize,
}

impl OdChoice {
    /// The A-axis volume (combined input slice length).
    pub fn a_vol(&self, p: &Problem) -> usize {
        p.shape.prefix_volume(self.in_dims - 1) * self.block_a
    }

    /// The B-axis volume (combined output slice length).
    pub fn b_vol(&self, p: &Problem) -> usize {
        p.out_shape.prefix_volume(self.out_dims - 1) * self.block_b
    }

    /// Whether this choice is admissible for the problem: the slice dim
    /// sets must be disjoint and the blocking factors in range.
    pub fn is_valid(&self, p: &Problem) -> bool {
        if self.in_dims == 0
            || self.out_dims == 0
            || self.in_dims > p.rank()
            || self.out_dims > p.rank()
        {
            return false;
        }
        let in_set: Vec<usize> = (0..self.in_dims).collect();
        let out_set: Vec<usize> = (0..self.out_dims)
            .map(|od| p.perm.output_dim_source(od))
            .collect();
        if in_set.iter().any(|d| out_set.contains(d)) {
            return false;
        }
        self.block_a >= 1
            && self.block_a <= p.extent(self.in_dims - 1)
            && self.block_b >= 1
            && self.block_b <= p.extent(p.perm.output_dim_source(self.out_dims - 1))
    }

    /// The flow-chart default: grow each combined side toward the warp
    /// size, blocking the terminal dim so the combined length is the least
    /// reachable multiple of 32 — but *truncate* a side rather than let the
    /// two sides share a dimension (the paper's Fig. 5 case, where the
    /// output slice stays at 27 < 32 because growing it would absorb a dim
    /// already in the input slice). Returns `None` only when the FVI
    /// matches (Orthogonal-Distinct does not apply at all).
    pub fn default_for(p: &Problem) -> Option<OdChoice> {
        if p.perm.fvi_matches() || p.rank() < 2 {
            return None;
        }
        let ws = WARP_SIZE;
        // Input side: grow until >= WS.
        let mut in_dims = 1;
        let mut vol = p.extent(0);
        while vol < ws && in_dims < p.rank() {
            in_dims += 1;
            vol *= p.extent(in_dims - 1);
        }
        // The output FVI's source dim must stay outside the input slice.
        let j0 = p.perm.output_dim_source(0);
        if j0 < in_dims {
            in_dims = j0; // j0 >= 1 because the FVI does not match
        }
        let prefix = p.shape.prefix_volume(in_dims - 1);
        let block_a = p.extent(in_dims - 1).min(ws.div_ceil(prefix)).max(1);
        // Output side: grow while the source dims stay disjoint from the
        // input slice.
        let mut out_dims = 0;
        let mut ovol = 1usize;
        while ovol < ws && out_dims < p.rank() {
            let j = p.perm.output_dim_source(out_dims);
            if j < in_dims {
                break;
            }
            out_dims += 1;
            ovol *= p.extent(j);
        }
        if out_dims == 0 {
            return None;
        }
        let oprefix = p.out_shape.prefix_volume(out_dims - 1);
        let jlast = p.perm.output_dim_source(out_dims - 1);
        let block_b = p.extent(jlast).min(ws.div_ceil(oprefix)).max(1);
        let c = OdChoice {
            in_dims,
            block_a,
            out_dims,
            block_b,
        };
        c.is_valid(p).then_some(c)
    }
}

/// Padded tile row length (the 33 of the 32x33 buffer).
const TILE_ROW: usize = WARP_SIZE + 1;
/// Unpadded tile row length (for the bank-conflict ablation and the
/// TTC-style baseline).
const TILE_ROW_UNPADDED: usize = WARP_SIZE;
/// Threads per block (8 warps; each warp copies 4 row-segments per tile,
/// exactly the Fig. 1/2 description).
const THREADS: usize = 256;

/// The Orthogonal-Distinct kernel.
#[derive(Debug, Clone)]
pub struct OrthogonalDistinctKernel<E> {
    choice: OdChoice,
    a_vol: usize,
    b_vol: usize,
    /// Input offset of each B-axis position (texture-resident).
    in_offset: Vec<usize>,
    /// Output offset of each A-axis position (texture-resident).
    out_offset: Vec<usize>,
    grid: OuterGrid,
    /// grid position of the blocked input dim (None if unblocked/full).
    a_grid_pos: Option<usize>,
    b_grid_pos: Option<usize>,
    /// A-axis volume of a partial block (prefix * remainder of block_a).
    a_prefix: usize,
    b_prefix: usize,
    /// Row length of the shared tile (33 padded, 32 unpadded ablation).
    tile_row: usize,
    _elem: PhantomData<E>,
}

impl<E: Element> OrthogonalDistinctKernel<E> {
    /// Build the kernel for a problem and a slice choice (padded tile).
    pub fn new(p: &Problem, choice: OdChoice) -> Self {
        Self::new_with_padding(p, choice, true)
    }

    /// Build with explicit control over tile padding. `padded = false`
    /// reproduces the bank-conflicted naive tile (ablation / TTC-style
    /// baseline).
    pub fn new_with_padding(p: &Problem, choice: OdChoice, padded: bool) -> Self {
        assert!(
            choice.is_valid(p),
            "invalid Orthogonal-Distinct slice choice {choice:?}"
        );
        let a_vol = choice.a_vol(p);
        let b_vol = choice.b_vol(p);
        let a_prefix = p.shape.prefix_volume(choice.in_dims - 1);
        let b_prefix = p.out_shape.prefix_volume(choice.out_dims - 1);

        // in_offset[r]: decompose r over output dims 0..out_dims (radix
        // block_b on the last) and accumulate *input* strides.
        let mut in_offset = vec![0usize; b_vol];
        for (r, slot) in in_offset.iter_mut().enumerate() {
            let mut rem = r;
            let mut off = 0usize;
            for od in 0..choice.out_dims {
                let radix = if od + 1 == choice.out_dims {
                    choice.block_b
                } else {
                    p.out_shape.extent(od)
                };
                let idx = rem % radix;
                rem /= radix;
                let j = p.perm.output_dim_source(od);
                off += idx * p.in_strides[j];
            }
            *slot = off;
        }

        // out_offset[a]: decompose a over input dims 0..in_dims (radix
        // block_a on the last) and accumulate *output* strides.
        let mut out_offset = vec![0usize; a_vol];
        for (a, slot) in out_offset.iter_mut().enumerate() {
            let mut rem = a;
            let mut off = 0usize;
            for j in 0..choice.in_dims {
                let radix = if j + 1 == choice.in_dims {
                    choice.block_a
                } else {
                    p.extent(j)
                };
                let idx = rem % radix;
                rem /= radix;
                off += idx * p.out_stride_of_in_dim(j);
            }
            *slot = off;
        }

        // Grid: blocked remainders of the two slice-terminal dims plus all
        // dims outside the slice.
        let in_set: Vec<usize> = (0..choice.in_dims).collect();
        let out_set: Vec<usize> = (0..choice.out_dims)
            .map(|od| p.perm.output_dim_source(od))
            .collect();
        let mut grid = OuterGrid::new();
        let mut a_grid_pos = None;
        let mut b_grid_pos = None;
        let xa = choice.in_dims - 1;
        if choice.block_a < p.extent(xa) {
            a_grid_pos = Some(grid.dims().len());
            grid.push(GridDim {
                dim: xa,
                extent: p.extent(xa),
                chunk: choice.block_a,
                in_stride: p.in_strides[xa],
                out_stride: p.out_stride_of_in_dim(xa),
            });
        }
        let jb = p.perm.output_dim_source(choice.out_dims - 1);
        if choice.block_b < p.extent(jb) {
            b_grid_pos = Some(grid.dims().len());
            grid.push(GridDim {
                dim: jb,
                extent: p.extent(jb),
                chunk: choice.block_b,
                in_stride: p.in_strides[jb],
                out_stride: p.out_stride_of_in_dim(jb),
            });
        }
        for d in 0..p.rank() {
            if in_set.contains(&d) || out_set.contains(&d) {
                continue;
            }
            grid.push(GridDim {
                dim: d,
                extent: p.extent(d),
                chunk: 1,
                in_stride: p.in_strides[d],
                out_stride: p.out_stride_of_in_dim(d),
            });
        }

        OrthogonalDistinctKernel {
            choice,
            a_vol,
            b_vol,
            in_offset,
            out_offset,
            grid,
            a_grid_pos,
            b_grid_pos,
            a_prefix,
            b_prefix,
            tile_row: if padded { TILE_ROW } else { TILE_ROW_UNPADDED },
            _elem: PhantomData,
        }
    }

    /// Build with the flow-chart default slice choice.
    pub fn with_default_choice(p: &Problem) -> Option<Self> {
        OdChoice::default_for(p).map(|c| Self::new(p, c))
    }

    /// The slice choice in use.
    pub fn choice(&self) -> OdChoice {
        self.choice
    }

    /// Full-slice A and B volumes.
    pub fn slice_vols(&self) -> (usize, usize) {
        (self.a_vol, self.b_vol)
    }

    /// Bytes of offset arrays held in texture memory.
    pub fn offset_array_bytes(&self) -> usize {
        (self.in_offset.len() + self.out_offset.len()) * 4
    }
}

impl<E: Element> BlockKernel<E> for OrthogonalDistinctKernel<E> {
    fn name(&self) -> &str {
        "Orthogonal-Distinct"
    }

    fn launch(&self) -> Launch {
        Launch {
            grid_blocks: self.grid.blocks(),
            threads_per_block: THREADS,
            smem_bytes_per_block: WARP_SIZE * self.tile_row * E::BYTES,
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        let d = self.grid.decode(block);
        acct.special_instr(2 * d.decode_divmods as u64 * THREADS as u64);
        // Current (possibly partial) slice extents.
        let a_cur = match self.a_grid_pos {
            Some(i) => self.a_prefix * d.chunk_extents[i],
            None => self.a_vol,
        };
        let b_cur = match self.b_grid_pos {
            Some(i) => self.b_prefix * d.chunk_extents[i],
            None => self.b_vol,
        };
        let mut sm: SmemSim<E> = SmemSim::new(WARP_SIZE * self.tile_row);

        let ws = WARP_SIZE;
        for bt in 0..b_cur.div_ceil(ws) {
            let rows = (b_cur - bt * ws).min(ws);
            for at in 0..a_cur.div_ceil(ws) {
                let cols = (a_cur - at * ws).min(ws);
                // Copy-in: row r is one warp-wide contiguous input access.
                for r_loc in 0..rows {
                    let r = bt * ws + r_loc;
                    acct.tex_load_contiguous(r, 1); // broadcast in_offset[r]
                    let addr = d.in_base + self.in_offset[r] + at * ws;
                    acct.global_load_contiguous(addr, cols, E::BYTES);
                    acct.smem_access_strided(r_loc * self.tile_row, cols, 1, E::BYTES, false);
                    for c in 0..cols {
                        sm.write(r_loc * self.tile_row + c, io.load(addr + c));
                    }
                    acct.elements(cols as u64);
                }
                acct.barrier();
                // Write-out: column a is one warp-wide contiguous output
                // access; the shared read walks the padded column.
                for a_loc in 0..cols {
                    let a = at * ws + a_loc;
                    acct.tex_load_contiguous(a, 1); // broadcast out_offset[a]
                    let addr = d.out_base + self.out_offset[a] + bt * ws;
                    acct.global_store_contiguous(addr, rows, E::BYTES);
                    acct.smem_access_strided(a_loc, rows, self.tile_row, E::BYTES, true);
                    for r_loc in 0..rows {
                        io.store(addr + r_loc, sm.read(r_loc * self.tile_row + a_loc));
                    }
                }
                acct.barrier();
            }
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        let epb = (128 / E::BYTES).min(32);
        self.grid.block_class(block, epb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_gpu_sim::{DeviceConfig, ExecMode, Executor};
    use ttlg_tensor::{reference, DenseTensor, Permutation, Shape};

    fn run_case(extents: &[usize], perm: &[usize]) -> ttlg_gpu_sim::TransactionStats {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let k = OrthogonalDistinctKernel::<u64>::with_default_choice(&p)
            .expect("OD must apply to this case");
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let mut out = vec![0u64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex
            .run(
                &k,
                input.data(),
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data(), "case {extents:?} perm {perm}");
        assert_eq!(res.stats.elements_moved as usize, p.volume());
        let ana = ex.analyze(&k).unwrap();
        assert_eq!(ana.stats, res.stats);
        res.stats
    }

    #[test]
    fn matrix_transpose_128() {
        let stats = run_case(&[128, 128], &[1, 0]);
        // Fully coalesced: load tx = 128*128*8/128 = 1024 each way.
        assert_eq!(stats.dram_load_tx, 1024);
        assert_eq!(stats.dram_store_tx, 1024);
        assert_eq!(stats.smem_conflict_replays, 0);
    }

    #[test]
    fn matrix_transpose_non_multiple() {
        run_case(&[100, 60], &[1, 0]);
        run_case(&[33, 65], &[1, 0]);
    }

    #[test]
    fn paper_fig2_rank3_reversal() {
        run_case(&[9, 7, 64], &[2, 1, 0]);
    }

    #[test]
    fn paper_sec3_combined_dims() {
        // [a,b,c,d] => [d,c,b,a], extents 16,2,32,32: I={a,b}, O={d}.
        run_case(&[16, 2, 32, 32], &[3, 2, 1, 0]);
    }

    #[test]
    fn rank5_mixed() {
        run_case(&[8, 6, 5, 7, 9], &[4, 2, 3, 0, 1]);
    }

    #[test]
    fn default_choice_truncates_on_overlap() {
        // [a,b,c,d] => [c,b,d,a] extents 8,2,8,8: growing either side to 32
        // would make the sets overlap; the default truncates instead
        // (I = {a,b}, O = {c}: A = 16, B = 8), leaving OD valid but small —
        // the planner's predictor then prefers Orthogonal-Arbitrary.
        let p = Problem::new(
            &Shape::new(&[8, 2, 8, 8]).unwrap(),
            &Permutation::new(&[2, 1, 3, 0]).unwrap(),
        )
        .unwrap();
        let c = OdChoice::default_for(&p).unwrap();
        assert!(c.is_valid(&p));
        assert_eq!((c.a_vol(&p), c.b_vol(&p)), (16, 8));
        // Matching-FVI problems have no OD choice at all.
        let pm = Problem::new(
            &Shape::new(&[8, 8, 8]).unwrap(),
            &Permutation::new(&[0, 2, 1]).unwrap(),
        )
        .unwrap();
        assert!(OdChoice::default_for(&pm).is_none());
    }

    #[test]
    fn default_choice_fig5_shape() {
        // 27^5 with perm 4 1 2 0 3 (the paper's Fig. 5 example): output
        // slice truncates at 27 because output dim 1's source (dim 1) is in
        // the input slice.
        let p = Problem::new(
            &Shape::new(&[27, 27, 27, 27, 27]).unwrap(),
            &Permutation::new(&[4, 1, 2, 0, 3]).unwrap(),
        )
        .unwrap();
        let c = OdChoice::default_for(&p).unwrap();
        assert_eq!(c.in_dims, 2);
        assert_eq!(c.out_dims, 1);
        assert_eq!(c.b_vol(&p), 27);
        assert_eq!(c.a_vol(&p), 54);
    }

    #[test]
    fn fig5_case_correctness_small() {
        // Same permutation structure as Fig. 5 at a testable size.
        run_case(&[9, 9, 9, 9, 9], &[4, 1, 2, 0, 3]);
    }

    #[test]
    fn choice_volumes() {
        let p = Problem::new(
            &Shape::new(&[16, 2, 32, 32]).unwrap(),
            &Permutation::new(&[3, 2, 1, 0]).unwrap(),
        )
        .unwrap();
        let c = OdChoice::default_for(&p).unwrap();
        assert_eq!(c.a_vol(&p), 32); // {a, b}
        assert_eq!(c.b_vol(&p), 32); // {d}
        assert_eq!(c.in_dims, 2);
        assert_eq!(c.out_dims, 1);
    }

    #[test]
    fn wider_slices_also_correct() {
        let shape = Shape::new(&[27, 27, 27]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        // A = 27*3 = 81 (block 3 of dim 1... dim 1 is in neither side's
        // default), B = 27 * 2: use explicit wider choice.
        let c = OdChoice {
            in_dims: 2,
            block_a: 3,
            out_dims: 1,
            block_b: 27,
        };
        assert!(c.is_valid(&p));
        let k = OrthogonalDistinctKernel::<u64>::new(&p, c);
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        let mut out = vec![0u64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        ex.run(
            &k,
            input.data(),
            &mut out,
            ExecMode::Execute {
                check_disjoint_writes: true,
            },
        )
        .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data());
    }

    #[test]
    fn no_bank_conflicts_thanks_to_padding() {
        let stats = run_case(&[64, 5, 64], &[2, 1, 0]);
        assert_eq!(stats.smem_conflict_replays, 0);
    }

    #[test]
    fn offset_arrays_sized_by_slice() {
        let p = Problem::new(
            &Shape::new(&[128, 128]).unwrap(),
            &Permutation::new(&[1, 0]).unwrap(),
        )
        .unwrap();
        let k = OrthogonalDistinctKernel::<f32>::with_default_choice(&p).unwrap();
        let (a, b) = k.slice_vols();
        assert_eq!((a, b), (32, 32));
        assert_eq!(k.offset_array_bytes(), (32 + 32) * 4);
    }

    #[test]
    fn unpadded_tile_conflicts_but_stays_correct() {
        let shape = Shape::new(&[64, 64]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let p = Problem::new(&shape, &perm).unwrap();
        let c = OdChoice::default_for(&p).unwrap();
        let k = OrthogonalDistinctKernel::<f64>::new_with_padding(&p, c, false);
        let input: DenseTensor<f64> = DenseTensor::iota(shape);
        let mut out = vec![0.0f64; p.volume()];
        let ex = Executor::new(DeviceConfig::k40c());
        let res = ex
            .run(
                &k,
                input.data(),
                &mut out,
                ExecMode::Execute {
                    check_disjoint_writes: true,
                },
            )
            .unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out, expect.data());
        // Unpadded column reads serialize 32-ways: massive replay count.
        assert!(res.stats.smem_conflict_replays > 0);
        let kp = OrthogonalDistinctKernel::<f64>::new(&p, c);
        let padded = ex.analyze(&kp).unwrap();
        assert_eq!(padded.stats.smem_conflict_replays, 0);
    }

    #[test]
    fn invalid_choice_detection() {
        let p = Problem::new(
            &Shape::new(&[16, 16, 16]).unwrap(),
            &Permutation::new(&[2, 1, 0]).unwrap(),
        )
        .unwrap();
        // in: {0,1}, out: {2,1}: overlap on dim 1.
        assert!(!OdChoice {
            in_dims: 2,
            block_a: 16,
            out_dims: 2,
            block_b: 16
        }
        .is_valid(&p));
        // zero dims invalid
        assert!(!OdChoice {
            in_dims: 0,
            block_a: 1,
            out_dims: 1,
            block_b: 1
        }
        .is_valid(&p));
        // block too large
        assert!(!OdChoice {
            in_dims: 1,
            block_a: 17,
            out_dims: 1,
            block_b: 16
        }
        .is_valid(&p));
    }
}
