//! The taxonomy of transposition schemas (paper Fig. 3 / Alg. 1).
//!
//! Given a fused problem, [`applicable_schemas`] reproduces the decision
//! flow-chart: compare the fastest-varying indices (FVI) of input and
//! output; combine leading dimensions on each side until the combined
//! volume reaches the warp size; dispatch on whether the combined sets
//! overlap. Where the paper says a choice is "based on performance
//! prediction", we return every applicable schema (preferred first) and let
//! the planner's predictor pick.

use crate::problem::Problem;
use ttlg_tensor::WARP_SIZE;

/// The four data-movement schemas of the paper, plus the degenerate copy
/// (identity permutation after fusion) and the naive baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schema {
    /// Identity after fusion: a grid-strided memcpy.
    Copy,
    /// Matching FVI with extent >= warp size: direct coalesced copy
    /// without shared memory (Alg. 7).
    FviMatchLarge,
    /// Matching FVI with extent < warp size: `b x b x N0` shared-memory
    /// staging (Alg. 6).
    FviMatchSmall,
    /// Non-matching FVI, disjoint combined index sets: padded-tile
    /// transpose (Alg. 2).
    OrthogonalDistinct,
    /// The general case: indirection-array kernel (Algs. 4 + 5).
    OrthogonalArbitrary,
    /// d-nested-loop baseline (never chosen by the taxonomy; used for
    /// ablations and the naive comparison).
    Naive,
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Schema::Copy => "Copy",
            Schema::FviMatchLarge => "FVI-Match-Large",
            Schema::FviMatchSmall => "FVI-Match-Small",
            Schema::OrthogonalDistinct => "Orthogonal-Distinct",
            Schema::OrthogonalArbitrary => "Orthogonal-Arbitrary",
            Schema::Naive => "Naive",
        };
        f.write_str(s)
    }
}

/// The combined fastest-varying index sets of Alg. 1: walk dimensions from
/// the fastest until the combined volume reaches `target` (the paper's
/// required slice size `B`, default the warp size).
///
/// Returns `(I, O, i_vol, o_vol)` where `I` / `O` are the *input-dim ids*
/// combined on the input / output side and `i_vol` / `o_vol` their
/// combined volumes.
pub fn combined_fvi_sets(p: &Problem, target: usize) -> (Vec<usize>, Vec<usize>, usize, usize) {
    let mut i_set = Vec::new();
    let mut i_vol = 1usize;
    let mut idx = 0usize;
    while i_vol < target && idx < p.rank() {
        i_vol *= p.extent(idx);
        i_set.push(idx);
        idx += 1;
    }
    let mut o_set = Vec::new();
    let mut o_vol = 1usize;
    let mut odx = 0usize;
    while o_vol < target && odx < p.rank() {
        let in_dim = p.perm.output_dim_source(odx);
        o_vol *= p.extent(in_dim);
        o_set.push(in_dim);
        odx += 1;
    }
    (i_set, o_set, i_vol, o_vol)
}

/// Alg. 1: the schemas applicable to a fused problem, preferred first.
///
/// The first entry is the flow-chart's primary choice; later entries are
/// the alternatives the paper resolves "based on performance prediction".
pub fn applicable_schemas(p: &Problem) -> Vec<Schema> {
    if p.is_copy() {
        return vec![Schema::Copy];
    }
    let ws = WARP_SIZE;
    if p.perm.fvi_matches() {
        let n0 = p.extent(0);
        if n0 >= ws {
            // Direct copy is the flow-chart pick; the general kernel stays
            // on the candidate list for the model to rank (it wins when
            // combining dims widens the contiguous runs).
            return vec![Schema::FviMatchLarge, Schema::OrthogonalArbitrary];
        }
        // After fusion, rank >= 3 whenever the FVI matches and the
        // permutation is not the identity (dims 0 and 1 would have fused
        // if output dim 1 were input dim 1). On *unfused* problems
        // (ablation use), output dim 1 can still be input dim 1, in which
        // case the small-FVI staging scheme does not apply.
        let ik = p.perm.output_dim_source(1); // output's 2nd-fastest, as input dim
        if p.rank() < 3 || ik < 2 {
            return vec![Schema::OrthogonalArbitrary];
        }
        let n1 = p.extent(1);
        let nk = p.extent(ik);
        if n0 * n1 >= ws && n0 * nk >= ws {
            return vec![Schema::FviMatchSmall, Schema::OrthogonalArbitrary];
        }
        return vec![Schema::OrthogonalArbitrary, Schema::FviMatchSmall];
    }
    // Non-matching FVI: both orthogonal kernels apply (Orthogonal-Distinct
    // always admits at least the truncated slice I = {i0}, O = {rho(i0)});
    // the flow-chart's preference goes to OD when the warp-size combined
    // sets are disjoint, to OA when they overlap, and the performance
    // model resolves the final choice either way (Sec. V).
    let (i_set, o_set, _, _) = combined_fvi_sets(p, ws);
    let disjoint = i_set.iter().all(|d| !o_set.contains(d));
    if disjoint {
        vec![Schema::OrthogonalDistinct, Schema::OrthogonalArbitrary]
    } else {
        vec![Schema::OrthogonalArbitrary, Schema::OrthogonalDistinct]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::{Permutation, Shape};

    fn prob(extents: &[usize], perm: &[usize]) -> Problem {
        Problem::new(
            &Shape::new(extents).unwrap(),
            &Permutation::new(perm).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn identity_is_copy() {
        let p = prob(&[8, 8, 8], &[0, 1, 2]);
        assert_eq!(applicable_schemas(&p), vec![Schema::Copy]);
    }

    #[test]
    fn matching_large_fvi() {
        // [a,b,c,d] => [a,d,c,b] with a = 64 >= 32.
        let p = prob(&[64, 8, 8, 8], &[0, 3, 2, 1]);
        let s = applicable_schemas(&p);
        assert_eq!(s[0], Schema::FviMatchLarge);
        assert!(s.contains(&Schema::OrthogonalArbitrary));
    }

    #[test]
    fn matching_small_fvi() {
        // [a,b,c,d] => [a,d,c,b] with a = 8: 8*8 >= 32 both sides.
        let p = prob(&[8, 8, 8, 8], &[0, 3, 2, 1]);
        let s = applicable_schemas(&p);
        assert_eq!(s[0], Schema::FviMatchSmall);
        assert!(s.contains(&Schema::OrthogonalArbitrary));
    }

    #[test]
    fn matching_tiny_fvi_prefers_arbitrary() {
        // a = 2, b = 2: 2*2 < 32 -> OA preferred, Small fallback.
        let p = prob(&[2, 2, 64, 64], &[0, 3, 2, 1]);
        let s = applicable_schemas(&p);
        assert_eq!(s[0], Schema::OrthogonalArbitrary);
        assert_eq!(s[1], Schema::FviMatchSmall);
    }

    #[test]
    fn paper_disjoint_example() {
        // Sec. III: [a,b,c,d] => [d,c,b,a] extents 16,2,32,32:
        // I = {a,b} (vol 32), O = {d} (vol 32): disjoint -> OD.
        let p = prob(&[16, 2, 32, 32], &[3, 2, 1, 0]);
        let (i, o, iv, ov) = combined_fvi_sets(&p, 32);
        assert_eq!(i, vec![0, 1]);
        assert_eq!(o, vec![3]);
        assert_eq!((iv, ov), (32, 32));
        assert_eq!(applicable_schemas(&p)[0], Schema::OrthogonalDistinct);
    }

    #[test]
    fn paper_overlap_example() {
        // Sec. III: [a,b,c,d] => [c,b,d,a] extents 8,2,8,8:
        // I = {a,b,c} (vol 128), O = {c,b,d} -> overlap -> OA.
        let p = prob(&[8, 2, 8, 8], &[2, 1, 3, 0]);
        let (i, o, _, _) = combined_fvi_sets(&p, 32);
        assert_eq!(i, vec![0, 1, 2]);
        assert_eq!(o, vec![2, 1, 3]);
        assert_eq!(
            applicable_schemas(&p),
            vec![Schema::OrthogonalArbitrary, Schema::OrthogonalDistinct]
        );
    }

    #[test]
    fn matrix_transpose_is_orthogonal_distinct() {
        let p = prob(&[128, 128], &[1, 0]);
        assert_eq!(applicable_schemas(&p)[0], Schema::OrthogonalDistinct);
    }

    #[test]
    fn combined_sets_respect_target() {
        let p = prob(&[4, 4, 4, 4], &[3, 2, 1, 0]);
        let (i, _, iv, _) = combined_fvi_sets(&p, 64);
        assert_eq!(i, vec![0, 1, 2]);
        assert_eq!(iv, 64);
    }

    #[test]
    fn schema_display() {
        assert_eq!(
            Schema::OrthogonalDistinct.to_string(),
            "Orthogonal-Distinct"
        );
        assert_eq!(Schema::FviMatchSmall.to_string(), "FVI-Match-Small");
    }
}
