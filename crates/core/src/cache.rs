//! Plan caching for the repeated-use scenario.
//!
//! The paper's evaluation distinguishes single-use (plan + one run) from
//! repeated-use (plan once, run many times — Fig. 12). This module makes
//! the repeated-use pattern a one-liner and scales it to many concurrent
//! clients:
//!
//! * [`ShardedPlanCache`] — the concurrent engine: plans keyed by
//!   `(extents, permutation, options fingerprint)` across N mutex shards,
//!   **single-flight** planning (concurrent misses on one key block on a
//!   single builder instead of racing), per-shard LRU eviction under a
//!   configurable capacity, and lock-free atomic hit/miss/eviction
//!   counters. `ttlg-runtime` builds its multi-tenant service on this
//!   type.
//! * [`PlanCache`] — the original single-tenant API, kept as a thin
//!   compatibility wrapper over one unbounded shard.

use crate::backend::Backend;
use crate::plan::{Plan, PlanError, TransposeOptions, TransposeReport, Transposer};
use crate::schema::Schema;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use ttlg_tensor::{DenseTensor, Element, Permutation, Shape};

/// Cache key: extents + permutation + the options that affect planning.
///
/// Public so higher layers (the runtime's batcher) can group requests by
/// the plan they will share without re-deriving the fingerprint rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    extents: Vec<usize>,
    perm: Vec<usize>,
    forced: Option<Schema>,
    fusion: bool,
    sweep: bool,
    overbooking: usize,
    backend: Option<Backend>,
}

impl PlanKey {
    /// Fingerprint of `(shape, perm, opts)` — equal keys share a plan.
    pub fn new(shape: &Shape, perm: &Permutation, opts: &TransposeOptions) -> PlanKey {
        PlanKey {
            extents: shape.extents().to_vec(),
            perm: perm.as_slice().to_vec(),
            forced: opts.forced_schema,
            fusion: opts.enable_fusion,
            sweep: opts.model_sweep,
            overbooking: opts.overbooking,
            backend: opts.backend,
        }
    }

    /// Stable hash used for shard selection.
    fn shard_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// The tensor extents this key fingerprints.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// The permutation entries this key fingerprints.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Reconstruct the planning inputs behind this key, so a cached
    /// problem can be re-planned from the key alone (the runtime's
    /// autotuner re-tunes hot keys this way). `check_disjoint_writes` is
    /// not part of the fingerprint and comes back as its default.
    pub fn problem_parts(&self) -> (Shape, Permutation, TransposeOptions) {
        let shape = Shape::new(&self.extents).expect("key was built from a valid shape");
        let perm = Permutation::new(&self.perm).expect("key was built from a valid permutation");
        let opts = TransposeOptions {
            forced_schema: self.forced,
            enable_fusion: self.fusion,
            model_sweep: self.sweep,
            overbooking: self.overbooking,
            check_disjoint_writes: false,
            backend: self.backend,
        };
        (shape, perm, opts)
    }

    /// The backend constraint this key fingerprints (`None` = the caller
    /// asked for a cross-backend sweep).
    pub fn backend(&self) -> Option<Backend> {
        self.backend
    }

    /// Stable 64-bit identity of the *problem* this key names — FNV-1a
    /// over every field that affects planning, independent of hasher
    /// seeds and process lifetime. Two requests with equal fingerprints
    /// describe the same transposition problem end-to-end, so runtime
    /// layers can use this as the single-flight coalescing key (combined
    /// with input identity) without re-deriving the fingerprint rules.
    pub fn problem_fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, byte: u8) {
            *h ^= byte as u64;
            *h = h.wrapping_mul(FNV_PRIME);
        }
        fn mix_usize(h: &mut u64, v: usize) {
            for byte in (v as u64).to_le_bytes() {
                mix(h, byte);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        mix_usize(&mut h, self.extents.len());
        for &e in &self.extents {
            mix_usize(&mut h, e);
        }
        for &p in &self.perm {
            mix_usize(&mut h, p);
        }
        mix(
            &mut h,
            match self.forced {
                None => 0xff,
                Some(s) => s as u8,
            },
        );
        mix(&mut h, self.fusion as u8);
        mix(&mut h, self.sweep as u8);
        mix_usize(&mut h, self.overbooking);
        mix(
            &mut h,
            match self.backend {
                None => 0xff,
                Some(Backend::GpuSim) => 0,
                Some(Backend::Cpu) => 1,
            },
        );
        h
    }
}

/// Wall-clock split of one plan fetch (see
/// [`ShardedPlanCache::get_or_plan_keyed_timed`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchTiming {
    /// Time on the lookup side: shard lock, LRU touch, and any wait for
    /// another caller's in-flight build of the same key.
    pub lookup_ns: u64,
    /// Time inside `Transposer::plan` when this call built the plan;
    /// 0 on a hit.
    pub build_ns: u64,
}

/// Cache usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans built on demand.
    pub misses: u64,
    /// Plans dropped by LRU eviction.
    pub evictions: u64,
}

/// Configuration for a [`ShardedPlanCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of mutex shards (keys are hash-distributed across them).
    pub shards: usize,
    /// Max resident plans per shard; `0` means unbounded.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 64,
        }
    }
}

/// Slot state within a shard: either a resident plan (with its LRU stamp)
/// or a build in flight that waiters block on.
enum Entry<E: Element> {
    Ready {
        plan: Arc<Plan<E>>,
        last_used: u64,
        /// Pinned plans (measured-best, installed by the autotuner) are
        /// exempt from LRU eviction and do not count against capacity:
        /// plain cache pressure must never silently replace a warmed
        /// plan with a stale model pick.
        pinned: bool,
    },
    Building,
}

struct ShardState<E: Element> {
    map: HashMap<PlanKey, Entry<E>>,
    /// Monotonic use counter; higher = more recently used.
    tick: u64,
}

struct Shard<E: Element> {
    state: Mutex<ShardState<E>>,
    /// Signalled when an in-flight build completes (or fails).
    built: Condvar,
}

impl<E: Element> Shard<E> {
    fn new() -> Self {
        Shard {
            state: Mutex::new(ShardState {
                map: HashMap::new(),
                tick: 0,
            }),
            built: Condvar::new(),
        }
    }
}

/// A sharded, bounded, single-flight cache of transposition plans for one
/// element type.
///
/// Concurrency contract:
/// * a hit touches only its shard's mutex (briefly) and one atomic;
/// * concurrent misses on the *same* key build the plan exactly once —
///   one caller plans while the rest wait on the shard condvar;
/// * concurrent misses on *different* keys in different shards proceed
///   fully in parallel;
/// * planning happens outside the shard lock, so a slow build never
///   blocks hits on other keys in the same shard.
pub struct ShardedPlanCache<E: Element> {
    shards: Vec<Shard<E>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<E: Element> ShardedPlanCache<E> {
    /// An empty cache with the given shard count and per-shard capacity.
    pub fn with_config(cfg: CacheConfig) -> Self {
        let n = cfg.shards.max(1);
        ShardedPlanCache {
            shards: (0..n).map(|_| Shard::new()).collect(),
            capacity_per_shard: cfg.capacity_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An empty cache with the default configuration.
    pub fn new() -> Self {
        Self::with_config(CacheConfig::default())
    }

    fn shard(&self, key: &PlanKey) -> &Shard<E> {
        let n = self.shards.len();
        &self.shards[(key.shard_hash() % n as u64) as usize]
    }

    /// Fetch the plan for `key`, building it with `t` on first use.
    ///
    /// This is the single-flight core: the first caller to miss becomes
    /// the builder; concurrent callers for the same key block until the
    /// build completes and then share the result. If the build fails, the
    /// slot is released, the error is returned to the builder, and one
    /// waiter takes over as the next builder (so a transient failure does
    /// not wedge the key).
    pub fn get_or_plan_keyed(
        &self,
        t: &Transposer,
        key: &PlanKey,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<Arc<Plan<E>>, PlanError> {
        self.get_or_plan_keyed_flagged(t, key, shape, perm, opts)
            .map(|(plan, _)| plan)
    }

    /// [`Self::get_or_plan_keyed`] plus per-call attribution: the returned
    /// flag is `true` when this call was served from the cache (including
    /// waiting out another caller's in-flight build) and `false` when this
    /// call built the plan itself. The aggregate counters in
    /// [`Self::stats`] cannot tell an individual caller which side it was
    /// on; the runtime's request traces need to know.
    pub fn get_or_plan_keyed_flagged(
        &self,
        t: &Transposer,
        key: &PlanKey,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<(Arc<Plan<E>>, bool), PlanError> {
        self.get_or_plan_keyed_timed(t, key, shape, perm, opts)
            .map(|(plan, hit, _)| (plan, hit))
    }

    /// [`Self::get_or_plan_keyed_flagged`] plus a wall-clock split of
    /// where the fetch spent its time: the lookup side (shard lock,
    /// LRU touch, waiting out another caller's single-flight build) vs
    /// the build side (`Transposer::plan` itself; 0 on a hit). The
    /// tracing layer renders these as the `cache-lookup` and
    /// `plan-build` child spans of `plan`.
    pub fn get_or_plan_keyed_timed(
        &self,
        t: &Transposer,
        key: &PlanKey,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<(Arc<Plan<E>>, bool, FetchTiming), PlanError> {
        enum Slot {
            Ready,
            Building,
            Vacant,
        }
        let fetch_started = std::time::Instant::now();
        let shard = self.shard(key);
        let mut state = shard.state.lock().expect("cache shard poisoned");
        loop {
            let slot = match state.map.get(key) {
                Some(Entry::Ready { .. }) => Slot::Ready,
                Some(Entry::Building) => Slot::Building,
                None => Slot::Vacant,
            };
            match slot {
                Slot::Ready => {
                    state.tick += 1;
                    let tick = state.tick;
                    let Some(Entry::Ready {
                        plan, last_used, ..
                    }) = state.map.get_mut(key)
                    else {
                        unreachable!("entry changed while the shard lock was held");
                    };
                    *last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let timing = FetchTiming {
                        lookup_ns: fetch_started.elapsed().as_nanos() as u64,
                        build_ns: 0,
                    };
                    return Ok((Arc::clone(plan), true, timing));
                }
                Slot::Building => {
                    state = shard.built.wait(state).expect("cache shard poisoned");
                }
                Slot::Vacant => break,
            }
        }
        // We are the builder for this key.
        state.map.insert(key.clone(), Entry::Building);
        drop(state);
        let build_started = std::time::Instant::now();
        let built = t.plan::<E>(shape, perm, opts);
        let build_ns = build_started.elapsed().as_nanos() as u64;
        let mut state = shard.state.lock().expect("cache shard poisoned");
        match built {
            Ok(plan) => {
                let plan = Arc::new(plan);
                state.tick += 1;
                let stamp = state.tick;
                let pinned = plan.is_measured();
                state.map.insert(
                    key.clone(),
                    Entry::Ready {
                        plan: Arc::clone(&plan),
                        last_used: stamp,
                        pinned,
                    },
                );
                self.evict_locked(&mut state);
                self.misses.fetch_add(1, Ordering::Relaxed);
                shard.built.notify_all();
                let total = fetch_started.elapsed().as_nanos() as u64;
                let timing = FetchTiming {
                    lookup_ns: total.saturating_sub(build_ns),
                    build_ns,
                };
                Ok((plan, false, timing))
            }
            Err(e) => {
                state.map.remove(key);
                shard.built.notify_all();
                Err(e)
            }
        }
    }

    /// Fetch the plan for `(shape, perm, opts)`, building it on first use.
    pub fn get_or_plan(
        &self,
        t: &Transposer,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<Arc<Plan<E>>, PlanError> {
        let key = PlanKey::new(shape, perm, opts);
        self.get_or_plan_keyed(t, &key, shape, perm, opts)
    }

    /// Install (or replace) the resident plan for `key` without touching
    /// the hit/miss counters — cache *warming*, used by the runtime's
    /// autotuner to swap a measured-best plan over the modeled one.
    /// Measured plans ([`Plan::is_measured`]) are installed **pinned**:
    /// exempt from LRU eviction, so cache pressure can never silently
    /// fall a hot key back to a stale model pick.
    /// Returns `false` (installing nothing) while a single-flight build
    /// for the key is in flight: replacing a `Building` slot would strand
    /// its waiters, and the tuner can simply retry on a later pass.
    pub fn warm(&self, key: &PlanKey, plan: Arc<Plan<E>>) -> bool {
        let shard = self.shard(key);
        let mut state = shard.state.lock().expect("cache shard poisoned");
        if matches!(state.map.get(key), Some(Entry::Building)) {
            return false;
        }
        state.tick += 1;
        let stamp = state.tick;
        let pinned = plan.is_measured();
        state.map.insert(
            key.clone(),
            Entry::Ready {
                plan,
                last_used: stamp,
                pinned,
            },
        );
        self.evict_locked(&mut state);
        true
    }

    /// Number of pinned (measured-best, eviction-exempt) resident plans.
    pub fn pinned_plans(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.state
                    .lock()
                    .expect("cache shard poisoned")
                    .map
                    .values()
                    .filter(|e| matches!(e, Entry::Ready { pinned: true, .. }))
                    .count()
            })
            .sum()
    }

    /// Release the pin on `key`'s resident plan, returning it to the
    /// ordinary LRU population (it keeps its plan and `last_used` stamp,
    /// so it is not dropped immediately — just no longer exempt). Used by
    /// the autotuner's unpin policy: a key that has gone cold no longer
    /// deserves eviction immunity. Returns `true` only when a pinned
    /// resident plan was actually unpinned. Eviction runs immediately so
    /// a shard over capacity shrinks without waiting for the next insert.
    pub fn unpin(&self, key: &PlanKey) -> bool {
        let shard = self.shard(key);
        let mut state = shard.state.lock().expect("cache shard poisoned");
        match state.map.get_mut(key) {
            Some(Entry::Ready { pinned, .. }) if *pinned => {
                *pinned = false;
                self.evict_locked(&mut state);
                true
            }
            _ => false,
        }
    }

    /// The resident plan for `key`, if any — no hit/miss accounting and
    /// no LRU touch, so diagnostics (and the autotuner) can inspect the
    /// cache without skewing its behavior.
    pub fn peek(&self, key: &PlanKey) -> Option<Arc<Plan<E>>> {
        let shard = self.shard(key);
        let state = shard.state.lock().expect("cache shard poisoned");
        match state.map.get(key) {
            Some(Entry::Ready { plan, .. }) => Some(Arc::clone(plan)),
            _ => None,
        }
    }

    /// Evict least-recently-used resident plans beyond the capacity.
    /// In-flight builds and pinned (measured-best) plans never count
    /// against capacity nor fall to eviction.
    fn evict_locked(&self, state: &mut ShardState<E>) {
        if self.capacity_per_shard == 0 {
            return;
        }
        loop {
            let resident = state
                .map
                .values()
                .filter(|e| matches!(e, Entry::Ready { pinned: false, .. }))
                .count();
            if resident <= self.capacity_per_shard {
                return;
            }
            let oldest = state
                .map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready {
                        last_used,
                        pinned: false,
                        ..
                    } => Some((*last_used, k.clone())),
                    _ => None,
                })
                .min_by_key(|(stamp, _)| *stamp)
                .map(|(_, k)| k)
                .expect("resident > capacity >= 1 implies an unpinned Ready entry");
            state.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Transpose with plan reuse.
    pub fn transpose(
        &self,
        t: &Transposer,
        input: &DenseTensor<E>,
        perm: &Permutation,
    ) -> Result<(DenseTensor<E>, TransposeReport), PlanError> {
        let plan = self.get_or_plan(t, input.shape(), perm, &TransposeOptions::default())?;
        t.execute(&plan, input)
    }

    /// Number of resident plans (in-flight builds excluded).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.state
                    .lock()
                    .expect("cache shard poisoned")
                    .map
                    .values()
                    .filter(|e| matches!(e, Entry::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// Whether the cache holds no resident plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Hit/miss/eviction counters (atomic snapshot of each).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop every resident plan (counters are kept; in-flight builds
    /// complete and re-insert themselves).
    pub fn clear(&self) {
        for s in &self.shards {
            s.state
                .lock()
                .expect("cache shard poisoned")
                .map
                .retain(|_, e| matches!(e, Entry::Building));
        }
    }
}

impl<E: Element> Default for ShardedPlanCache<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// A concurrent cache of transposition plans for one element type.
///
/// Compatibility wrapper over a single unbounded [`ShardedPlanCache`]
/// shard: same API as the original `PlanCache`, now with single-flight
/// planning (racing callers no longer build duplicate plans) and atomic
/// counters (stats can no longer drift from the plan map).
///
/// ```
/// use ttlg::{PlanCache, Transposer};
/// use ttlg_tensor::{DenseTensor, Permutation, Shape};
///
/// let t = Transposer::new_k40c();
/// let cache: PlanCache<f64> = PlanCache::new();
/// let input: DenseTensor<f64> = DenseTensor::iota(Shape::new(&[16, 16]).unwrap());
/// let perm = Permutation::new(&[1, 0]).unwrap();
/// for _ in 0..3 {
///     cache.transpose(&t, &input, &perm).unwrap();
/// }
/// assert_eq!(cache.stats().misses, 1); // planned once, reused twice
/// ```
pub struct PlanCache<E: Element> {
    inner: ShardedPlanCache<E>,
}

impl<E: Element> Default for PlanCache<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Element> PlanCache<E> {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            inner: ShardedPlanCache::with_config(CacheConfig {
                shards: 1,
                capacity_per_shard: 0,
            }),
        }
    }

    /// Fetch the plan for `(shape, perm, opts)`, building it on first use.
    pub fn get_or_plan(
        &self,
        t: &Transposer,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<Arc<Plan<E>>, PlanError> {
        self.inner.get_or_plan(t, shape, perm, opts)
    }

    /// Transpose with plan reuse: plans are built once per distinct
    /// problem and reused on every subsequent call.
    pub fn transpose(
        &self,
        t: &Transposer,
        input: &DenseTensor<E>,
        perm: &Permutation,
    ) -> Result<(DenseTensor<E>, TransposeReport), PlanError> {
        self.inner.transpose(t, input, perm)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        self.inner.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::reference;

    #[test]
    fn second_call_hits_the_cache() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<u64> = PlanCache::new();
        let shape = Shape::new(&[16, 8, 4]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (out1, _) = cache.transpose(&t, &input, &perm).unwrap();
        let (out2, _) = cache.transpose(&t, &input, &perm).unwrap();
        assert_eq!(out1.data(), out2.data());
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out1.data(), expect.data());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_problems_get_distinct_plans() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<f64> = PlanCache::new();
        let opts = TransposeOptions::default();
        let s1 = Shape::new(&[8, 8]).unwrap();
        let s2 = Shape::new(&[16, 8]).unwrap();
        let p = Permutation::new(&[1, 0]).unwrap();
        cache.get_or_plan(&t, &s1, &p, &opts).unwrap();
        cache.get_or_plan(&t, &s2, &p, &opts).unwrap();
        // Different options are different cache entries too.
        let opts2 = TransposeOptions {
            model_sweep: false,
            ..Default::default()
        };
        cache.get_or_plan(&t, &s1, &p, &opts2).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn clear_resets_plans_but_not_stats() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<f64> = PlanCache::new();
        let s = Shape::new(&[8, 8]).unwrap();
        let p = Permutation::new(&[1, 0]).unwrap();
        cache
            .get_or_plan(&t, &s, &p, &TransposeOptions::default())
            .unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<u32> = PlanCache::new();
        let shape = Shape::new(&[16, 16]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        ttlg_tensor::parallel::parallel_for_threads(8, 1, 4, |_| {
            let plan = cache
                .get_or_plan(&t, &shape, &perm, &TransposeOptions::default())
                .expect("plannable");
            assert!(plan.predicted_ns() > 0.0);
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
        // Single-flight: with one key there is exactly one build even
        // under concurrency (the old implementation allowed duplicates).
        assert_eq!(s.misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sharded_cache_evicts_lru() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::with_config(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        let opts = TransposeOptions::default();
        let p = Permutation::new(&[1, 0]).unwrap();
        let s1 = Shape::new(&[8, 8]).unwrap();
        let s2 = Shape::new(&[16, 8]).unwrap();
        let s3 = Shape::new(&[32, 8]).unwrap();
        cache.get_or_plan(&t, &s1, &p, &opts).unwrap();
        cache.get_or_plan(&t, &s2, &p, &opts).unwrap();
        // Touch s1 so s2 becomes the LRU entry.
        cache.get_or_plan(&t, &s1, &p, &opts).unwrap();
        cache.get_or_plan(&t, &s3, &p, &opts).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(cache.len(), 2);
        // s1 survived (recently used): hitting it builds nothing new.
        let misses_before = cache.stats().misses;
        cache.get_or_plan(&t, &s1, &p, &opts).unwrap();
        assert_eq!(cache.stats().misses, misses_before);
        // s2 was evicted: asking again rebuilds.
        cache.get_or_plan(&t, &s2, &p, &opts).unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn flagged_fetch_attributes_hits_and_misses() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::new();
        let shape = Shape::new(&[16, 8]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let opts = TransposeOptions::default();
        let key = PlanKey::new(&shape, &perm, &opts);
        let (_, hit) = cache
            .get_or_plan_keyed_flagged(&t, &key, &shape, &perm, &opts)
            .unwrap();
        assert!(!hit, "first fetch builds");
        let (_, hit) = cache
            .get_or_plan_keyed_flagged(&t, &key, &shape, &perm, &opts)
            .unwrap();
        assert!(hit, "second fetch is served from cache");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn plan_key_round_trips_problem_parts() {
        let shape = Shape::new(&[9, 7, 5]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let opts = TransposeOptions {
            forced_schema: Some(Schema::Naive),
            enable_fusion: false,
            model_sweep: false,
            overbooking: 3,
            check_disjoint_writes: true,
            backend: Some(Backend::Cpu),
        };
        let key = PlanKey::new(&shape, &perm, &opts);
        assert_eq!(key.extents(), shape.extents());
        assert_eq!(key.perm(), perm.as_slice());
        let (s2, p2, o2) = key.problem_parts();
        assert_eq!(s2.extents(), shape.extents());
        assert_eq!(p2.as_slice(), perm.as_slice());
        assert_eq!(o2.forced_schema, opts.forced_schema);
        assert_eq!(o2.enable_fusion, opts.enable_fusion);
        assert_eq!(o2.model_sweep, opts.model_sweep);
        assert_eq!(o2.overbooking, opts.overbooking);
        assert_eq!(o2.backend, opts.backend);
        assert_eq!(key.backend(), opts.backend);
        // Not fingerprinted; comes back as the default.
        assert!(!o2.check_disjoint_writes);
        assert_eq!(key, PlanKey::new(&s2, &p2, &o2));
    }

    #[test]
    fn unpin_releases_eviction_immunity() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::with_config(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        let opts = TransposeOptions::default();
        let p = Permutation::new(&[1, 0]).unwrap();
        let hot_shape = Shape::new(&[16, 8]).unwrap();
        let hot_key = PlanKey::new(&hot_shape, &p, &opts);
        let (_, ranked) = t.plan_topk::<u64>(&hot_shape, &p, &opts, 1).unwrap();
        let warmed = t
            .plan_for_candidate::<u64>(&hot_shape, &p, &opts, ranked[0].candidate.clone(), 42.0)
            .unwrap();
        assert!(cache.warm(&hot_key, Arc::new(warmed)));
        assert_eq!(cache.pinned_plans(), 1);
        // Unpinning an absent or already-unpinned key is a no-op.
        let other = PlanKey::new(&Shape::new(&[8, 8]).unwrap(), &p, &opts);
        assert!(!cache.unpin(&other));
        // Unpin the hot key: still resident (under capacity), but no
        // longer counted as pinned and no longer eviction-exempt.
        assert!(cache.unpin(&hot_key));
        assert!(!cache.unpin(&hot_key), "second unpin is a no-op");
        assert_eq!(cache.pinned_plans(), 0);
        assert!(cache.peek(&hot_key).is_some());
        // LRU pressure now evicts it like any modeled plan.
        for n in 2..=5usize {
            let s = Shape::new(&[8 * n, 8]).unwrap();
            cache.get_or_plan(&t, &s, &p, &opts).unwrap();
        }
        assert!(
            cache.peek(&hot_key).is_none(),
            "unpinned plan falls to LRU under pressure"
        );
    }

    #[test]
    fn warm_replaces_resident_plan_without_counting() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::new();
        let shape = Shape::new(&[16, 8]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let opts = TransposeOptions::default();
        let key = PlanKey::new(&shape, &perm, &opts);
        assert!(cache.peek(&key).is_none());
        cache.get_or_plan(&t, &shape, &perm, &opts).unwrap();
        let before = cache.stats();
        // Swap in a plan with a distinctive predicted time, as the
        // autotuner does with a measured-best candidate.
        let (_, ranked) = t.plan_topk::<u64>(&shape, &perm, &opts, 2).unwrap();
        let warmed = t
            .plan_for_candidate::<u64>(&shape, &perm, &opts, ranked[0].candidate.clone(), 42.0)
            .unwrap();
        assert!(cache.warm(&key, Arc::new(warmed)));
        assert_eq!(cache.stats(), before, "warming skews no counters");
        assert_eq!(cache.len(), 1);
        let peeked = cache.peek(&key).expect("warmed plan resident");
        assert!((peeked.predicted_ns() - 42.0).abs() < 1e-12);
        assert_eq!(cache.stats(), before, "peek skews no counters either");
        // The next fetch is a hit served from the warmed plan.
        let fetched = cache.get_or_plan(&t, &shape, &perm, &opts).unwrap();
        assert!((fetched.predicted_ns() - 42.0).abs() < 1e-12);
        assert_eq!(cache.stats().hits, before.hits + 1);
    }

    #[test]
    fn warm_skips_in_flight_builds() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::new();
        let shape = Shape::new(&[16, 8]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let opts = TransposeOptions::default();
        let key = PlanKey::new(&shape, &perm, &opts);
        let plan = Arc::new(t.plan::<u64>(&shape, &perm, &opts).unwrap());
        // Simulate another caller's single-flight build in progress.
        cache
            .shard(&key)
            .state
            .lock()
            .unwrap()
            .map
            .insert(key.clone(), Entry::Building);
        assert!(
            !cache.warm(&key, Arc::clone(&plan)),
            "warming must not replace an in-flight build"
        );
        assert!(cache.peek(&key).is_none());
        // Once the slot is free again, warming succeeds.
        cache.shard(&key).state.lock().unwrap().map.remove(&key);
        assert!(cache.warm(&key, plan));
        assert!(cache.peek(&key).is_some());
    }

    #[test]
    fn warm_respects_capacity() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::with_config(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        let opts = TransposeOptions::default();
        let p = Permutation::new(&[1, 0]).unwrap();
        for n in 1..=3usize {
            let s = Shape::new(&[8 * n, 8]).unwrap();
            let key = PlanKey::new(&s, &p, &opts);
            let plan = Arc::new(t.plan::<u64>(&s, &p, &opts).unwrap());
            assert!(cache.warm(&key, plan));
        }
        assert_eq!(cache.len(), 2, "warming still enforces the LRU bound");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn measured_plans_pin_and_survive_lru_pressure() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::with_config(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        let opts = TransposeOptions::default();
        let p = Permutation::new(&[1, 0]).unwrap();
        // Warm one *measured* plan: it must pin.
        let hot_shape = Shape::new(&[16, 8]).unwrap();
        let hot_key = PlanKey::new(&hot_shape, &p, &opts);
        let (_, ranked) = t.plan_topk::<u64>(&hot_shape, &p, &opts, 1).unwrap();
        let warmed = t
            .plan_for_candidate::<u64>(&hot_shape, &p, &opts, ranked[0].candidate.clone(), 42.0)
            .unwrap();
        assert!(warmed.is_measured());
        assert!(cache.warm(&hot_key, Arc::new(warmed)));
        assert_eq!(cache.pinned_plans(), 1);
        // Flood the shard far past capacity with modeled plans.
        for n in 1..=6usize {
            let s = Shape::new(&[8, 8 * n]).unwrap();
            cache.get_or_plan(&t, &s, &p, &opts).unwrap();
        }
        // LRU churned the modeled plans but the pinned plan survived
        // untouched, still predicting its measured time.
        assert!(cache.stats().evictions >= 4);
        assert_eq!(cache.pinned_plans(), 1);
        let resident = cache.peek(&hot_key).expect("pinned plan never evicted");
        assert!((resident.predicted_ns() - 42.0).abs() < 1e-12);
        assert_eq!(cache.len(), 3, "2 modeled (capacity) + 1 pinned");
    }

    #[test]
    fn modeled_warm_stays_unpinned_and_evictable() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<u64> = ShardedPlanCache::with_config(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        let opts = TransposeOptions::default();
        let p = Permutation::new(&[1, 0]).unwrap();
        let s = Shape::new(&[16, 8]).unwrap();
        let key = PlanKey::new(&s, &p, &opts);
        let plan = Arc::new(t.plan::<u64>(&s, &p, &opts).unwrap());
        assert!(!plan.is_measured());
        assert!(cache.warm(&key, plan));
        assert_eq!(cache.pinned_plans(), 0, "modeled plans never pin");
        for n in 2..=4usize {
            let sn = Shape::new(&[8 * n, 8]).unwrap();
            cache.get_or_plan(&t, &sn, &p, &opts).unwrap();
        }
        assert!(cache.peek(&key).is_none(), "unpinned warm falls to LRU");
    }

    #[test]
    fn sharded_cache_distributes_keys() {
        let t = Transposer::new_k40c();
        let cache: ShardedPlanCache<f64> = ShardedPlanCache::with_config(CacheConfig {
            shards: 4,
            capacity_per_shard: 0,
        });
        let opts = TransposeOptions::default();
        let p = Permutation::new(&[1, 0]).unwrap();
        for n in 1..=16usize {
            let s = Shape::new(&[8 * n, 8]).unwrap();
            cache.get_or_plan(&t, &s, &p, &opts).unwrap();
        }
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.stats().misses, 16);
        assert_eq!(cache.shard_count(), 4);
    }
}
