//! Plan caching for the repeated-use scenario.
//!
//! The paper's evaluation distinguishes single-use (plan + one run) from
//! repeated-use (plan once, run many times — Fig. 12). [`PlanCache`] makes
//! the repeated-use pattern a one-liner: plans are keyed by
//! `(extents, permutation, options fingerprint)` and built at most once,
//! concurrently safe behind a `parking_lot` mutex.

use crate::plan::{Plan, PlanError, Transposer, TransposeOptions, TransposeReport};
use crate::schema::Schema;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use ttlg_tensor::{DenseTensor, Element, Permutation, Shape};

/// Cache key: extents + permutation + the options that affect planning.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    extents: Vec<usize>,
    perm: Vec<usize>,
    forced: Option<Schema>,
    fusion: bool,
    sweep: bool,
    overbooking: usize,
}

impl Key {
    fn new(shape: &Shape, perm: &Permutation, opts: &TransposeOptions) -> Key {
        Key {
            extents: shape.extents().to_vec(),
            perm: perm.as_slice().to_vec(),
            forced: opts.forced_schema,
            fusion: opts.enable_fusion,
            sweep: opts.model_sweep,
            overbooking: opts.overbooking,
        }
    }
}

/// Cache usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans built on demand.
    pub misses: u64,
}

/// A concurrent cache of transposition plans for one element type.
///
/// ```
/// use ttlg::{PlanCache, Transposer};
/// use ttlg_tensor::{DenseTensor, Permutation, Shape};
///
/// let t = Transposer::new_k40c();
/// let cache: PlanCache<f64> = PlanCache::new();
/// let input: DenseTensor<f64> = DenseTensor::iota(Shape::new(&[16, 16]).unwrap());
/// let perm = Permutation::new(&[1, 0]).unwrap();
/// for _ in 0..3 {
///     cache.transpose(&t, &input, &perm).unwrap();
/// }
/// assert_eq!(cache.stats().misses, 1); // planned once, reused twice
/// ```
pub struct PlanCache<E: Element> {
    plans: Mutex<HashMap<Key, Arc<Plan<E>>>>,
    stats: Mutex<CacheStats>,
}

impl<E: Element> Default for PlanCache<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Element> PlanCache<E> {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache { plans: Mutex::new(HashMap::new()), stats: Mutex::new(CacheStats::default()) }
    }

    /// Fetch the plan for `(shape, perm, opts)`, building it on first use.
    pub fn get_or_plan(
        &self,
        t: &Transposer,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<Arc<Plan<E>>, PlanError> {
        let key = Key::new(shape, perm, opts);
        if let Some(plan) = self.plans.lock().get(&key) {
            self.stats.lock().hits += 1;
            return Ok(Arc::clone(plan));
        }
        // Plan outside the lock (planning can be slow); racing builders
        // are harmless — last insert wins, both plans are equivalent.
        let plan = Arc::new(t.plan::<E>(shape, perm, opts)?);
        self.plans.lock().insert(key, Arc::clone(&plan));
        self.stats.lock().misses += 1;
        Ok(plan)
    }

    /// Transpose with plan reuse: plans are built once per distinct
    /// problem and reused on every subsequent call.
    pub fn transpose(
        &self,
        t: &Transposer,
        input: &DenseTensor<E>,
        perm: &Permutation,
    ) -> Result<(DenseTensor<E>, TransposeReport), PlanError> {
        let plan =
            self.get_or_plan(t, input.shape(), perm, &TransposeOptions::default())?;
        t.execute(&plan, input)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        self.plans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::reference;

    #[test]
    fn second_call_hits_the_cache() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<u64> = PlanCache::new();
        let shape = Shape::new(&[16, 8, 4]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (out1, _) = cache.transpose(&t, &input, &perm).unwrap();
        let (out2, _) = cache.transpose(&t, &input, &perm).unwrap();
        assert_eq!(out1.data(), out2.data());
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out1.data(), expect.data());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_problems_get_distinct_plans() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<f64> = PlanCache::new();
        let opts = TransposeOptions::default();
        let s1 = Shape::new(&[8, 8]).unwrap();
        let s2 = Shape::new(&[16, 8]).unwrap();
        let p = Permutation::new(&[1, 0]).unwrap();
        cache.get_or_plan(&t, &s1, &p, &opts).unwrap();
        cache.get_or_plan(&t, &s2, &p, &opts).unwrap();
        // Different options are different cache entries too.
        let opts2 = TransposeOptions { model_sweep: false, ..Default::default() };
        cache.get_or_plan(&t, &s1, &p, &opts2).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn clear_resets_plans_but_not_stats() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<f64> = PlanCache::new();
        let s = Shape::new(&[8, 8]).unwrap();
        let p = Permutation::new(&[1, 0]).unwrap();
        cache.get_or_plan(&t, &s, &p, &TransposeOptions::default()).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let t = Transposer::new_k40c();
        let cache: PlanCache<u32> = PlanCache::new();
        let shape = Shape::new(&[16, 16]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        crossbeam_scope(&t, &cache, &shape, &perm);
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 8);
        assert_eq!(cache.len(), 1);
    }

    fn crossbeam_scope(
        t: &Transposer,
        cache: &PlanCache<u32>,
        shape: &Shape,
        perm: &Permutation,
    ) {
        ttlg_tensor::parallel::parallel_for_threads(8, 1, 4, |_| {
            let plan = cache
                .get_or_plan(t, shape, perm, &TransposeOptions::default())
                .expect("plannable");
            assert!(plan.predicted_ns() > 0.0);
        });
    }
}
