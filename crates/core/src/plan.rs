//! The public planning/execution API of TTLG-rs.
//!
//! [`Transposer::plan`] reproduces the paper's pipeline: fuse indices,
//! dispatch through the taxonomy (Alg. 1), enumerate slice candidates
//! (Alg. 3), rank them with the performance model, and build the chosen
//! kernel (offset arrays included). [`Transposer::execute`] runs the plan
//! on the simulated device, returning both the transposed tensor and a
//! timing/bandwidth report in the units the paper's figures use.

use crate::backend::Backend;
use crate::features::{self, Candidate, KernelChoice};
use crate::kernels::{
    CopyKernel, FviMatchLargeKernel, FviMatchSmallKernel, NaiveKernel, OrthogonalArbitraryKernel,
    OrthogonalDistinctKernel,
};
use crate::model::{AnalyticPredictor, TimePredictor};
use crate::problem::Problem;
use crate::schema::{applicable_schemas, Schema};
use crate::slice;
use crate::trace::{choice_params, CandidateTrace, DecisionTrace};
use std::sync::Arc;
use ttlg_gpu_sim::{
    executor::LaunchError, Accounting, BlockIo, BlockKernel, DeviceConfig, ExecMode, Executor,
    GridExecutor, KernelTiming, Launch, TimingModel, TransactionStats,
};
use ttlg_tensor::{DenseTensor, Element, Permutation, Shape};

/// Per-candidate predictor-evaluation cost charged to plan time, ns.
const PLAN_PER_CANDIDATE_NS: f64 = 2_000.0;
/// Host-side offset-array construction cost, ns per byte.
const PLAN_OFFSET_NS_PER_BYTE: f64 = 0.5;
/// Analytic-guard factor: a candidate is only eligible if the closed-form
/// model rates it within this factor of the analytic best (see
/// [`Transposer::plan`]).
const ANALYTIC_GUARD: f64 = 1.25;
/// Candidate count above which the Alg. 3 sweep scores candidates in
/// parallel; below it the per-thread setup would cost more than the
/// predictor evaluations it distributes.
const PARALLEL_SWEEP_MIN: usize = 24;

/// Options controlling planning.
#[derive(Debug, Clone)]
pub struct TransposeOptions {
    /// Force a specific schema (ablations); `None` = taxonomy decides.
    pub forced_schema: Option<Schema>,
    /// Apply index fusion (always on in the paper; off for ablations).
    pub enable_fusion: bool,
    /// Sweep slice candidates with the model (Alg. 3) instead of taking
    /// the flow-chart default.
    pub model_sweep: bool,
    /// Overbooking factor bounding the slice volume (Alg. 3).
    pub overbooking: usize,
    /// Verify that kernel blocks write disjoint output elements (slow;
    /// for tests).
    pub check_disjoint_writes: bool,
    /// Which execution backend to plan for: `Some(b)` restricts the
    /// sweep to backend `b`; `None` sweeps candidates across *all*
    /// backends and lets the model pick. The default pins the GPU
    /// simulator, preserving the original library behavior.
    pub backend: Option<Backend>,
}

impl Default for TransposeOptions {
    fn default() -> Self {
        TransposeOptions {
            forced_schema: None,
            enable_fusion: true,
            model_sweep: true,
            overbooking: slice::DEFAULT_OVERBOOKING,
            check_disjoint_writes: false,
            backend: Some(Backend::GpuSim),
        }
    }
}

impl TransposeOptions {
    /// Default options pinned to one backend.
    pub fn for_backend(backend: Backend) -> Self {
        TransposeOptions {
            backend: Some(backend),
            ..Default::default()
        }
    }

    /// The backends this option set admits, in sweep order.
    pub fn backends(&self) -> Vec<Backend> {
        match self.backend {
            Some(b) => vec![b],
            None => Backend::ALL.to_vec(),
        }
    }
}

/// Planning/execution errors.
#[derive(Debug)]
pub enum PlanError {
    /// Shape/permutation validation failed.
    Tensor(ttlg_tensor::Error),
    /// No schema produced an admissible candidate.
    NoCandidate,
    /// The chosen kernel failed launch validation.
    Launch(LaunchError),
    /// The operation is not available on the plan's backend (e.g.
    /// simulator-side profiling of a CPU plan).
    Backend(Backend),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Tensor(e) => write!(f, "invalid problem: {e}"),
            PlanError::NoCandidate => write!(f, "no admissible kernel candidate"),
            PlanError::Launch(e) => write!(f, "launch rejected: {e}"),
            PlanError::Backend(b) => write!(f, "operation unsupported on backend {b}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ttlg_tensor::Error> for PlanError {
    fn from(e: ttlg_tensor::Error) -> Self {
        PlanError::Tensor(e)
    }
}

impl From<LaunchError> for PlanError {
    fn from(e: LaunchError) -> Self {
        PlanError::Launch(e)
    }
}

/// Type-erased kernel holder.
enum AnyKernel<E: Element> {
    Copy(CopyKernel<E>),
    Fml(FviMatchLargeKernel<E>),
    Fms(FviMatchSmallKernel<E>),
    Od(OrthogonalDistinctKernel<E>),
    Oa(OrthogonalArbitraryKernel<E>),
    Naive(NaiveKernel<E>),
}

impl<E: Element> BlockKernel<E> for AnyKernel<E> {
    fn name(&self) -> &str {
        match self {
            AnyKernel::Copy(k) => k.name(),
            AnyKernel::Fml(k) => k.name(),
            AnyKernel::Fms(k) => k.name(),
            AnyKernel::Od(k) => k.name(),
            AnyKernel::Oa(k) => k.name(),
            AnyKernel::Naive(k) => k.name(),
        }
    }

    fn launch(&self) -> Launch {
        match self {
            AnyKernel::Copy(k) => k.launch(),
            AnyKernel::Fml(k) => k.launch(),
            AnyKernel::Fms(k) => k.launch(),
            AnyKernel::Od(k) => k.launch(),
            AnyKernel::Oa(k) => k.launch(),
            AnyKernel::Naive(k) => k.launch(),
        }
    }

    fn run_block(&self, block: usize, io: &BlockIo<'_, E>, acct: &mut Accounting) {
        match self {
            AnyKernel::Copy(k) => k.run_block(block, io, acct),
            AnyKernel::Fml(k) => k.run_block(block, io, acct),
            AnyKernel::Fms(k) => k.run_block(block, io, acct),
            AnyKernel::Od(k) => k.run_block(block, io, acct),
            AnyKernel::Oa(k) => k.run_block(block, io, acct),
            AnyKernel::Naive(k) => k.run_block(block, io, acct),
        }
    }

    fn block_class(&self, block: usize) -> u32 {
        match self {
            AnyKernel::Copy(k) => k.block_class(block),
            AnyKernel::Fml(k) => k.block_class(block),
            AnyKernel::Fms(k) => k.block_class(block),
            AnyKernel::Od(k) => k.block_class(block),
            AnyKernel::Oa(k) => k.block_class(block),
            AnyKernel::Naive(k) => k.block_class(block),
        }
    }
}

/// The executable payload of a plan: a simulated-GPU block kernel, or a
/// real CPU loop nest.
enum PlanExec<E: Element> {
    Gpu(AnyKernel<E>),
    Cpu(ttlg_cpu::CpuPlan),
}

/// A reusable transposition plan for one (shape, permutation, element
/// type) triple.
pub struct Plan<E: Element> {
    problem: Problem,
    candidate: Candidate,
    kernel: PlanExec<E>,
    predicted_ns: f64,
    plan_time_ns: f64,
    candidates_evaluated: usize,
    check_disjoint_writes: bool,
    /// Whether `predicted_ns` is a *measured* time (measure-mode or an
    /// autotuner-installed candidate) rather than a model prediction.
    measured: bool,
    /// Wall-clock time of the Alg. 3 candidate sweep that produced this
    /// plan (0 when the plan bypassed the sweep) — the planner-side
    /// span the tracing layer attributes under `plan`.
    sweep_wall_ns: u64,
    /// The planner's full decision trace, retained when
    /// [`Transposer::set_trace_retention`] is on (shared so cached plans
    /// hand it to every request cheaply).
    decision: Option<Arc<DecisionTrace>>,
}

impl<E: Element> Plan<E> {
    /// The schema the planner chose.
    pub fn schema(&self) -> Schema {
        self.candidate.schema()
    }

    /// The fused problem this plan solves.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The chosen candidate (parameters + features).
    pub fn candidate(&self) -> &Candidate {
        &self.candidate
    }

    /// The backend this plan executes on.
    pub fn backend(&self) -> Backend {
        self.candidate.backend()
    }

    /// Launch geometry of the chosen kernel. For CPU plans this reports
    /// the candidate's logical geometry (tile blocks x worker threads).
    pub fn launch(&self) -> Launch {
        match &self.kernel {
            PlanExec::Gpu(k) => k.launch(),
            PlanExec::Cpu(_) => self.candidate.launch(),
        }
    }

    /// Model-predicted kernel time, ns.
    pub fn predicted_ns(&self) -> f64 {
        self.predicted_ns
    }

    /// Modeled plan-construction overhead, ns (counted once in the
    /// single-use scenario).
    pub fn plan_time_ns(&self) -> f64 {
        self.plan_time_ns
    }

    /// How many candidates the model ranked.
    pub fn candidates_evaluated(&self) -> usize {
        self.candidates_evaluated
    }

    /// Wall-clock nanoseconds the Alg. 3 candidate sweep took while
    /// building this plan; 0 for plans that bypassed the sweep
    /// (autotuner-installed candidates).
    pub fn sweep_wall_ns(&self) -> u64 {
        self.sweep_wall_ns
    }

    /// Whether this plan's time estimate comes from measurement
    /// (measure mode / autotuner) rather than the model. Lets the
    /// serving layer tag requests that ran on a warmed plan.
    pub fn is_measured(&self) -> bool {
        self.measured
    }

    /// The retained planner decision trace, if trace retention was on
    /// when this plan was built (see [`Transposer::set_trace_retention`]).
    pub fn decision_trace(&self) -> Option<&Arc<DecisionTrace>> {
        self.decision.as_ref()
    }

    /// Shape of the output tensor.
    pub fn out_shape(&self) -> Shape {
        self.problem
            .orig_perm
            .apply_to_shape(&self.problem.orig_shape)
            .expect("plan holds a validated problem")
    }
}

/// Execution report in the paper's units.
#[derive(Debug, Clone)]
pub struct TransposeReport {
    /// Schema used.
    pub schema: Schema,
    /// Kernel time, ns (modeled from measured transactions).
    pub kernel_time_ns: f64,
    /// The paper's bandwidth metric `2*volume*elem_bytes/time`, GB/s.
    pub bandwidth_gbps: f64,
    /// Measured transaction statistics.
    pub stats: TransactionStats,
    /// Model-predicted kernel time, ns (for model-precision studies).
    pub predicted_ns: f64,
    /// Plan overhead, ns.
    pub plan_time_ns: f64,
    /// Timing decomposition.
    pub timing: KernelTiming,
}

/// Result of measuring one candidate on the simulated device.
#[derive(Debug, Clone)]
pub struct CandidateMeasurement {
    /// Measured (sampled-analysis) transaction statistics.
    pub stats: TransactionStats,
    /// Timing decomposition for those statistics.
    pub timing: KernelTiming,
}

/// One entry of the ranked candidate list [`Transposer::plan_topk`]
/// returns: the candidate plus both time estimates the ranking used.
#[derive(Debug, Clone)]
pub struct RankedCandidate {
    /// The candidate (parameters + features).
    pub candidate: Candidate,
    /// Configured-predictor estimate, ns (the ranking key).
    pub predicted_ns: f64,
    /// Closed-form analytic estimate, ns.
    pub analytic_ns: f64,
    /// Whether the analytic guard excluded this candidate from the
    /// eligible set (rejected candidates rank after all eligible ones).
    pub guard_rejected: bool,
}

/// The TTLG library object: owns the device, the executor, and the
/// performance model.
pub struct Transposer {
    executor: Executor,
    timing: TimingModel,
    predictor: Arc<dyn TimePredictor>,
    /// Closed-form model kept alongside any custom predictor as a sanity
    /// guard during candidate ranking (see [`Transposer::plan`]).
    analytic: AnalyticPredictor,
    /// When set, every [`Transposer::plan`] retains its full
    /// [`DecisionTrace`] on the returned [`Plan`] (see
    /// [`Plan::decision_trace`]) so serving layers can attach the
    /// planner's reasoning to slow-request exemplars after the fact.
    retain_traces: std::sync::atomic::AtomicBool,
}

impl Transposer {
    /// Build with the default (analytic) predictor.
    pub fn new(device: DeviceConfig) -> Self {
        let predictor = Arc::new(AnalyticPredictor::new(device.clone()));
        Self::with_predictor(device, predictor)
    }

    /// Build for the paper's Tesla K40c.
    pub fn new_k40c() -> Self {
        Self::new(DeviceConfig::k40c())
    }

    /// Build with a custom predictor (e.g. the trained regression models
    /// of `ttlg-perfmodel`).
    pub fn with_predictor(device: DeviceConfig, predictor: Arc<dyn TimePredictor>) -> Self {
        Transposer {
            executor: Executor::new(device.clone()),
            analytic: AnalyticPredictor::new(device.clone()),
            timing: TimingModel::new(device),
            predictor,
            retain_traces: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Toggle decision-trace retention: when on, plans built by
    /// [`Transposer::plan`] (and through caches that call it) carry an
    /// `Arc<DecisionTrace>` ([`Plan::decision_trace`]). Off by default —
    /// the trace costs one allocation per *planning* (not per request),
    /// so turning it on is cheap in cache-hit-dominated serving.
    pub fn set_trace_retention(&self, on: bool) {
        self.retain_traces
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether decision-trace retention is on.
    pub fn retains_traces(&self) -> bool {
        self.retain_traces
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The device configuration.
    pub fn device(&self) -> &DeviceConfig {
        self.executor.device()
    }

    /// The timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Build a plan for transposing `shape` by `perm`.
    pub fn plan<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<Plan<E>, PlanError> {
        self.plan_impl::<E>(shape, perm, opts, None)
    }

    /// [`Transposer::plan`] plus a full [`DecisionTrace`]: every candidate
    /// the model ranked (with slice sizes and both time estimates), every
    /// configuration the sweep rejected and why, the analytic-guard band,
    /// and the final choice. This is what `ttlg explain` prints.
    pub fn plan_traced<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<(Plan<E>, DecisionTrace), PlanError> {
        let mut trace = DecisionTrace::default();
        let plan = self.plan_impl::<E>(shape, perm, opts, Some(&mut trace))?;
        Ok((plan, trace))
    }

    fn plan_impl<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
        mut trace: Option<&mut DecisionTrace>,
    ) -> Result<Plan<E>, PlanError> {
        // Retention hook: when the caller asked for no trace but
        // retention is on, build one anyway and attach it to the plan.
        let mut owned: Option<DecisionTrace> = if trace.is_none() && self.retains_traces() {
            Some(DecisionTrace::default())
        } else {
            None
        };
        let problem = build_problem(shape, perm, opts)?;
        let schemas = match opts.forced_schema {
            Some(s) => vec![s],
            None => applicable_schemas(&problem),
        };
        if let Some(tr) = trace.as_deref_mut().or(owned.as_mut()) {
            tr.extents = shape.extents().to_vec();
            tr.perm = perm.as_slice().to_vec();
            tr.fused_extents = problem.shape.extents().to_vec();
            tr.fused_perm = problem.perm.as_slice().to_vec();
            tr.admissible = schemas.clone();
            tr.guard_factor = ANALYTIC_GUARD;
        }
        let sweep_started = std::time::Instant::now();
        let (predicted_ns, candidate, evaluated) = self.rank_candidates_impl::<E>(
            &problem,
            &schemas,
            opts,
            trace.as_deref_mut().or(owned.as_mut()),
        )?;
        let sweep_wall_ns = sweep_started.elapsed().as_nanos() as u64;
        let mut plan = self.finish_plan::<E>(problem, candidate, predicted_ns, evaluated, opts);
        plan.sweep_wall_ns = sweep_wall_ns;
        if let Some(tr) = trace {
            tr.plan_time_ns = plan.plan_time_ns;
        }
        if let Some(mut tr) = owned {
            tr.plan_time_ns = plan.plan_time_ns;
            plan.decision = Some(Arc::new(tr));
        }
        Ok(plan)
    }

    /// Like [`Transposer::plan`], but also return the `k` best-ranked
    /// candidates from the Alg. 3 sweep (best first; guard-eligible
    /// candidates rank before guard-rejected ones) — the measure-mode
    /// autotuner re-measures these on the device. The returned plan is
    /// identical to what [`Transposer::plan`] would pick: it is built
    /// from the head of the ranking.
    pub fn plan_topk<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
        k: usize,
    ) -> Result<(Plan<E>, Vec<RankedCandidate>), PlanError> {
        let problem = build_problem(shape, perm, opts)?;
        let schemas = match opts.forced_schema {
            Some(s) => vec![s],
            None => applicable_schemas(&problem),
        };
        let sweep_started = std::time::Instant::now();
        let sweep = self.sweep_candidates::<E>(&problem, &schemas, opts, None)?;
        let sweep_wall_ns = sweep_started.elapsed().as_nanos() as u64;
        let evaluated = sweep.candidates.len();
        let ranked: Vec<RankedCandidate> = sweep
            .order
            .iter()
            .take(k.max(1))
            .map(|&i| RankedCandidate {
                candidate: sweep.candidates[i].clone(),
                predicted_ns: sweep.scores[i].0,
                analytic_ns: sweep.scores[i].1,
                guard_rejected: sweep.rejected[i],
            })
            .collect();
        let head = &ranked[0];
        let mut plan = self.finish_plan::<E>(
            problem,
            head.candidate.clone(),
            head.predicted_ns,
            evaluated,
            opts,
        );
        plan.sweep_wall_ns = sweep_wall_ns;
        Ok((plan, ranked))
    }

    /// Build a plan directly from a known candidate, bypassing the sweep
    /// — used by the autotuner to install a *measured*-best candidate.
    /// `predicted_ns` carries the caller's (typically measured) time
    /// estimate, so downstream prediction accounting sees the measured
    /// figure; the plan-time charge covers one candidate evaluation.
    pub fn plan_for_candidate<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
        candidate: Candidate,
        predicted_ns: f64,
    ) -> Result<Plan<E>, PlanError> {
        let problem = build_problem(shape, perm, opts)?;
        let mut plan = self.finish_plan::<E>(problem, candidate, predicted_ns, 1, opts);
        plan.measured = true;
        Ok(plan)
    }

    /// Assemble a [`Plan`] for an already-chosen candidate: build the
    /// kernel and charge the modeled plan time for `evaluated` ranked
    /// candidates plus offset-array construction.
    fn finish_plan<E: Element>(
        &self,
        problem: Problem,
        candidate: Candidate,
        predicted_ns: f64,
        evaluated: usize,
        opts: &TransposeOptions,
    ) -> Plan<E> {
        let kernel = build_exec::<E>(&problem, &candidate, self.executor.device().smem_per_sm);
        let offset_bytes = match &kernel {
            PlanExec::Gpu(AnyKernel::Od(k)) => k.offset_array_bytes(),
            PlanExec::Gpu(AnyKernel::Oa(k)) => k.offset_array_bytes(),
            _ => 0,
        };
        let plan_time_ns = self.timing.plan_overhead_ns()
            + evaluated as f64 * PLAN_PER_CANDIDATE_NS
            + offset_bytes as f64 * PLAN_OFFSET_NS_PER_BYTE;
        Plan {
            problem,
            candidate,
            kernel,
            predicted_ns,
            plan_time_ns,
            candidates_evaluated: evaluated,
            check_disjoint_writes: opts.check_disjoint_writes,
            measured: false,
            sweep_wall_ns: 0,
            decision: None,
        }
    }

    /// Rank all candidates of the given schemas: the configured predictor
    /// orders them, but a candidate is only eligible if the closed-form
    /// analytic model also rates it within a factor of the analytic best
    /// (a regression trained on one volume range can invert the ranking
    /// far outside it; the analytic model never strays that far).
    fn rank_candidates<E: Element>(
        &self,
        problem: &Problem,
        schemas: &[Schema],
        opts: &TransposeOptions,
    ) -> Result<(f64, Candidate, usize), PlanError> {
        self.rank_candidates_impl::<E>(problem, schemas, opts, None)
    }

    fn rank_candidates_impl<E: Element>(
        &self,
        problem: &Problem,
        schemas: &[Schema],
        opts: &TransposeOptions,
        trace: Option<&mut DecisionTrace>,
    ) -> Result<(f64, Candidate, usize), PlanError> {
        let sweep = self.sweep_candidates::<E>(problem, schemas, opts, trace)?;
        let best = sweep.order[0];
        let predicted_ns = sweep.scores[best].0;
        let mut candidates = sweep.candidates;
        let evaluated = candidates.len();
        let candidate = candidates.swap_remove(best);
        Ok((predicted_ns, candidate, evaluated))
    }

    /// Enumerate, score, and order every candidate of the given schemas
    /// — the shared heart of [`Transposer::plan`] and
    /// [`Transposer::plan_topk`].
    fn sweep_candidates<E: Element>(
        &self,
        problem: &Problem,
        schemas: &[Schema],
        opts: &TransposeOptions,
        mut trace: Option<&mut DecisionTrace>,
    ) -> Result<SweepResult, PlanError> {
        let candidates = self.enumerate_all::<E>(problem, schemas, opts, trace.as_deref_mut());
        if candidates.is_empty() {
            return Err(PlanError::NoCandidate);
        }
        let scores = self.score_candidates(&candidates, true);
        let lanes: Vec<Backend> = candidates.iter().map(|c| c.backend()).collect();
        let (order, analytic_best, rejected) = order_candidates(&scores, &lanes);
        let best = order[0];
        if let Some(tr) = trace {
            tr.analytic_best_ns = analytic_best;
            tr.chosen = Some(best);
            tr.candidates = candidates
                .iter()
                .zip(&scores)
                .enumerate()
                .map(|(i, (c, (t, a)))| CandidateTrace {
                    schema: c.schema(),
                    params: choice_params(&c.choice),
                    input_slice: c.input_slice,
                    output_slice: c.output_slice,
                    total_slice: c.total_slice,
                    grid_blocks: c.grid_blocks,
                    threads_per_block: c.threads_per_block,
                    smem_bytes: c.smem_bytes,
                    predicted_ns: *t,
                    analytic_ns: *a,
                    guard_rejected: rejected[i],
                    chosen: i == best,
                })
                .collect();
        }
        Ok(SweepResult {
            candidates,
            scores,
            order,
            rejected,
        })
    }

    /// Enumerate every candidate of the given schemas (Alg. 3), in the
    /// deterministic schema-then-sweep order.
    fn enumerate_all<E: Element>(
        &self,
        problem: &Problem,
        schemas: &[Schema],
        opts: &TransposeOptions,
        mut trace: Option<&mut DecisionTrace>,
    ) -> Vec<Candidate> {
        let device = self.executor.device();
        let backends = opts.backends();
        let mut cands = Vec::new();
        if backends.contains(&Backend::GpuSim) {
            for &schema in schemas {
                let list = match trace.as_deref_mut() {
                    Some(tr) => slice::enumerate_candidates_traced::<E>(
                        problem,
                        schema,
                        device,
                        opts.overbooking,
                        opts.model_sweep,
                        &mut tr.rejections,
                    ),
                    None => slice::enumerate_candidates::<E>(
                        problem,
                        schema,
                        device,
                        opts.overbooking,
                        opts.model_sweep,
                    ),
                };
                cands.extend(list);
            }
        }
        if backends.contains(&Backend::Cpu) {
            cands.extend(enumerate_cpu_candidates::<E>(problem, schemas, opts));
        }
        cands
    }

    /// Score every candidate with both predictors, returning
    /// `(predicted_ns, analytic_ns)` per candidate in input order. Wide
    /// sweeps fan out over `ttlg_tensor::parallel` — bounded by any
    /// enclosing `with_thread_cap` scope, since `parallel_for` reads the
    /// capped thread count on the calling thread — while narrow sweeps
    /// stay sequential ([`PARALLEL_SWEEP_MIN`]). Both paths produce
    /// bit-identical scores in identical order.
    fn score_candidates(&self, cands: &[Candidate], allow_parallel: bool) -> Vec<(f64, f64)> {
        let score = |c: &Candidate| (self.predictor.predict_ns(c), self.analytic.predict_ns(c));
        if allow_parallel
            && cands.len() >= PARALLEL_SWEEP_MIN
            && ttlg_tensor::parallel::default_threads() > 1
        {
            let slots: Vec<std::sync::OnceLock<(f64, f64)>> = (0..cands.len())
                .map(|_| std::sync::OnceLock::new())
                .collect();
            ttlg_tensor::parallel::parallel_for(cands.len(), 8, |i| {
                slots[i]
                    .set(score(&cands[i]))
                    .expect("each candidate scored exactly once");
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().expect("sweep covered every candidate"))
                .collect()
        } else {
            cands.iter().map(score).collect()
        }
    }

    /// Execute a plan, producing the transposed tensor and a report.
    pub fn execute<E: Element>(
        &self,
        plan: &Plan<E>,
        input: &DenseTensor<E>,
    ) -> Result<(DenseTensor<E>, TransposeReport), PlanError> {
        let mut out = DenseTensor::zeros(plan.out_shape());
        let report = self.execute_into(plan, input, &mut out)?;
        Ok((out, report))
    }

    /// Execute a plan into a pre-allocated output tensor.
    pub fn execute_into<E: Element>(
        &self,
        plan: &Plan<E>,
        input: &DenseTensor<E>,
        out: &mut DenseTensor<E>,
    ) -> Result<TransposeReport, PlanError> {
        assert_eq!(
            input.shape(),
            &plan.problem.orig_shape,
            "input shape does not match the planned shape"
        );
        assert_eq!(out.volume(), input.volume(), "output volume mismatch");
        match &plan.kernel {
            PlanExec::Gpu(k) => {
                let outcome = GridExecutor::<E>::run_grid(
                    &self.executor,
                    k,
                    input.data(),
                    out.data_mut(),
                    ExecMode::Execute {
                        check_disjoint_writes: plan.check_disjoint_writes,
                    },
                )?;
                Ok(self.report(plan, &outcome.stats))
            }
            PlanExec::Cpu(cp) => {
                let started = std::time::Instant::now();
                ttlg_cpu::execute(cp, input.data(), out.data_mut());
                let wall_ns = (started.elapsed().as_nanos() as f64).max(1.0);
                Ok(cpu_report(plan, wall_ns))
            }
        }
    }

    /// Profile a plan's kernel (nvprof-style counters and bottleneck
    /// analysis from the simulator).
    pub fn profile_plan<E: Element>(
        &self,
        plan: &Plan<E>,
    ) -> Result<ttlg_gpu_sim::ProfileReport, PlanError> {
        let PlanExec::Gpu(kernel) = &plan.kernel else {
            return Err(PlanError::Backend(plan.backend()));
        };
        let profiler = ttlg_gpu_sim::Profiler::new(self.executor.device().clone());
        Ok(profiler.profile::<E, _>(kernel)?)
    }

    /// Time a plan without moving caller data — sampled analysis for GPU
    /// plans (what the large benchmark sweeps use); for CPU plans one
    /// real execution over scratch buffers, wall-clock timed.
    pub fn time_plan<E: Element>(&self, plan: &Plan<E>) -> Result<TransposeReport, PlanError> {
        match &plan.kernel {
            PlanExec::Gpu(k) => {
                let outcome = GridExecutor::<E>::analyze_grid(&self.executor, k)?;
                Ok(self.report(plan, &outcome.stats))
            }
            PlanExec::Cpu(cp) => {
                let src: DenseTensor<E> = DenseTensor::zeros(plan.problem.orig_shape.clone());
                let mut dst: DenseTensor<E> = DenseTensor::zeros(plan.out_shape());
                let started = std::time::Instant::now();
                ttlg_cpu::execute(cp, src.data(), dst.data_mut());
                let wall_ns = (started.elapsed().as_nanos() as f64).max(1.0);
                Ok(cpu_report(plan, wall_ns))
            }
        }
    }

    fn report<E: Element>(&self, plan: &Plan<E>, stats: &TransactionStats) -> TransposeReport {
        let timing = self.timing.time(stats, &plan.launch());
        let bw = timing.bandwidth_gbps(plan.problem.volume(), E::BYTES);
        TransposeReport {
            schema: plan.schema(),
            kernel_time_ns: timing.time_ns,
            bandwidth_gbps: bw,
            stats: *stats,
            predicted_ns: plan.predicted_ns,
            plan_time_ns: plan.plan_time_ns,
            timing,
        }
    }

    /// One-shot convenience: plan + execute with default options.
    pub fn transpose<E: Element>(
        &self,
        input: &DenseTensor<E>,
        perm: &Permutation,
    ) -> Result<(DenseTensor<E>, TransposeReport), PlanError> {
        let plan = self.plan::<E>(input.shape(), perm, &TransposeOptions::default())?;
        self.execute(&plan, input)
    }

    /// Measure-mode planning: build *every* candidate kernel, time each on
    /// the device (sampled analysis), and keep the actually-fastest one —
    /// the upper bound the regression model is judged against, and the
    /// TTLG analogue of cuTT's measure mode. The plan-time charge includes
    /// the measured executions, so single-use comparisons stay honest.
    pub fn plan_measured<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
        opts: &TransposeOptions,
    ) -> Result<Plan<E>, PlanError> {
        let problem = if opts.enable_fusion {
            Problem::new(shape, perm)?
        } else {
            Problem::new_unfused(shape, perm)?
        };
        let schemas = match opts.forced_schema {
            Some(s) => vec![s],
            None => applicable_schemas(&problem),
        };
        let device = self.executor.device();
        let sweep_started = std::time::Instant::now();
        let mut best: Option<(f64, Candidate, PlanExec<E>)> = None;
        let mut evaluated = 0usize;
        let mut measured_ns = 0.0;
        for cand in self.enumerate_all::<E>(&problem, &schemas, opts, None) {
            let exec = build_exec::<E>(&problem, &cand, device.smem_per_sm);
            let t = match &exec {
                PlanExec::Gpu(kernel) => {
                    let outcome = self.executor.analyze(kernel)?;
                    self.timing.time(&outcome.stats, &kernel.launch()).time_ns
                }
                PlanExec::Cpu(cp) => {
                    // CPU candidates are timed on real wall clock against
                    // scratch buffers — their nanoseconds and the synthetic
                    // GPU nanoseconds only compete when the caller asked
                    // for a cross-backend sweep.
                    let src = DenseTensor::<E>::zeros(problem.orig_shape.clone());
                    let out_shape = problem.orig_perm.apply_to_shape(&problem.orig_shape)?;
                    let mut dst = DenseTensor::<E>::zeros(out_shape);
                    let started = std::time::Instant::now();
                    ttlg_cpu::execute(cp, src.data(), dst.data_mut());
                    (started.elapsed().as_nanos() as f64).max(1.0)
                }
            };
            evaluated += 1;
            measured_ns += t;
            if best.as_ref().map(|(bt, _, _)| t < *bt).unwrap_or(true) {
                best = Some((t, cand, exec));
            }
        }
        let (best_ns, candidate, kernel) = best.ok_or(PlanError::NoCandidate)?;
        let plan_time_ns =
            self.timing.plan_overhead_ns() + measured_ns + evaluated as f64 * PLAN_PER_CANDIDATE_NS;
        Ok(Plan {
            problem,
            candidate,
            kernel,
            predicted_ns: best_ns,
            plan_time_ns,
            candidates_evaluated: evaluated,
            check_disjoint_writes: opts.check_disjoint_writes,
            measured: true,
            sweep_wall_ns: sweep_started.elapsed().as_nanos() as u64,
            decision: None,
        })
    }

    /// Build and time one specific candidate via sampled analysis —
    /// the ground-truth generator for offline model training and the
    /// building block of measure-mode baselines.
    pub fn measure_candidate<E: Element>(
        &self,
        problem: &Problem,
        cand: &Candidate,
    ) -> Result<CandidateMeasurement, PlanError> {
        match build_exec::<E>(problem, cand, self.executor.device().smem_per_sm) {
            PlanExec::Gpu(kernel) => {
                let outcome = self.executor.analyze(&kernel)?;
                let timing = self.timing.time(&outcome.stats, &kernel.launch());
                Ok(CandidateMeasurement {
                    stats: outcome.stats,
                    timing,
                })
            }
            PlanExec::Cpu(cp) => {
                let src = DenseTensor::<E>::zeros(problem.orig_shape.clone());
                let out_shape = problem.orig_perm.apply_to_shape(&problem.orig_shape)?;
                let mut dst = DenseTensor::<E>::zeros(out_shape);
                let started = std::time::Instant::now();
                ttlg_cpu::execute(&cp, src.data(), dst.data_mut());
                let wall_ns = (started.elapsed().as_nanos() as f64).max(1.0);
                Ok(CandidateMeasurement {
                    stats: cpu_stats(problem.volume(), E::BYTES),
                    timing: cpu_timing(wall_ns),
                })
            }
        }
    }

    /// The queryable prediction interface (paper Sec. I): estimated
    /// transposition time for a (shape, permutation) pair without building
    /// offset arrays or touching data.
    pub fn predict_transpose_ns<E: Element>(
        &self,
        shape: &Shape,
        perm: &Permutation,
    ) -> Result<f64, PlanError> {
        let problem = Problem::new(shape, perm)?;
        let schemas = applicable_schemas(&problem);
        let (best, _, _) =
            self.rank_candidates::<E>(&problem, &schemas, &TransposeOptions::default())?;
        Ok(best)
    }
}

/// Output of the enumerate + score + order sweep.
struct SweepResult {
    /// Every enumerated candidate, in enumeration order.
    candidates: Vec<Candidate>,
    /// `(predicted_ns, analytic_ns)` per candidate, same order.
    scores: Vec<(f64, f64)>,
    /// Candidate indices, best first (see [`order_candidates`]).
    order: Vec<usize>,
    /// Per-candidate analytic-guard rejection flag, enumeration order.
    rejected: Vec<bool>,
}

/// Order candidate indices best-first: guard-eligible candidates sorted
/// by predicted time (stable, so ties keep enumeration order and the
/// head reproduces the sequential argmin), then guard-rejected ones
/// sorted the same way. The guard band is computed **per backend lane**
/// (`lanes[i]` is candidate `i`'s backend): a synthetic-GPU nanosecond
/// and a wall-clock CPU nanosecond live on different scales, and one
/// shared band would blanket-reject whichever backend models slower.
/// Returns the order, the overall analytic best, and per-candidate
/// rejection flags.
fn order_candidates(scores: &[(f64, f64)], lanes: &[Backend]) -> (Vec<usize>, f64, Vec<bool>) {
    debug_assert_eq!(scores.len(), lanes.len());
    let mut lane_best = [f64::INFINITY; Backend::ALL.len()];
    for (i, &(_, a)) in scores.iter().enumerate() {
        let l = lanes[i].index();
        lane_best[l] = lane_best[l].min(a);
    }
    let rejected: Vec<bool> = scores
        .iter()
        .enumerate()
        .map(|(i, &(_, a))| a > ANALYTIC_GUARD * lane_best[lanes[i].index()])
        .collect();
    let analytic_best = scores.iter().fold(f64::INFINITY, |m, &(_, a)| m.min(a));
    let by_predicted =
        |&i: &usize, &j: &usize| scores[i].0.partial_cmp(&scores[j].0).expect("finite");
    let mut order: Vec<usize> = (0..scores.len()).filter(|&i| !rejected[i]).collect();
    let mut tail: Vec<usize> = (0..scores.len()).filter(|&i| rejected[i]).collect();
    order.sort_by(by_predicted);
    tail.sort_by(by_predicted);
    order.extend(tail);
    (order, analytic_best, rejected)
}

/// Enumerate CPU-backend candidates for a problem: the dtype-sized tile
/// plus the default tile (deduplicated), each at a small ladder of
/// worker-thread counts up to the machine's parallelism. The candidate's
/// schema label is the problem's primary taxonomy class (what the GPU
/// flow chart would dispatch to), so per-schema accounting stays
/// comparable across backends. With `model_sweep` off only the default
/// configuration is produced.
fn enumerate_cpu_candidates<E: Element>(
    problem: &Problem,
    schemas: &[Schema],
    opts: &TransposeOptions,
) -> Vec<Candidate> {
    let schema = schemas.first().copied().unwrap_or(Schema::Naive);
    let machine = ttlg_tensor::parallel::default_threads();
    let default_tile = ttlg_cpu::pick_tile(E::BYTES);
    if !opts.model_sweep {
        return vec![features::cpu_candidate::<E>(
            problem,
            schema,
            default_tile,
            machine,
        )];
    }
    let mut tiles = vec![default_tile];
    if !tiles.contains(&ttlg_cpu::DEFAULT_TILE) {
        tiles.push(ttlg_cpu::DEFAULT_TILE);
    }
    let mut threads = vec![1usize];
    for t in [2, 4, machine] {
        if t > 1 && t <= machine && !threads.contains(&t) {
            threads.push(t);
        }
    }
    let mut cands = Vec::with_capacity(tiles.len() * threads.len());
    for &tile in &tiles {
        for &th in &threads {
            cands.push(features::cpu_candidate::<E>(problem, schema, tile, th));
        }
    }
    cands
}

/// Build the (optionally fused) problem the options describe.
fn build_problem(
    shape: &Shape,
    perm: &Permutation,
    opts: &TransposeOptions,
) -> Result<Problem, PlanError> {
    Ok(if opts.enable_fusion {
        Problem::new(shape, perm)?
    } else {
        Problem::new_unfused(shape, perm)?
    })
}

/// Build the concrete executable for a candidate: a simulated block
/// kernel for GPU choices, a [`ttlg_cpu::CpuPlan`] for the CPU choice.
fn build_exec<E: Element>(p: &Problem, cand: &Candidate, smem_limit: usize) -> PlanExec<E> {
    PlanExec::Gpu(match cand.choice {
        KernelChoice::Copy => AnyKernel::Copy(CopyKernel::new(p.volume())),
        KernelChoice::FviMatchLarge => AnyKernel::Fml(FviMatchLargeKernel::new(p)),
        KernelChoice::FviMatchSmall { b } => AnyKernel::Fms(FviMatchSmallKernel::with_b(p, b)),
        KernelChoice::OrthogonalDistinct(c) => AnyKernel::Od(OrthogonalDistinctKernel::new(p, c)),
        KernelChoice::OrthogonalArbitrary(c) => {
            AnyKernel::Oa(OrthogonalArbitraryKernel::new(p, c, smem_limit))
        }
        KernelChoice::Naive => AnyKernel::Naive(NaiveKernel::new(p)),
        KernelChoice::CpuTiled { tile, threads, .. } => {
            return PlanExec::Cpu(ttlg_cpu::CpuPlan::new(
                p.shape.extents(),
                p.perm.as_slice(),
                tile,
                threads,
            ))
        }
    })
}

/// Fabricated transaction statistics for a CPU execution: modeled
/// cache-line traffic on each side plus the element count, so the
/// report/observe pipeline downstream keeps working on real-backend
/// runs.
fn cpu_stats(volume: usize, elem_bytes: usize) -> TransactionStats {
    let line_tx = (volume * elem_bytes).div_ceil(features::CPU_LINE_BYTES) as u64;
    TransactionStats {
        dram_load_tx: line_tx,
        dram_store_tx: line_tx,
        elements_moved: volume as u64,
        ..Default::default()
    }
}

/// A [`KernelTiming`] carrying a measured wall-clock time: all of it
/// attributed to DRAM (the tiled kernel is memory-bound by design), with
/// neutral overlap factors.
fn cpu_timing(wall_ns: f64) -> KernelTiming {
    KernelTiming {
        time_ns: wall_ns,
        dram_ns: wall_ns,
        smem_ns: 0.0,
        instr_ns: 0.0,
        launch_ns: 0.0,
        mlp: 1.0,
        tail: 1.0,
    }
}

/// Assemble a [`TransposeReport`] for a wall-clock-timed CPU execution.
fn cpu_report<E: Element>(plan: &Plan<E>, wall_ns: f64) -> TransposeReport {
    let vol = plan.problem.volume();
    let timing = cpu_timing(wall_ns);
    TransposeReport {
        schema: plan.schema(),
        kernel_time_ns: wall_ns,
        bandwidth_gbps: timing.bandwidth_gbps(vol, E::BYTES),
        stats: cpu_stats(vol, E::BYTES),
        predicted_ns: plan.predicted_ns,
        plan_time_ns: plan.plan_time_ns,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::reference;

    fn opts_checked() -> TransposeOptions {
        TransposeOptions {
            check_disjoint_writes: true,
            ..Default::default()
        }
    }

    fn roundtrip(extents: &[usize], perm: &[usize]) -> TransposeReport {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let t = Transposer::new_k40c();
        let plan = t.plan::<u64>(&shape, &perm, &opts_checked()).unwrap();
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (out, report) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data(), "case {extents:?} perm {perm}");
        report
    }

    #[test]
    fn cpu_backend_plans_and_executes_bit_equal() {
        let t = Transposer::new_k40c();
        let opts = TransposeOptions::for_backend(Backend::Cpu);
        for (extents, perm) in [
            (&[64, 8, 8][..], &[0, 2, 1][..]),
            (&[16, 16, 16], &[2, 1, 0]),
            (&[9, 7, 5, 3], &[3, 1, 0, 2]),
            (&[32, 32], &[0, 1]),
        ] {
            let shape = Shape::new(extents).unwrap();
            let perm = Permutation::new(perm).unwrap();
            let plan = t.plan::<u64>(&shape, &perm, &opts).unwrap();
            assert_eq!(plan.backend(), Backend::Cpu, "case {extents:?}");
            assert!(matches!(
                plan.candidate.choice,
                KernelChoice::CpuTiled { .. }
            ));
            let input: DenseTensor<u64> = DenseTensor::iota(shape);
            let (out, report) = t.execute(&plan, &input).unwrap();
            let expect = reference::transpose_reference(&input, &perm).unwrap();
            assert_eq!(out.data(), expect.data(), "case {extents:?} perm {perm}");
            assert!(report.kernel_time_ns > 0.0);
            assert!(report.bandwidth_gbps > 0.0);
            assert!(report.stats.dram_load_tx > 0);
        }
    }

    #[test]
    fn default_options_stay_on_gpu_sim() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[32, 32, 32]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let plan = t
            .plan::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        assert_eq!(plan.backend(), Backend::GpuSim);
    }

    #[test]
    fn cross_backend_sweep_considers_both_lanes() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[32, 16, 16]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let opts = TransposeOptions {
            backend: None,
            ..Default::default()
        };
        let problem = Problem::new(&shape, &perm).unwrap();
        let schemas = applicable_schemas(&problem);
        let cands = t.enumerate_all::<f64>(&problem, &schemas, &opts, None);
        assert!(cands.iter().any(|c| c.backend() == Backend::GpuSim));
        assert!(cands.iter().any(|c| c.backend() == Backend::Cpu));
        // The auto sweep plans and executes correctly whichever lane wins.
        let plan = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());
        let (out, _) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        // Guard flags were computed per lane: within each backend at
        // least one candidate survives the band.
        let (_, ranked) = t.plan_topk::<f64>(&shape, &perm, &opts, 32).unwrap();
        for b in Backend::ALL {
            let lane: Vec<_> = ranked
                .iter()
                .filter(|r| r.candidate.backend() == b)
                .collect();
            if !lane.is_empty() {
                assert!(
                    lane.iter().any(|r| !r.guard_rejected),
                    "lane {b} fully guard-rejected"
                );
            }
        }
    }

    #[test]
    fn cpu_backend_measured_planning_works() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[48, 16, 8]).unwrap();
        let perm = Permutation::new(&[2, 0, 1]).unwrap();
        let opts = TransposeOptions::for_backend(Backend::Cpu);
        let plan = t.plan_measured::<u32>(&shape, &perm, &opts).unwrap();
        assert_eq!(plan.backend(), Backend::Cpu);
        assert!(plan.is_measured());
        let input: DenseTensor<u32> = DenseTensor::iota(shape);
        let (out, _) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        // measure_candidate on the winning candidate produces a
        // wall-clock timing with CPU-modeled stats.
        let m = t
            .measure_candidate::<u32>(&plan.problem, &plan.candidate)
            .unwrap();
        assert!(m.timing.time_ns > 0.0);
        assert!(m.stats.dram_load_tx > 0);
    }

    #[test]
    fn profile_rejects_cpu_plans() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[16, 16]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let opts = TransposeOptions::for_backend(Backend::Cpu);
        let plan = t.plan::<u64>(&shape, &perm, &opts).unwrap();
        match t.profile_plan(&plan) {
            Err(PlanError::Backend(Backend::Cpu)) => {}
            Err(e) => panic!("expected Backend error, got {e:?}"),
            Ok(_) => panic!("expected Backend error, got a profile"),
        }
    }

    #[test]
    fn plans_and_executes_all_schema_families() {
        // Copy (identity)
        let r = roundtrip(&[16, 16, 16], &[0, 1, 2]);
        assert_eq!(r.schema, Schema::Copy);
        // FVI-Match-Large
        let r = roundtrip(&[64, 8, 8], &[0, 2, 1]);
        assert_eq!(r.schema, Schema::FviMatchLarge);
        // FVI-Match-Small family (model may pick FMS or OA)
        let r = roundtrip(&[8, 8, 8, 8], &[0, 3, 2, 1]);
        assert!(matches!(
            r.schema,
            Schema::FviMatchSmall | Schema::OrthogonalArbitrary
        ));
        // Orthogonal-Distinct family
        let r = roundtrip(&[64, 64], &[1, 0]);
        assert!(matches!(
            r.schema,
            Schema::OrthogonalDistinct | Schema::OrthogonalArbitrary
        ));
        // Orthogonal-Arbitrary (overlap)
        let r = roundtrip(&[8, 2, 8, 8], &[2, 1, 3, 0]);
        assert!(r.bandwidth_gbps > 0.0);
    }

    #[test]
    fn transpose_one_shot() {
        let shape = Shape::new(&[16, 16, 16]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let t = Transposer::new_k40c();
        let input: DenseTensor<f64> = DenseTensor::iota(shape);
        let (out, report) = t.transpose(&input, &perm).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        assert!(report.kernel_time_ns > 0.0);
        assert!(report.plan_time_ns > 0.0);
    }

    #[test]
    fn forced_schema_and_fusion_ablation() {
        let shape = Shape::new(&[16, 16, 16]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let t = Transposer::new_k40c();
        let input: DenseTensor<u64> = DenseTensor::iota(shape.clone());
        for forced in [Schema::Naive, Schema::OrthogonalArbitrary] {
            let o = TransposeOptions {
                forced_schema: Some(forced),
                check_disjoint_writes: true,
                ..Default::default()
            };
            let plan = t.plan::<u64>(&shape, &perm, &o).unwrap();
            assert_eq!(plan.schema(), forced);
            let (out, _) = t.execute(&plan, &input).unwrap();
            let expect = reference::transpose_reference(&input, &perm).unwrap();
            assert_eq!(out.data(), expect.data());
        }
        // fusion off still correct
        let o = TransposeOptions {
            enable_fusion: false,
            check_disjoint_writes: true,
            ..Default::default()
        };
        let perm_fusable = Permutation::new(&[2, 0, 1]).unwrap();
        let plan = t.plan::<u64>(&shape, &perm_fusable, &o).unwrap();
        let (out, _) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm_fusable).unwrap();
        assert_eq!(out.data(), expect.data());
    }

    #[test]
    fn model_sweep_beats_or_matches_default_choice() {
        let shape = Shape::new(&[27, 27, 27, 27]).unwrap();
        let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
        let t = Transposer::new_k40c();
        let sweep = t
            .plan::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let quick = t
            .plan::<f64>(
                &shape,
                &perm,
                &TransposeOptions {
                    model_sweep: false,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(sweep.predicted_ns() <= quick.predicted_ns() + 1e-6);
        assert!(sweep.candidates_evaluated() >= quick.candidates_evaluated());
    }

    #[test]
    fn time_plan_matches_execute_timing() {
        let shape = Shape::new(&[32, 32, 32]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let t = Transposer::new_k40c();
        let plan = t
            .plan::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let input: DenseTensor<f64> = DenseTensor::iota(shape);
        let (_, exec_report) = t.execute(&plan, &input).unwrap();
        let time_report = t.time_plan(&plan).unwrap();
        assert_eq!(exec_report.stats, time_report.stats);
        assert!((exec_report.kernel_time_ns - time_report.kernel_time_ns).abs() < 1e-9);
    }

    #[test]
    fn queryable_prediction_interface() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[64, 64, 64]).unwrap();
        let fast = t
            .predict_transpose_ns::<f64>(&shape, &Permutation::new(&[0, 1, 2]).unwrap())
            .unwrap();
        let slow = t
            .predict_transpose_ns::<f64>(&shape, &Permutation::new(&[2, 1, 0]).unwrap())
            .unwrap();
        assert!(fast > 0.0 && slow > 0.0);
        // Both are DRAM-bound at the same minimum traffic; the copy must
        // be at least competitive (within launch-geometry noise).
        assert!(
            fast <= slow * 1.05,
            "identity copy should not be slower: {fast} vs {slow}"
        );
    }

    #[test]
    fn profile_plan_reports_counters() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[32, 32, 32]).unwrap();
        let perm = Permutation::new(&[2, 1, 0]).unwrap();
        let plan = t
            .plan::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let prof = t.profile_plan(&plan).unwrap();
        assert_eq!(prof.elements, 32768);
        assert!(prof.dram_efficiency() > 0.5);
        assert!(prof.render().contains("bottleneck"));
    }

    #[test]
    fn measured_plan_never_slower_than_model_plan() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[17, 17, 17, 17]).unwrap();
        let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
        let opts = TransposeOptions::default();
        let model = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        let measured = t.plan_measured::<f64>(&shape, &perm, &opts).unwrap();
        let tm = t.time_plan(&model).unwrap().kernel_time_ns;
        let tb = t.time_plan(&measured).unwrap().kernel_time_ns;
        assert!(tb <= tm + 1e-9, "measured-best {tb} vs model {tm}");
        // measure mode pays for what it measured
        assert!(measured.plan_time_ns() > model.plan_time_ns());
        // correctness of the measured plan
        let input: DenseTensor<f64> = DenseTensor::iota(shape);
        let (out, _) = t.execute(&measured, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
    }

    #[test]
    fn analytic_guard_contains_adversarial_predictors() {
        // A predictor that *inverts* the ranking (prefers the slowest
        // candidate) must still end up within the analytic guard band of
        // the best plan — the guard exists for regression models gone
        // wrong far outside their training range.
        struct Inverted(AnalyticPredictor);
        impl TimePredictor for Inverted {
            fn predict_ns(&self, c: &Candidate) -> f64 {
                1.0e12 / self.0.predict_ns(c).max(1.0)
            }
        }
        let device = DeviceConfig::k40c();
        let adversarial = Transposer::with_predictor(
            device.clone(),
            Arc::new(Inverted(AnalyticPredictor::new(device.clone()))),
        );
        let sane = Transposer::new(device);
        let shape = Shape::new(&[16, 16, 16, 16, 16, 16]).unwrap();
        let perm = Permutation::new(&[5, 0, 1, 3, 4, 2]).unwrap();
        let opts = TransposeOptions::default();
        let bad_plan = adversarial.plan::<f64>(&shape, &perm, &opts).unwrap();
        let good_plan = sane.plan::<f64>(&shape, &perm, &opts).unwrap();
        let bad_t = adversarial.time_plan(&bad_plan).unwrap().kernel_time_ns;
        let good_t = sane.time_plan(&good_plan).unwrap().kernel_time_ns;
        // The guard bounds *analytic predictions* to 1.25x of the analytic
        // best; actual times can drift a bit further where the closed form
        // underestimates, so allow head-room in the assertion.
        assert!(
            bad_t <= 1.7 * good_t,
            "guard failed: adversarial plan {bad_t} vs best {good_t}"
        );
    }

    #[test]
    fn plan_traced_records_the_full_decision() {
        // A 6D Orthogonal-Distinct problem: the trace must list every
        // ranked candidate with its slice sizes and predicted time, and
        // the chosen one must match the plan.
        let shape = Shape::new(&[16, 16, 16, 16, 16, 16]).unwrap();
        let perm = Permutation::new(&[5, 4, 3, 2, 1, 0]).unwrap();
        let t = Transposer::new_k40c();
        let (plan, trace) = t
            .plan_traced::<f64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        assert_eq!(trace.extents, vec![16; 6]);
        assert_eq!(trace.perm, vec![5, 4, 3, 2, 1, 0]);
        assert!(trace.admissible.contains(&Schema::OrthogonalDistinct));
        assert_eq!(trace.candidates.len(), plan.candidates_evaluated());
        assert!(trace.candidates.len() > 1, "sweep should rank many");
        // Exactly one chosen candidate, consistent with the plan.
        let chosen: Vec<_> = trace.candidates.iter().filter(|c| c.chosen).collect();
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].schema, plan.schema());
        assert!((chosen[0].predicted_ns - plan.predicted_ns()).abs() < 1e-9);
        assert_eq!(trace.chosen_candidate().unwrap().schema, plan.schema());
        // Every candidate carries slice sizes and finite estimates.
        for c in &trace.candidates {
            assert!(c.predicted_ns.is_finite() && c.predicted_ns > 0.0);
            assert!(c.analytic_ns.is_finite() && c.analytic_ns > 0.0);
            if matches!(
                c.schema,
                Schema::OrthogonalDistinct | Schema::OrthogonalArbitrary
            ) {
                assert!(c.input_slice > 0 && c.output_slice > 0 && c.total_slice > 0);
            }
        }
        assert!(trace.analytic_best_ns.is_finite());
        assert!((trace.guard_factor - 1.25).abs() < 1e-12);
        assert!((trace.plan_time_ns - plan.plan_time_ns()).abs() < 1e-9);
        // The sweep discards duplicates on this problem; they are logged.
        assert!(
            !trace.rejections.is_empty(),
            "OD sweep over a 6D cube revisits configurations"
        );
        // Rendering mentions each schema that produced candidates and the
        // winner's parameters.
        let text = trace.render();
        assert!(text.contains("== decision trace: 16x16x16x16x16x16 perm [5,4,3,2,1,0] =="));
        assert!(text.contains("chosen:"));
        assert!(text.contains(&chosen[0].params));
    }

    #[test]
    fn plan_traced_matches_untraced_choice() {
        let shape = Shape::new(&[27, 27, 27, 27]).unwrap();
        let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
        let t = Transposer::new_k40c();
        let opts = TransposeOptions::default();
        let plain = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        let (traced, trace) = t.plan_traced::<f64>(&shape, &perm, &opts).unwrap();
        assert_eq!(plain.schema(), traced.schema());
        assert!((plain.predicted_ns() - traced.predicted_ns()).abs() < 1e-9);
        assert_eq!(plain.candidates_evaluated(), trace.candidates.len());
    }

    #[test]
    fn parallel_sweep_matches_sequential_argmin() {
        // The scoring phase of the Alg. 3 sweep may fan out over worker
        // threads; the parallel path must produce bit-identical scores —
        // and therefore the identical argmin — to the sequential one.
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[16, 16, 16, 16, 16, 16]).unwrap();
        let perm = Permutation::new(&[5, 4, 3, 2, 1, 0]).unwrap();
        let opts = TransposeOptions::default();
        let problem = Problem::new(&shape, &perm).unwrap();
        let schemas = applicable_schemas(&problem);
        let mut cands = t.enumerate_all::<f64>(&problem, &schemas, &opts, None);
        assert!(!cands.is_empty());
        // Pad past the parallel threshold if the natural sweep is narrow
        // (scoring is a pure function, so duplicates are harmless).
        while cands.len() < PARALLEL_SWEEP_MIN {
            let c = cands[cands.len() % 7].clone();
            cands.push(c);
        }
        let seq = t.score_candidates(&cands, false);
        let par = t.score_candidates(&cands, true);
        assert_eq!(seq, par, "parallel scoring must be bit-identical");
        let lanes: Vec<Backend> = cands.iter().map(|c| c.backend()).collect();
        let (seq_order, seq_best, _) = order_candidates(&seq, &lanes);
        let (par_order, par_best, _) = order_candidates(&par, &lanes);
        assert_eq!(seq_order[0], par_order[0], "identical argmin");
        assert_eq!(seq_best, par_best);
        // Under a thread cap of 1 the parallel path degrades to the
        // sequential loop and must still agree.
        let capped = ttlg_tensor::parallel::with_thread_cap(1, || t.score_candidates(&cands, true));
        assert_eq!(capped, par);
    }

    #[test]
    fn plan_topk_head_matches_plan() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[27, 27, 27, 27]).unwrap();
        let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
        let opts = TransposeOptions::default();
        let plain = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        let (plan, ranked) = t.plan_topk::<f64>(&shape, &perm, &opts, 4).unwrap();
        assert!(!ranked.is_empty() && ranked.len() <= 4);
        assert_eq!(plan.schema(), plain.schema());
        assert!((plan.predicted_ns() - plain.predicted_ns()).abs() < 1e-9);
        assert!((plan.plan_time_ns() - plain.plan_time_ns()).abs() < 1e-9);
        assert_eq!(plan.candidates_evaluated(), plain.candidates_evaluated());
        assert!((ranked[0].predicted_ns - plain.predicted_ns()).abs() < 1e-9);
        assert!(!ranked[0].guard_rejected, "the head is always eligible");
        // Eligible entries come first, each segment ascending by
        // predicted time.
        for w in ranked.windows(2) {
            if w[0].guard_rejected == w[1].guard_rejected {
                assert!(w[0].predicted_ns <= w[1].predicted_ns);
            } else {
                assert!(!w[0].guard_rejected && w[1].guard_rejected);
            }
        }
    }

    #[test]
    fn plan_for_candidate_reconstructs_runnable_plan() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[17, 17, 17, 17]).unwrap();
        let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
        let opts = opts_checked();
        let (_, ranked) = t.plan_topk::<u64>(&shape, &perm, &opts, 3).unwrap();
        // Rebuild a plan from the *last* ranked candidate with a made-up
        // prediction, as the autotuner does with a measured time.
        let pick = ranked.last().unwrap();
        let plan = t
            .plan_for_candidate::<u64>(&shape, &perm, &opts, pick.candidate.clone(), 1234.5)
            .unwrap();
        assert_eq!(plan.candidates_evaluated(), 1);
        assert!((plan.predicted_ns() - 1234.5).abs() < 1e-12);
        let input: DenseTensor<u64> = DenseTensor::iota(shape);
        let (out, report) = t.execute(&plan, &input).unwrap();
        let expect = reference::transpose_reference(&input, &perm).unwrap();
        assert_eq!(out.data(), expect.data());
        assert!((report.predicted_ns - 1234.5).abs() < 1e-12);
    }

    #[test]
    fn trace_retention_attaches_decision_to_plans() {
        let shape = Shape::new(&[27, 27, 27, 27]).unwrap();
        let perm = Permutation::new(&[3, 1, 0, 2]).unwrap();
        let t = Transposer::new_k40c();
        let opts = TransposeOptions::default();
        // Off by default: no trace, no measured flag.
        let plain = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        assert!(plain.decision_trace().is_none());
        assert!(!plain.is_measured());
        // On: the plan carries the same decision plan_traced would give.
        t.set_trace_retention(true);
        assert!(t.retains_traces());
        let retained = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        let tr = retained.decision_trace().expect("trace retained");
        assert_eq!(tr.candidates.len(), retained.candidates_evaluated());
        assert_eq!(tr.chosen_candidate().unwrap().schema, retained.schema());
        assert!((tr.plan_time_ns - retained.plan_time_ns()).abs() < 1e-9);
        assert!(tr.render().contains("chosen:"));
        // Retention does not change the choice itself.
        assert_eq!(plain.schema(), retained.schema());
        assert!((plain.predicted_ns() - retained.predicted_ns()).abs() < 1e-9);
        // An explicit caller trace still wins (no double work): the
        // plan keeps no copy.
        let (explicit, trace) = t.plan_traced::<f64>(&shape, &perm, &opts).unwrap();
        assert!(explicit.decision_trace().is_none());
        assert_eq!(trace.candidates.len(), explicit.candidates_evaluated());
        // Measured-candidate plans are tagged for warm attribution.
        let (_, ranked) = t.plan_topk::<f64>(&shape, &perm, &opts, 2).unwrap();
        let warmed = t
            .plan_for_candidate::<f64>(&shape, &perm, &opts, ranked[0].candidate.clone(), 99.0)
            .unwrap();
        assert!(warmed.is_measured());
    }

    #[test]
    fn report_bandwidth_consistent() {
        let r = roundtrip(&[32, 32, 32], &[2, 1, 0]);
        let expect = 2.0 * 32768.0 * 8.0 / r.kernel_time_ns;
        assert!((r.bandwidth_gbps - expect).abs() < 1e-9);
    }

    #[test]
    fn input_shape_validated() {
        let t = Transposer::new_k40c();
        let shape = Shape::new(&[8, 8]).unwrap();
        let perm = Permutation::new(&[1, 0]).unwrap();
        let plan = t
            .plan::<u64>(&shape, &perm, &TransposeOptions::default())
            .unwrap();
        let wrong: DenseTensor<u64> = DenseTensor::iota(Shape::new(&[4, 16]).unwrap());
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = t.execute(&plan, &wrong);
        }));
        assert!(res.is_err());
    }
}
