//! A fused transposition problem: the canonical form every kernel works on.

use ttlg_tensor::{fuse, Element, Permutation, Result, Shape};

/// A transposition problem after index fusion, with all the derived layout
/// data the kernels need.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Original (pre-fusion) input shape.
    pub orig_shape: Shape,
    /// Original (pre-fusion) permutation.
    pub orig_perm: Permutation,
    /// Fused input shape (dim 0 fastest).
    pub shape: Shape,
    /// Fused permutation (`perm[i] = j`: output dim `i` is input dim `j`).
    pub perm: Permutation,
    /// Fused output shape.
    pub out_shape: Shape,
    /// Strides of the fused input tensor.
    pub in_strides: Vec<usize>,
    /// Strides of the fused output tensor (indexed by output dim).
    pub out_strides: Vec<usize>,
    /// For input dim `j`: its position in the output (`inv_perm[j]`).
    pub out_pos_of_in: Vec<usize>,
}

impl Problem {
    /// Build (and fuse) a problem from an input shape and a permutation.
    pub fn new(shape: &Shape, perm: &Permutation) -> Result<Problem> {
        let fused = fuse(shape, perm)?;
        let out_shape = fused.perm.apply_to_shape(&fused.shape)?;
        let in_strides = fused.shape.strides();
        let out_strides = out_shape.strides();
        let out_pos_of_in = fused.perm.inverse().as_slice().to_vec();
        Ok(Problem {
            orig_shape: shape.clone(),
            orig_perm: perm.clone(),
            shape: fused.shape,
            perm: fused.perm,
            out_shape,
            in_strides,
            out_strides,
            out_pos_of_in,
        })
    }

    /// Build a problem *without* index fusion (ablation use only — fusion
    /// is always beneficial, and the paper applies it unconditionally).
    pub fn new_unfused(shape: &Shape, perm: &Permutation) -> Result<Problem> {
        let out_shape = perm.apply_to_shape(shape)?;
        let in_strides = shape.strides();
        let out_strides = out_shape.strides();
        let out_pos_of_in = perm.inverse().as_slice().to_vec();
        Ok(Problem {
            orig_shape: shape.clone(),
            orig_perm: perm.clone(),
            shape: shape.clone(),
            perm: perm.clone(),
            out_shape,
            in_strides,
            out_strides,
            out_pos_of_in,
        })
    }

    /// Rank of the fused problem (the paper's *scaled rank*).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total elements.
    #[inline]
    pub fn volume(&self) -> usize {
        self.shape.volume()
    }

    /// Payload bytes for element type `E`.
    #[inline]
    pub fn bytes<E: Element>(&self) -> usize {
        self.volume() * E::BYTES
    }

    /// Whether the fused permutation is the identity (a pure memcpy).
    #[inline]
    pub fn is_copy(&self) -> bool {
        self.perm.is_identity()
    }

    /// Extent of fused input dim `j`.
    #[inline]
    pub fn extent(&self, j: usize) -> usize {
        self.shape.extent(j)
    }

    /// Stride *in the output tensor* of fused input dim `j`.
    #[inline]
    pub fn out_stride_of_in_dim(&self, j: usize) -> usize {
        self.out_strides[self.out_pos_of_in[j]]
    }

    /// The input dim serving as the output's fastest-varying index.
    #[inline]
    pub fn out_fvi_in_dim(&self) -> usize {
        self.perm.output_dim_source(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(extents: &[usize], perm: &[usize]) -> Problem {
        Problem::new(
            &Shape::new(extents).unwrap(),
            &Permutation::new(perm).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn fuses_on_construction() {
        let p = mk(&[4, 5, 6, 7], &[3, 1, 2, 0]);
        assert_eq!(p.rank(), 3);
        assert_eq!(p.shape.extents(), &[4, 30, 7]);
        assert_eq!(p.perm.as_slice(), &[2, 1, 0]);
        assert_eq!(p.volume(), 840);
    }

    #[test]
    fn output_strides_and_positions() {
        let p = mk(&[4, 5, 6], &[2, 0, 1]); // fuses dims 0,1 -> rank 2 [20,6] perm [1,0]
        assert_eq!(p.rank(), 2);
        assert_eq!(p.out_shape.extents(), &[6, 20]);
        // input dim 0 (the fused {0,1}) sits at output position 1.
        assert_eq!(p.out_pos_of_in, vec![1, 0]);
        assert_eq!(p.out_stride_of_in_dim(0), 6);
        assert_eq!(p.out_stride_of_in_dim(1), 1);
        assert_eq!(p.out_fvi_in_dim(), 1);
    }

    #[test]
    fn identity_is_copy() {
        let p = mk(&[3, 3, 3], &[0, 1, 2]);
        assert!(p.is_copy());
        assert_eq!(p.rank(), 1);
    }

    #[test]
    fn bytes_by_element() {
        let p = mk(&[10, 10], &[1, 0]);
        assert_eq!(p.bytes::<f64>(), 800);
        assert_eq!(p.bytes::<f32>(), 400);
    }
}
