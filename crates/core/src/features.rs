//! Candidate descriptions and feature extraction (paper Sec. V).
//!
//! A [`Candidate`] describes one (schema, parameter) configuration of a
//! transposition: launch geometry, slice volumes, the abstract "cycles"
//! measure, contiguous-chunk strides, boundary-check special-instruction
//! counts, and closed-form estimated transaction statistics. These are
//! exactly the features of the paper's Table II regression models, and the
//! inputs to every [`crate::model::TimePredictor`].

use crate::analysis;
use crate::backend::Backend;
use crate::kernels::{FviMatchSmallKernel, OaChoice, OdChoice};
use crate::problem::Problem;
use crate::schema::Schema;
use ttlg_gpu_sim::{Launch, TransactionStats};
use ttlg_tensor::{Element, WARP_SIZE};

/// Modeled cache-line width of the CPU backend's memory traffic, bytes.
pub const CPU_LINE_BYTES: usize = 64;

/// Parameter choice carried by a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Identity copy (no parameters).
    Copy,
    /// FVI-Match-Large (no parameters).
    FviMatchLarge,
    /// FVI-Match-Small with blocking factor `b`.
    FviMatchSmall {
        /// Blocking factor on the second-fastest indices.
        b: usize,
    },
    /// Orthogonal-Distinct with a slice choice.
    OrthogonalDistinct(OdChoice),
    /// Orthogonal-Arbitrary with a slice choice.
    OrthogonalArbitrary(OaChoice),
    /// Naive baseline (no parameters).
    Naive,
    /// Real CPU backend: blocked, cache-tiled host loops (`ttlg-cpu`).
    CpuTiled {
        /// Nominal square tile edge.
        tile: usize,
        /// Worker threads the plan requests.
        threads: usize,
        /// Taxonomy schema of the underlying problem — carried on the
        /// variant so per-schema accounting keeps working for a choice
        /// that is not itself one of the paper's GPU schemas.
        schema: Schema,
    },
}

impl KernelChoice {
    /// The schema this choice belongs to.
    pub fn schema(&self) -> Schema {
        match self {
            KernelChoice::Copy => Schema::Copy,
            KernelChoice::FviMatchLarge => Schema::FviMatchLarge,
            KernelChoice::FviMatchSmall { .. } => Schema::FviMatchSmall,
            KernelChoice::OrthogonalDistinct(_) => Schema::OrthogonalDistinct,
            KernelChoice::OrthogonalArbitrary(_) => Schema::OrthogonalArbitrary,
            KernelChoice::Naive => Schema::Naive,
            KernelChoice::CpuTiled { schema, .. } => *schema,
        }
    }

    /// The execution backend this choice runs on.
    pub fn backend(&self) -> Backend {
        match self {
            KernelChoice::CpuTiled { .. } => Backend::Cpu,
            _ => Backend::GpuSim,
        }
    }
}

/// A fully described transposition candidate (one row of the model's
/// feature matrix).
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The parameter choice.
    pub choice: KernelChoice,
    /// Tensor volume, elements.
    pub volume: usize,
    /// Element width, bytes.
    pub elem_bytes: usize,
    /// Estimated grid size.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Shared memory per block, bytes.
    pub smem_bytes: usize,
    /// Combined input-slice length (A / ilimit / b*N0; 0 if n/a).
    pub input_slice: usize,
    /// Combined output-slice length (B / olimit; 0 if n/a).
    pub output_slice: usize,
    /// Whole-slice volume (OA; A*B for OD).
    pub total_slice: usize,
    /// Contiguous chunk length on the input side.
    pub input_stride: usize,
    /// Contiguous chunk length on the output side.
    pub output_stride: usize,
    /// Estimated boundary-check special instructions.
    pub special_instr: f64,
    /// The abstract "cycles" feature (Sec. V).
    pub cycles: f64,
    /// Closed-form estimated transaction statistics (whole grid).
    pub est_stats: TransactionStats,
}

impl Candidate {
    /// The schema of this candidate.
    pub fn schema(&self) -> Schema {
        self.choice.schema()
    }

    /// Launch geometry implied by the candidate.
    pub fn launch(&self) -> Launch {
        Launch {
            grid_blocks: self.grid_blocks,
            threads_per_block: self.threads_per_block,
            smem_bytes_per_block: self.smem_bytes,
        }
    }

    /// Total threads (the Table II `NumThreads` feature).
    pub fn num_threads(&self) -> usize {
        self.grid_blocks * self.threads_per_block
    }

    /// The execution backend this candidate targets.
    pub fn backend(&self) -> Backend {
        self.choice.backend()
    }
}

/// Tile-level cycle count for one `A x B` slice (Sec. V, Orthogonal
/// cases): full 32x32 tiles cost 32+32, partial tiles cost their actual
/// row/column widths.
pub fn tile_cycles(a: usize, b: usize) -> f64 {
    let ws = WARP_SIZE;
    let fa = (a / ws) as f64;
    let ra = (a % ws) as f64;
    let fb = (b / ws) as f64;
    let rb = (b % ws) as f64;
    let mut f = fa * fb * (ws + ws) as f64;
    if ra > 0.0 {
        f += fb * (ra + ws as f64);
    }
    if rb > 0.0 {
        f += fa * (ws as f64 + rb);
    }
    if ra > 0.0 && rb > 0.0 {
        f += ra + rb;
    }
    f
}

/// Slice-type populations (the N1..N4 of Sec. V) for a pair of (possibly)
/// blocked dimensions: `(count, a_len, b_len)` entries for the
/// full/partial x full/partial combinations, zero-count entries omitted.
/// `outer` is the number of slices per (a-step, b-step) combination.
fn slice_types(
    outer: usize,
    sa: &BlockSteps,
    a_prefix: usize,
    sb: &BlockSteps,
    b_prefix: usize,
) -> Vec<(f64, usize, usize)> {
    let mut v = Vec::new();
    let mut push = |cnt: usize, al: usize, bl: usize| {
        if cnt > 0 && al > 0 && bl > 0 {
            v.push((cnt as f64, al, bl));
        }
    };
    let a_full = a_prefix * sa.full_len;
    let a_part = a_prefix * sa.part_len;
    let b_full = b_prefix * sb.full_len;
    let b_part = b_prefix * sb.part_len;
    push(outer * sa.full_steps * sb.full_steps, a_full, b_full);
    if sa.has_part {
        push(outer * sb.full_steps, a_part, b_full);
    }
    if sb.has_part {
        push(outer * sa.full_steps, a_full, b_part);
    }
    if sa.has_part && sb.has_part {
        push(outer, a_part, b_part);
    }
    v
}

/// Grid-step bookkeeping for one blocked dim.
struct BlockSteps {
    full_len: usize,
    part_len: usize,
    full_steps: usize,
    has_part: bool,
    total_steps: usize,
}

fn block_steps(extent: usize, chunk: usize) -> BlockSteps {
    let full_steps = extent / chunk;
    let rem = extent % chunk;
    BlockSteps {
        full_len: chunk,
        part_len: rem,
        full_steps,
        has_part: rem != 0,
        total_steps: full_steps + usize::from(rem != 0),
    }
}

/// Build the candidate description for an Orthogonal-Distinct choice.
pub fn od_candidate<E: Element>(p: &Problem, c: OdChoice) -> Candidate {
    let a_vol = c.a_vol(p);
    let b_vol = c.b_vol(p);
    let a_prefix = p.shape.prefix_volume(c.in_dims - 1);
    let b_prefix = p.out_shape.prefix_volume(c.out_dims - 1);
    let xa = c.in_dims - 1;
    let jb = p.perm.output_dim_source(c.out_dims - 1);
    let sa = block_steps(p.extent(xa), c.block_a);
    let sb = block_steps(p.extent(jb), c.block_b);

    // Grid blocks: blocked steps x all dims outside the slice.
    let in_set: Vec<usize> = (0..c.in_dims).collect();
    let out_set: Vec<usize> = (0..c.out_dims)
        .map(|od| p.perm.output_dim_source(od))
        .collect();
    let outer: usize = (0..p.rank())
        .filter(|d| !in_set.contains(d) && !out_set.contains(d))
        .map(|d| p.extent(d))
        .product();
    let grid_blocks = sa.total_steps * sb.total_steps * outer;

    // Cycles: sum over slice types of tile cycles.
    let types = slice_types(outer, &sa, a_prefix, &sb, b_prefix);
    let cycles: f64 = types.iter().map(|&(n, a, b)| n * tile_cycles(a, b)).sum();

    // Estimated stats.
    let epb = analysis::elems_per_tx(E::BYTES) as f64;
    let ws = WARP_SIZE as f64;
    let mut est = TransactionStats::default();
    for &(n, a, b) in &types {
        let (af, bf) = (a as f64, b as f64);
        est.dram_load_tx += (n * (af / epb).ceil() * bf) as u64;
        est.dram_store_tx += (n * (bf / epb).ceil() * af) as u64;
        let in_acc = n * (af / ws).ceil() * bf;
        let out_acc = n * (bf / ws).ceil() * af;
        est.smem_store_acc += in_acc as u64;
        est.smem_load_acc += out_acc as u64;
        est.tex_load_tx += (in_acc + out_acc) as u64;
    }
    est.elements_moved = p.volume() as u64;
    let griddims = (usize::from(sa.total_steps > 1)
        + usize::from(sb.total_steps > 1)
        + (0..p.rank())
            .filter(|d| !in_set.contains(d) && !out_set.contains(d))
            .count()) as u64;
    est.special_instr = 2 * griddims * 256 * grid_blocks as u64;

    Candidate {
        choice: KernelChoice::OrthogonalDistinct(c),
        volume: p.volume(),
        elem_bytes: E::BYTES,
        grid_blocks,
        threads_per_block: 256,
        smem_bytes: WARP_SIZE * (WARP_SIZE + 1) * E::BYTES,
        input_slice: a_vol,
        output_slice: b_vol,
        total_slice: a_vol * b_vol,
        input_stride: a_vol,
        output_stride: b_vol,
        special_instr: est.special_instr as f64,
        cycles,
        est_stats: est,
    }
}

/// Build the candidate description for an Orthogonal-Arbitrary choice.
pub fn oa_candidate<E: Element>(p: &Problem, c: OaChoice) -> Candidate {
    let ilimit = c.ilimit(p);
    let olimit = c.olimit(p);
    let slice_vol = ilimit * olimit;
    let xa = c.in_dims - 1;
    let jb = p.perm.output_dim_source(c.out_dims - 1);
    let blocked_a = c.block_a < p.extent(xa);
    let blocked_b = jb >= c.in_dims && c.block_b < p.extent(jb);
    let sa = block_steps(p.extent(xa), c.block_a);
    let sb = if blocked_b {
        block_steps(p.extent(jb), c.block_b)
    } else {
        BlockSteps {
            full_len: 1,
            part_len: 0,
            full_steps: 1,
            has_part: false,
            total_steps: 1,
        }
    };

    let slice_set: Vec<usize> = {
        let mut s: Vec<usize> = (0..c.in_dims).collect();
        s.extend(c.oos_dims(p).iter().map(|&(j, _)| j));
        s
    };
    // Mirror the kernel's thread-coarsening heuristic: the coarsened dim
    // contributes one grid step instead of `extent`.
    let coarsen_dim =
        crate::kernels::common::pick_coarsening_dim(p.shape.extents(), &slice_set, p.bytes::<E>());
    let coarsen_factor = coarsen_dim.map(|d| p.extent(d)).unwrap_or(1);
    let outer_dims: Vec<usize> = (0..p.rank()).filter(|d| !slice_set.contains(d)).collect();
    let outer: usize =
        outer_dims.iter().map(|&d| p.extent(d)).product::<usize>() / coarsen_factor.max(1);
    let grid_blocks = (if blocked_a { sa.total_steps } else { 1 }) * sb.total_steps * outer;
    let griddims = (usize::from(blocked_a) + usize::from(blocked_b) + outer_dims.len()) as u64;
    let threads = crate::kernels::common::pick_threads(slice_vol, 256);

    let out_run = analysis::output_contiguous_run(p, &c);
    let ws = WARP_SIZE as f64;
    let vol = p.volume() as f64;

    // Cycles: transactions on the input and output side, per Sec. V.
    let c3 = analysis::c3_input::<E>(p, ilimit);
    let c3p = analysis::c3_output::<E>(p, out_run);
    let cycles = c3 + c3p;

    // Boundary-check special instructions: partial blocks re-check every
    // slice position (each partial block scans the full slice space,
    // coarsening included).
    let a_steps = if blocked_a { sa.total_steps } else { 1 };
    let a_full = if blocked_a { sa.full_steps } else { 1 };
    let partial_blocks = (a_steps * sb.total_steps - a_full * sb.full_steps) * outer.max(1);
    let special = 2.0 * partial_blocks as f64 * slice_vol as f64 * coarsen_factor as f64;

    // Unpadded gather: when the buffer row length is a multiple of the
    // bank count the column-ish gather serializes heavily (measured
    // ~8-way on typical slices); otherwise the stagger keeps it mild.
    let conflict_factor: u64 = if ilimit.is_multiple_of(32) { 7 } else { 1 };
    let smem_acc = (vol / ws).ceil() as u64;
    let est = TransactionStats {
        dram_load_tx: c3 as u64,
        dram_store_tx: c3p as u64,
        smem_store_acc: smem_acc,
        smem_load_acc: smem_acc,
        smem_conflict_replays: smem_acc * conflict_factor,
        tex_load_tx: (vol / ilimit as f64).ceil() as u64 + 2 * smem_acc,
        // Block decode: one mod/div pair per grid dim per thread, once per
        // block (coarsening amortises the decode over sub-slices).
        special_instr: special as u64 + 2 * griddims * grid_blocks as u64 * threads as u64,
        index_instr: 2
            * threads as u64
            * grid_blocks as u64
            * coarsen_factor.saturating_sub(1) as u64,
        elements_moved: p.volume() as u64,
        ..Default::default()
    };

    Candidate {
        choice: KernelChoice::OrthogonalArbitrary(c),
        volume: p.volume(),
        elem_bytes: E::BYTES,
        grid_blocks,
        threads_per_block: threads,
        smem_bytes: slice_vol * E::BYTES,
        input_slice: ilimit,
        output_slice: olimit,
        total_slice: slice_vol,
        input_stride: ilimit,
        output_stride: out_run,
        special_instr: est.special_instr as f64,
        cycles,
        est_stats: est,
    }
}

/// Build the candidate description for FVI-Match-Small with blocking `b`.
pub fn fms_candidate<E: Element>(p: &Problem, b: usize) -> Candidate {
    let n0 = p.extent(0);
    let dim_ik = p.perm.output_dim_source(1);
    let c1 = analysis::c1_fvi_match_small::<E>(p, b);
    let s1 = block_steps(p.extent(1), b);
    let sk = block_steps(p.extent(dim_ik), b);
    let outer: usize = (2..p.rank())
        .filter(|&d| d != dim_ik)
        .map(|d| p.extent(d))
        .product();
    let grid_blocks = s1.total_steps * sk.total_steps * outer;
    let row_len = FviMatchSmallKernel::<E>::padded_row_len(n0, b);
    let ws = WARP_SIZE as f64;
    let vol = p.volume() as f64;

    let est = TransactionStats {
        dram_load_tx: c1 as u64,
        dram_store_tx: c1 as u64,
        smem_store_acc: (vol / ws).ceil() as u64,
        smem_load_acc: (vol / ws).ceil() as u64,
        special_instr: (2.0 * vol) as u64, // gather mod/div per element
        elements_moved: p.volume() as u64,
        ..Default::default()
    };

    Candidate {
        choice: KernelChoice::FviMatchSmall { b },
        volume: p.volume(),
        elem_bytes: E::BYTES,
        grid_blocks,
        threads_per_block: WARP_SIZE * b,
        smem_bytes: b * row_len * E::BYTES,
        input_slice: b * n0,
        output_slice: b * n0,
        total_slice: b * b * n0,
        input_stride: b * n0,
        output_stride: b * n0,
        special_instr: est.special_instr as f64,
        cycles: 2.0 * c1,
        est_stats: est,
    }
}

/// Build the candidate description for FVI-Match-Large.
pub fn fml_candidate<E: Element>(p: &Problem) -> Candidate {
    let n0 = p.extent(0);
    let c2 = analysis::c2_fvi_match_large::<E>(p);
    let rows: usize = (1..p.rank()).map(|d| p.extent(d)).product::<usize>().max(1);
    // Mirror the kernel's block geometry: coarsening if it engages, or
    // row packing toward 256 threads otherwise.
    let coarsen =
        crate::kernels::common::pick_coarsening_dim(p.shape.extents(), &[0], p.bytes::<E>())
            .filter(|&d| d != 0);
    let row_threads = crate::kernels::common::round_up(n0, 32).min(256);
    let (grid_blocks, threads) = match coarsen {
        Some(d) => (rows / p.extent(d), row_threads),
        None => {
            let rows_per_block = (256 / row_threads).max(1);
            // The packing chunks the first outer dim only.
            let packing_ext = if p.rank() > 1 { p.extent(1) } else { 1 };
            let eff = rows_per_block.min(packing_ext).max(1);
            let blocks = packing_ext.div_ceil(eff)
                * (2..p.rank()).map(|d| p.extent(d)).product::<usize>().max(1);
            (
                blocks,
                (row_threads * rows_per_block).min(256).max(row_threads),
            )
        }
    };
    let est = TransactionStats {
        dram_load_tx: c2 as u64,
        dram_store_tx: c2 as u64,
        elements_moved: p.volume() as u64,
        special_instr: 2 * (p.rank() as u64 - 1) * threads as u64 * grid_blocks as u64,
        ..Default::default()
    };
    Candidate {
        choice: KernelChoice::FviMatchLarge,
        volume: p.volume(),
        elem_bytes: E::BYTES,
        grid_blocks,
        threads_per_block: threads,
        smem_bytes: 0,
        input_slice: n0,
        output_slice: n0,
        total_slice: n0,
        input_stride: n0,
        output_stride: n0,
        special_instr: est.special_instr as f64,
        cycles: 2.0 * c2,
        est_stats: est,
    }
}

/// Build the candidate description for the degenerate copy.
pub fn copy_candidate<E: Element>(p: &Problem) -> Candidate {
    let vol = p.volume();
    let epb = analysis::elems_per_tx(E::BYTES);
    let tx = vol.div_ceil(epb) as u64;
    let est = TransactionStats {
        dram_load_tx: tx,
        dram_store_tx: tx,
        elements_moved: vol as u64,
        ..Default::default()
    };
    Candidate {
        choice: KernelChoice::Copy,
        volume: vol,
        elem_bytes: E::BYTES,
        grid_blocks: vol.div_ceil(crate::kernels::copy::ELEMS_PER_BLOCK).max(1),
        threads_per_block: 256,
        smem_bytes: 0,
        input_slice: vol.min(1 << 20),
        output_slice: vol.min(1 << 20),
        total_slice: 0,
        input_stride: vol,
        output_stride: vol,
        special_instr: 0.0,
        cycles: 2.0 * tx as f64,
        est_stats: est,
    }
}

/// Build the candidate description for the real CPU backend with the
/// given tile edge and worker-thread count. The feature set mirrors what
/// the CPU performance model consumes: total bytes moved, tile-block
/// count, the contiguous run length on the innermost loop, and the
/// thread count. `schema` is the taxonomy class of the problem, carried
/// for per-schema accounting.
pub fn cpu_candidate<E: Element>(
    p: &Problem,
    schema: Schema,
    tile: usize,
    threads: usize,
) -> Candidate {
    let plan = ttlg_cpu::CpuPlan::new(p.shape.extents(), p.perm.as_slice(), tile, threads);
    let vol = p.volume();
    let line_tx = (vol * E::BYTES).div_ceil(CPU_LINE_BYTES) as u64;
    let est = TransactionStats {
        dram_load_tx: line_tx,
        dram_store_tx: line_tx,
        elements_moved: vol as u64,
        ..Default::default()
    };
    Candidate {
        choice: KernelChoice::CpuTiled {
            tile,
            threads,
            schema,
        },
        volume: vol,
        elem_bytes: E::BYTES,
        grid_blocks: plan.block_count(),
        threads_per_block: threads,
        smem_bytes: 0,
        input_slice: plan.run,
        output_slice: plan.tile_b * plan.run,
        total_slice: plan.tile_a * plan.tile_b * plan.run,
        input_stride: plan.run,
        output_stride: plan.run,
        special_instr: plan.block_count() as f64 * (plan.outer_ext.len() + 2) as f64,
        cycles: vol as f64,
        est_stats: est,
    }
}

/// Build the candidate description for the naive baseline.
pub fn naive_candidate<E: Element>(p: &Problem) -> Candidate {
    let vol = p.volume();
    let epb = analysis::elems_per_tx(E::BYTES);
    // Input gather: assume worst-case one transaction per element unless
    // the output FVI source happens to be contiguous in the input.
    let in_run = p.in_strides[p.perm.output_dim_source(0)];
    let load_tx = if in_run == 1 { vol.div_ceil(epb) } else { vol } as u64;
    let est = TransactionStats {
        dram_load_tx: load_tx,
        dram_store_tx: vol.div_ceil(epb) as u64,
        special_instr: (2 * p.rank() * vol) as u64,
        elements_moved: vol as u64,
        ..Default::default()
    };
    Candidate {
        choice: KernelChoice::Naive,
        volume: vol,
        elem_bytes: E::BYTES,
        grid_blocks: vol.div_ceil(256).max(1),
        threads_per_block: 256,
        smem_bytes: 0,
        input_slice: 0,
        output_slice: 0,
        total_slice: 0,
        input_stride: 1,
        output_stride: vol,
        special_instr: est.special_instr as f64,
        cycles: (load_tx + est.dram_store_tx) as f64,
        est_stats: est,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttlg_tensor::{Permutation, Shape};

    fn prob(extents: &[usize], perm: &[usize]) -> Problem {
        Problem::new(
            &Shape::new(extents).unwrap(),
            &Permutation::new(perm).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn tile_cycles_full_tile() {
        assert_eq!(tile_cycles(32, 32), 64.0);
        assert_eq!(tile_cycles(64, 64), 4.0 * 64.0);
    }

    #[test]
    fn tile_cycles_partial() {
        // A=40, B=32: one full tile (64) + one partial-input tile (8+32).
        assert_eq!(tile_cycles(40, 32), 64.0 + 40.0);
        // Pure partial: A=8, B=8 -> ra+rb only.
        assert_eq!(tile_cycles(8, 8), 16.0);
    }

    #[test]
    fn od_candidate_geometry() {
        let p = prob(&[16, 2, 32, 32], &[3, 2, 1, 0]);
        let c = OdChoice::default_for(&p).unwrap();
        let cand = od_candidate::<f64>(&p, c);
        assert_eq!(cand.schema(), Schema::OrthogonalDistinct);
        assert_eq!(cand.input_slice, 32);
        assert_eq!(cand.output_slice, 32);
        // grid: dim2 (32) outer, nothing else blocked -> 32 blocks.
        assert_eq!(cand.grid_blocks, 32);
        assert!(cand.cycles > 0.0);
        assert_eq!(cand.est_stats.dram_load_tx, 2048);
    }

    #[test]
    fn oa_candidate_geometry() {
        let p = prob(&[8, 2, 8, 8], &[2, 1, 3, 0]);
        let c = OaChoice {
            in_dims: 3,
            block_a: 8,
            out_dims: 3,
            block_b: 8,
        };
        let cand = oa_candidate::<f64>(&p, c);
        assert_eq!(cand.input_slice, 128);
        assert_eq!(cand.output_slice, 8);
        assert_eq!(cand.total_slice, 1024);
        assert_eq!(cand.grid_blocks, 1);
        assert_eq!(cand.output_stride, 128);
        assert_eq!(cand.est_stats.dram_load_tx, 64);
        assert_eq!(cand.est_stats.dram_store_tx, 64);
    }

    #[test]
    fn fms_candidate_geometry() {
        let p = prob(&[8, 8, 8, 8], &[0, 3, 2, 1]);
        let cand = fms_candidate::<f64>(&p, 4);
        assert_eq!(cand.threads_per_block, 128);
        assert_eq!(cand.grid_blocks, 2 * 2 * 8);
        assert_eq!(cand.est_stats.dram_load_tx, 256);
    }

    #[test]
    fn fml_candidate_geometry() {
        let p = prob(&[64, 5, 7], &[0, 2, 1]);
        let cand = fml_candidate::<f64>(&p);
        // 64-wide rows pack 4 per block: ceil(5/4) * 7 = 14 blocks.
        assert_eq!(cand.grid_blocks, 14);
        assert_eq!(cand.threads_per_block, 256);
        assert_eq!(cand.est_stats.dram_load_tx, 140);
        assert_eq!(cand.smem_bytes, 0);
        // The estimate mirrors the actual kernel's launch geometry.
        let k = crate::kernels::FviMatchLargeKernel::<f64>::new(&p);
        use ttlg_gpu_sim::BlockKernel;
        assert_eq!(k.launch().grid_blocks, cand.grid_blocks);
        assert_eq!(k.launch().threads_per_block, cand.threads_per_block);
    }

    #[test]
    fn copy_and_naive_candidates() {
        let p = prob(&[16, 16, 16], &[2, 1, 0]);
        let cc = copy_candidate::<f64>(&p);
        assert_eq!(cc.est_stats.dram_load_tx, cc.est_stats.dram_store_tx);
        let nc = naive_candidate::<f64>(&p);
        assert!(nc.est_stats.dram_load_tx > cc.est_stats.dram_load_tx);
        assert_eq!(nc.special_instr, (2 * 3 * 4096) as f64);
    }

    #[test]
    fn cpu_candidate_features() {
        // [64, 8, 8] perm [0, 2, 1]: run 64, plane 8x8 on the reduced
        // dims, no outer dims.
        let p = prob(&[64, 8, 8], &[0, 2, 1]);
        let cand = cpu_candidate::<f64>(&p, Schema::FviMatchLarge, 32, 4);
        assert_eq!(cand.backend(), Backend::Cpu);
        assert_eq!(cand.schema(), Schema::FviMatchLarge);
        assert_eq!(cand.input_slice, 64, "run length is the contiguity feature");
        assert_eq!(cand.threads_per_block, 4);
        assert!(cand.grid_blocks >= 1);
        let bytes = 64 * 8 * 8 * 8;
        assert_eq!(cand.est_stats.dram_load_tx, (bytes / CPU_LINE_BYTES) as u64);
        assert_eq!(cand.est_stats.dram_store_tx, cand.est_stats.dram_load_tx);
        // GPU candidates report the GPU backend.
        let gpu = naive_candidate::<f64>(&p);
        assert_eq!(gpu.backend(), Backend::GpuSim);
    }

    #[test]
    fn candidate_launch_consistency() {
        let p = prob(&[8, 8, 8, 8], &[0, 3, 2, 1]);
        let cand = fms_candidate::<f64>(&p, 4);
        let l = cand.launch();
        assert_eq!(l.grid_blocks, cand.grid_blocks);
        assert_eq!(
            cand.num_threads(),
            cand.grid_blocks * cand.threads_per_block
        );
    }
}
