//! The performance-prediction interface (the paper's queryable model).
//!
//! TTLG exposes prediction both *internally* (Alg. 3 uses it to rank slice
//! candidates) and *externally* (higher-level libraries — e.g. a TTGT
//! tensor-contraction planner — query expected transposition cost before
//! choosing a layout). The trait is implemented here by a closed-form
//! [`AnalyticPredictor`] built on Table I analysis + the device timing
//! model, and by the offline-trained linear-regression models of the
//! `ttlg-perfmodel` crate (Table II).

pub use crate::features::Candidate;
use crate::features::KernelChoice;
use ttlg_gpu_sim::{DeviceConfig, TimingModel};

/// Closed-form wall-clock estimate for a CPU-backend candidate, ns.
///
/// A bandwidth model in the HPTT spirit: sustained copy throughput grows
/// with the contiguous run length (short runs pay per-element loop
/// overhead, long runs amortize into streaming `memcpy`), threads scale
/// it with imperfect efficiency, and a fixed dispatch charge covers the
/// parallel-loop setup. The constants are deliberately conservative —
/// the trained CPU model in `ttlg-perfmodel` refines them from measured
/// runs; this form only has to rank CPU candidates sanely against each
/// other and give the analytic guard a per-backend baseline.
pub fn cpu_analytic_ns(c: &Candidate) -> f64 {
    let threads = match c.choice {
        KernelChoice::CpuTiled { threads, .. } => threads.max(1),
        _ => 1,
    } as f64;
    let bytes = (2 * c.volume * c.elem_bytes) as f64;
    // `input_slice` carries the contiguous run length for CPU candidates.
    let run_bytes = (c.input_slice.max(1) * c.elem_bytes) as f64;
    // Single-core streaming: ~14 GB/s on long runs, falling toward
    // ~2.5 GB/s for scalar (one-element-run) traffic.
    let gbps_one = 14.0 * run_bytes / (run_bytes + 36.0);
    let scale = 1.0 + 0.8 * (threads - 1.0);
    bytes / (gbps_one * scale) + 15_000.0
}

/// Predicts the execution time of a transposition candidate.
pub trait TimePredictor: Send + Sync {
    /// Predicted kernel time in nanoseconds.
    fn predict_ns(&self, c: &Candidate) -> f64;

    /// Name for reports.
    fn name(&self) -> &str {
        "predictor"
    }
}

/// Closed-form predictor: Table I transaction estimates through the device
/// timing model. Used as the default when no trained regression model is
/// supplied, and as the baseline the regression models are compared to.
#[derive(Debug, Clone)]
pub struct AnalyticPredictor {
    timing: TimingModel,
}

impl AnalyticPredictor {
    /// Build for a device.
    pub fn new(device: DeviceConfig) -> Self {
        AnalyticPredictor {
            timing: TimingModel::new(device),
        }
    }

    /// The underlying timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }
}

impl TimePredictor for AnalyticPredictor {
    fn predict_ns(&self, c: &Candidate) -> f64 {
        if matches!(c.choice, KernelChoice::CpuTiled { .. }) {
            return cpu_analytic_ns(c);
        }
        self.timing.time(&c.est_stats, &c.launch()).time_ns
    }

    fn name(&self) -> &str {
        "analytic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{copy_candidate, naive_candidate, od_candidate};
    use crate::kernels::OdChoice;
    use crate::problem::Problem;
    use ttlg_tensor::{Permutation, Shape};

    fn prob(extents: &[usize], perm: &[usize]) -> Problem {
        Problem::new(
            &Shape::new(extents).unwrap(),
            &Permutation::new(perm).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn analytic_orders_naive_after_od() {
        let p = prob(&[64, 64, 64], &[2, 1, 0]);
        let pred = AnalyticPredictor::new(DeviceConfig::k40c());
        let od = od_candidate::<f64>(&p, OdChoice::default_for(&p).unwrap());
        let naive = naive_candidate::<f64>(&p);
        assert!(
            pred.predict_ns(&od) < pred.predict_ns(&naive),
            "the tiled kernel must beat the naive kernel"
        );
    }

    #[test]
    fn copy_is_fastest() {
        let p = prob(&[64, 64, 64], &[2, 1, 0]);
        let pc = prob(&[64, 64, 64], &[0, 1, 2]);
        let pred = AnalyticPredictor::new(DeviceConfig::k40c());
        let od = od_candidate::<f64>(&p, OdChoice::default_for(&p).unwrap());
        let copy = copy_candidate::<f64>(&pc);
        assert!(pred.predict_ns(&copy) <= pred.predict_ns(&od));
    }

    #[test]
    fn prediction_scales_with_volume() {
        let small = prob(&[32, 32, 32], &[2, 1, 0]);
        let large = prob(&[64, 64, 64], &[2, 1, 0]);
        let pred = AnalyticPredictor::new(DeviceConfig::k40c());
        let cs = od_candidate::<f64>(&small, OdChoice::default_for(&small).unwrap());
        let cl = od_candidate::<f64>(&large, OdChoice::default_for(&large).unwrap());
        assert!(pred.predict_ns(&cl) > pred.predict_ns(&cs));
    }

    #[test]
    fn cpu_analytic_prefers_long_runs_and_more_threads() {
        use crate::features::cpu_candidate;
        use crate::schema::Schema;
        let pred = AnalyticPredictor::new(DeviceConfig::k40c());
        // Same volume; one problem peels a 64-element run, the other is a
        // pure scalar transpose.
        let runny = prob(&[64, 64, 64], &[0, 2, 1]);
        let scalar = prob(&[64, 64, 64], &[2, 1, 0]);
        let cr = cpu_candidate::<f64>(&runny, Schema::FviMatchLarge, 32, 1);
        let cs = cpu_candidate::<f64>(&scalar, Schema::OrthogonalDistinct, 32, 1);
        assert!(pred.predict_ns(&cr) < pred.predict_ns(&cs));
        // More threads never predict slower.
        let c4 = cpu_candidate::<f64>(&scalar, Schema::OrthogonalDistinct, 32, 4);
        assert!(pred.predict_ns(&c4) < pred.predict_ns(&cs));
    }

    #[test]
    fn predictor_name() {
        let pred = AnalyticPredictor::new(DeviceConfig::k40c());
        assert_eq!(pred.name(), "analytic");
    }
}
