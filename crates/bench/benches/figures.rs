//! One benchmark per paper table/figure, timing the harness that
//! regenerates it (at reduced fidelity — the full-fidelity runs are the
//! `reproduce` binary's job; see EXPERIMENTS.md for the scientific
//! outputs).

use std::sync::Arc;
use ttlg_bench::figures::{fig12, fig13, fig14, fig5, fig_perms, table1, table3};
use ttlg_bench::microbench::{bench, black_box, group};
use ttlg_bench::runner::Harness;
use ttlg_gpu_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::k40c();
    let harness = Harness::k40c();

    group("figures");
    bench("table1", || black_box(table1::run(&device).rows.len()));
    bench("table3", || black_box(table3::run(&device).rows.len()));

    {
        let pred: Arc<dyn ttlg::TimePredictor> =
            Arc::new(ttlg::AnalyticPredictor::new(device.clone()));
        let shape = ttlg_tensor::Shape::new(&[9, 9, 9, 9, 9]).unwrap();
        let perm = ttlg_tensor::Permutation::new(&[4, 1, 2, 0, 3]).unwrap();
        bench("fig5_sweep_9e5", || {
            black_box(fig5::run(&device, &pred, &shape, &perm).rows.len())
        });
    }

    bench("fig6_7_stride120", || {
        black_box(fig_perms::run(&harness, 16, 120).0.rows.len())
    });
    bench("fig8_9_stride120", || {
        black_box(fig_perms::run(&harness, 15, 120).0.rows.len())
    });
    bench("fig10_11_stride120", || {
        black_box(fig_perms::run(&harness, 17, 120).0.rows.len())
    });
    bench("fig12_8e6", || {
        black_box(fig12::run(&harness, 8).0.rows.len())
    });
    bench("fig13_small", || {
        black_box(fig13::run(&harness, &[15, 16, 32]).rows.len())
    });
    bench("fig14_10cases_1M", || {
        black_box(fig14::run(&harness, 10, 1 << 20).rows.len())
    });
}
