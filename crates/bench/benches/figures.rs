//! Criterion: one benchmark per paper table/figure, timing the harness
//! that regenerates it (at reduced fidelity — the full-fidelity runs are
//! the `reproduce` binary's job; see EXPERIMENTS.md for the scientific
//! outputs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use ttlg_bench::figures::{fig12, fig13, fig14, fig5, fig_perms, table1, table3};
use ttlg_bench::runner::Harness;
use ttlg_gpu_sim::DeviceConfig;

fn bench_figures(c: &mut Criterion) {
    let device = DeviceConfig::k40c();
    let harness = Harness::k40c();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    g.bench_function("table1", |b| b.iter(|| black_box(table1::run(&device).rows.len())));
    g.bench_function("table3", |b| b.iter(|| black_box(table3::run(&device).rows.len())));

    g.bench_function("fig5_sweep_9e5", |b| {
        let pred: Arc<dyn ttlg::TimePredictor> =
            Arc::new(ttlg::AnalyticPredictor::new(device.clone()));
        let shape = ttlg_tensor::Shape::new(&[9, 9, 9, 9, 9]).unwrap();
        let perm = ttlg_tensor::Permutation::new(&[4, 1, 2, 0, 3]).unwrap();
        b.iter(|| black_box(fig5::run(&device, &pred, &shape, &perm).rows.len()))
    });

    g.bench_function("fig6_7_stride120", |b| {
        b.iter(|| black_box(fig_perms::run(&harness, 16, 120).0.rows.len()))
    });
    g.bench_function("fig8_9_stride120", |b| {
        b.iter(|| black_box(fig_perms::run(&harness, 15, 120).0.rows.len()))
    });
    g.bench_function("fig10_11_stride120", |b| {
        b.iter(|| black_box(fig_perms::run(&harness, 17, 120).0.rows.len()))
    });
    g.bench_function("fig12_8e6", |b| b.iter(|| black_box(fig12::run(&harness, 8).0.rows.len())));
    g.bench_function("fig13_small", |b| {
        b.iter(|| black_box(fig13::run(&harness, &[15, 16, 32]).rows.len()))
    });
    g.bench_function("fig14_10cases_1M", |b| {
        b.iter(|| black_box(fig14::run(&harness, 10, 1 << 20).rows.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
