//! Criterion: Execute-mode throughput of each kernel schema (host
//! wall-clock for moving real elements through the simulated device), and
//! the sampled-analysis fast path the figure sweeps rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;
use ttlg::{Schema, Transposer, TransposeOptions};
use ttlg_tensor::{DenseTensor, Permutation, Shape};

fn bench_kernels(c: &mut Criterion) {
    let t = Transposer::new_k40c();
    let cases: &[(&str, &[usize], &[usize], Option<Schema>)] = &[
        ("copy", &[32, 32, 32], &[0, 1, 2], None),
        ("fvi-large", &[64, 16, 16], &[0, 2, 1], None),
        ("fvi-small", &[8, 16, 16, 16], &[0, 3, 2, 1], None),
        ("orth-distinct", &[32, 32, 32], &[2, 1, 0], None),
        ("orth-arbitrary", &[8, 4, 8, 16], &[2, 1, 3, 0], None),
        ("naive", &[32, 32, 32], &[2, 1, 0], Some(Schema::Naive)),
    ];

    let mut g = c.benchmark_group("execute");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for (name, extents, perm, forced) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let opts = TransposeOptions { forced_schema: *forced, ..Default::default() };
        let plan = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());
        let mut out = DenseTensor::zeros(plan.out_shape());
        g.throughput(Throughput::Elements(shape.volume() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                t.execute_into(black_box(&plan), black_box(&input), &mut out).unwrap();
                black_box(out.data()[0])
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("analyze");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for (name, extents, perm, forced) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let opts = TransposeOptions { forced_schema: *forced, ..Default::default() };
        let plan = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(t.time_plan(black_box(&plan)).unwrap().kernel_time_ns))
        });
    }
    g.finish();

    // The CPU reference transpose, for scale.
    let mut g = c.benchmark_group("reference");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let shape = Shape::new(&[32, 32, 32]).unwrap();
    let perm = Permutation::new(&[2, 1, 0]).unwrap();
    let input: DenseTensor<f64> = DenseTensor::iota(shape);
    g.throughput(Throughput::Elements(input.volume() as u64));
    g.bench_function("naive-cpu-32x32x32", |b| {
        b.iter(|| {
            black_box(
                ttlg_tensor::reference::transpose_reference(black_box(&input), &perm).unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
