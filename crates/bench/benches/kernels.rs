//! Execute-mode throughput of each kernel schema (host wall-clock for
//! moving real elements through the simulated device), and the sampled
//! analysis fast path the figure sweeps rely on.

use ttlg::{Schema, TransposeOptions, Transposer};
use ttlg_bench::microbench::{bench, black_box, group};
use ttlg_tensor::{DenseTensor, Permutation, Shape};

type Case = (
    &'static str,
    &'static [usize],
    &'static [usize],
    Option<Schema>,
);

fn main() {
    let t = Transposer::new_k40c();
    let cases: &[Case] = &[
        ("copy", &[32, 32, 32], &[0, 1, 2], None),
        ("fvi-large", &[64, 16, 16], &[0, 2, 1], None),
        ("fvi-small", &[8, 16, 16, 16], &[0, 3, 2, 1], None),
        ("orth-distinct", &[32, 32, 32], &[2, 1, 0], None),
        ("orth-arbitrary", &[8, 4, 8, 16], &[2, 1, 3, 0], None),
        ("naive", &[32, 32, 32], &[2, 1, 0], Some(Schema::Naive)),
    ];

    group("execute");
    for (name, extents, perm, forced) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let opts = TransposeOptions {
            forced_schema: *forced,
            ..Default::default()
        };
        let plan = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        let input: DenseTensor<f64> = DenseTensor::iota(shape.clone());
        let mut out = DenseTensor::zeros(plan.out_shape());
        bench(name, || {
            t.execute_into(black_box(&plan), black_box(&input), &mut out)
                .unwrap();
            black_box(out.data()[0])
        });
    }

    group("analyze");
    for (name, extents, perm, forced) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let opts = TransposeOptions {
            forced_schema: *forced,
            ..Default::default()
        };
        let plan = t.plan::<f64>(&shape, &perm, &opts).unwrap();
        bench(name, || {
            black_box(t.time_plan(black_box(&plan)).unwrap().kernel_time_ns)
        });
    }

    // The CPU reference transpose, for scale.
    group("reference");
    let shape = Shape::new(&[32, 32, 32]).unwrap();
    let perm = Permutation::new(&[2, 1, 0]).unwrap();
    let input: DenseTensor<f64> = DenseTensor::iota(shape);
    bench("naive-cpu-32x32x32", || {
        black_box(ttlg_tensor::reference::transpose_reference(black_box(&input), &perm).unwrap())
    });
}
