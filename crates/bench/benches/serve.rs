//! Throughput study: the batched ttlg-runtime service vs a naive
//! plan-per-call loop (see `ttlg_bench::serve_study`). Prints the
//! comparison table and the runtime's metrics report, and writes the
//! machine-readable `BENCH_serve.json` artifact so the perf trajectory
//! can be tracked across revisions.

use ttlg_bench::serve_study;

fn main() {
    let study = serve_study::run(24, 8);
    print!("{}", study.render());
    println!();
    print!("{}", study.metrics_report);
    let path = "BENCH_serve.json";
    match std::fs::write(path, study.to_json()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
