//! Throughput study: the batched ttlg-runtime service vs a naive
//! plan-per-call loop (see `ttlg_bench::serve_study`). Prints the
//! comparison table and the runtime's metrics report.

use ttlg_bench::serve_study;

fn main() {
    let study = serve_study::run(24, 8);
    print!("{}", study.render());
    println!();
    print!("{}", study.metrics_report);
}
