//! The offline modeling pipeline (Table II) — dataset generation, OLS
//! fitting, and prediction latency.

use ttlg_bench::microbench::{bench, black_box, group};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::dataset;
use ttlg_perfmodel::linreg;
use ttlg_perfmodel::train::{train_from_points, train_models, TrainConfig};
use ttlg_tensor::generator::{model_dataset, DatasetConfig};

fn main() {
    let device = DeviceConfig::k40c();

    group("table2");
    {
        let cases = model_dataset(&DatasetConfig::small());
        bench("dataset_generation_small", || {
            black_box(dataset::generate::<f64>(&device, &cases[..20], 4).len())
        });
    }

    // Pre-generate once, then benchmark the pure fitting step.
    let points = {
        let cases = model_dataset(&DatasetConfig::small());
        dataset::generate::<f64>(&device, &cases, 6)
    };
    bench("ols_fit_both_models", || {
        black_box(
            train_from_points(points.clone(), 7)
                .unwrap()
                .od
                .train_precision,
        )
    });

    bench("end_to_end_quick_training", || {
        black_box(
            train_models::<f64>(&device, &TrainConfig::quick())
                .unwrap()
                .oa
                .n_train,
        )
    });

    // Raw OLS throughput on a synthetic 5-feature problem.
    let x: Vec<Vec<f64>> = (0..4000)
        .map(|i| (0..5).map(|k| ((i * (k + 3)) % 101) as f64).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 1.0 + r.iter().sum::<f64>()).collect();
    bench("ols_4000x5", || {
        black_box(
            linreg::fit(&["a", "b", "c", "d", "e"], &x, &y)
                .unwrap()
                .r_squared,
        )
    });
}
