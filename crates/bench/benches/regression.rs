//! Criterion: the offline modeling pipeline (Table II) — dataset
//! generation, OLS fitting, and prediction latency.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::dataset;
use ttlg_perfmodel::linreg;
use ttlg_perfmodel::train::{train_from_points, train_models, TrainConfig};
use ttlg_tensor::generator::{model_dataset, DatasetConfig};

fn bench_modeling(c: &mut Criterion) {
    let device = DeviceConfig::k40c();
    let mut g = c.benchmark_group("table2");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    g.bench_function("dataset_generation_small", |b| {
        let cases = model_dataset(&DatasetConfig::small());
        b.iter(|| black_box(dataset::generate::<f64>(&device, &cases[..20], 4).len()))
    });

    // Pre-generate once, then benchmark the pure fitting step.
    let points = {
        let cases = model_dataset(&DatasetConfig::small());
        dataset::generate::<f64>(&device, &cases, 6)
    };
    g.bench_function("ols_fit_both_models", |b| {
        b.iter(|| black_box(train_from_points(points.clone(), 7).unwrap().od.train_precision))
    });

    g.bench_function("end_to_end_quick_training", |b| {
        b.iter(|| {
            black_box(train_models::<f64>(&device, &TrainConfig::quick()).unwrap().oa.n_train)
        })
    });

    // Raw OLS throughput on a synthetic 5-feature problem.
    let x: Vec<Vec<f64>> = (0..4000)
        .map(|i| (0..5).map(|k| ((i * (k + 3)) % 101) as f64).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| 1.0 + r.iter().sum::<f64>()).collect();
    g.bench_function("ols_4000x5", |b| {
        b.iter(|| black_box(linreg::fit(&["a", "b", "c", "d", "e"], &x, &y).unwrap().r_squared))
    });
    g.finish();
}

criterion_group!(benches, bench_modeling);
criterion_main!(benches);
