//! Criterion: the ablation harnesses (padding, fusion, slice choice,
//! taxonomy). The scientific outputs (simulated-time deltas) come from
//! `reproduce -- ablations`; these benches keep the harness code hot and
//! track its host cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use ttlg_bench::figures::ablations;
use ttlg_gpu_sim::DeviceConfig;

fn bench_ablations(c: &mut Criterion) {
    let device = DeviceConfig::k40c();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    g.bench_function("padding", |b| {
        b.iter(|| black_box(ablations::padding(&device).rows.len()))
    });
    g.bench_function("fusion", |b| b.iter(|| black_box(ablations::fusion(&device).rows.len())));
    g.bench_function("slice_choice", |b| {
        b.iter(|| black_box(ablations::slice_choice(&device).rows.len()))
    });
    g.bench_function("taxonomy", |b| {
        b.iter(|| black_box(ablations::taxonomy(&device).rows.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
