//! The ablation harnesses (padding, fusion, slice choice, taxonomy).
//! The scientific outputs (simulated-time deltas) come from
//! `reproduce -- ablations`; these benches keep the harness code hot and
//! track its host cost.

use ttlg_bench::figures::ablations;
use ttlg_bench::microbench::{bench, black_box, group};
use ttlg_gpu_sim::DeviceConfig;

fn main() {
    let device = DeviceConfig::k40c();
    group("ablations");
    bench("padding", || {
        black_box(ablations::padding(&device).rows.len())
    });
    bench("fusion", || {
        black_box(ablations::fusion(&device).rows.len())
    });
    bench("slice_choice", || {
        black_box(ablations::slice_choice(&device).rows.len())
    });
    bench("taxonomy", || {
        black_box(ablations::taxonomy(&device).rows.len())
    });
}
