//! Host-side planning cost — taxonomy dispatch, Alg. 3 slice sweeps,
//! offset-array construction — the real-time analogue of the paper's
//! plan-overhead discussion (Figs. 7/9/11).

use ttlg::{TransposeOptions, Transposer};
use ttlg_bench::microbench::{bench, black_box, group};
use ttlg_tensor::{Permutation, Shape};

fn main() {
    let t = Transposer::new_k40c();
    let cases: &[(&str, &[usize], &[usize])] = &[
        ("copy", &[16, 16, 16, 16], &[0, 1, 2, 3]),
        ("fvi-large", &[64, 16, 16], &[0, 2, 1]),
        ("fvi-small", &[8, 16, 16, 16], &[0, 3, 2, 1]),
        ("orth-distinct", &[16, 2, 32, 32], &[3, 2, 1, 0]),
        ("orth-arbitrary", &[8, 2, 8, 8], &[2, 1, 3, 0]),
        ("rank6-16s", &[16, 16, 16, 16, 16, 16], &[4, 1, 2, 5, 3, 0]),
    ];

    group("plan/sweep");
    for (name, extents, perm) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        bench(name, || {
            let plan = t
                .plan::<f64>(
                    black_box(&shape),
                    black_box(&perm),
                    &TransposeOptions::default(),
                )
                .unwrap();
            black_box(plan.predicted_ns())
        });
    }

    group("plan/default-choice");
    for (name, extents, perm) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        let opts = TransposeOptions {
            model_sweep: false,
            ..Default::default()
        };
        bench(name, || {
            let plan = t
                .plan::<f64>(black_box(&shape), black_box(&perm), &opts)
                .unwrap();
            black_box(plan.predicted_ns())
        });
    }

    group("predict");
    let shape = Shape::new(&[16; 6]).unwrap();
    let perm = Permutation::new(&[4, 1, 2, 5, 3, 0]).unwrap();
    bench("queryable-api-rank6", || {
        t.predict_transpose_ns::<f64>(black_box(&shape), black_box(&perm))
            .unwrap()
    });
}
