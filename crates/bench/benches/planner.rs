//! Criterion: host-side planning cost — taxonomy dispatch, Alg. 3 slice
//! sweeps, offset-array construction — the real-time analogue of the
//! paper's plan-overhead discussion (Figs. 7/9/11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use ttlg::{Transposer, TransposeOptions};
use ttlg_tensor::{Permutation, Shape};

fn bench_planning(c: &mut Criterion) {
    let t = Transposer::new_k40c();
    let mut g = c.benchmark_group("plan");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let cases: &[(&str, &[usize], &[usize])] = &[
        ("copy", &[16, 16, 16, 16], &[0, 1, 2, 3]),
        ("fvi-large", &[64, 16, 16], &[0, 2, 1]),
        ("fvi-small", &[8, 16, 16, 16], &[0, 3, 2, 1]),
        ("orth-distinct", &[16, 2, 32, 32], &[3, 2, 1, 0]),
        ("orth-arbitrary", &[8, 2, 8, 8], &[2, 1, 3, 0]),
        ("rank6-16s", &[16, 16, 16, 16, 16, 16], &[4, 1, 2, 5, 3, 0]),
    ];
    for (name, extents, perm) in cases {
        let shape = Shape::new(extents).unwrap();
        let perm = Permutation::new(perm).unwrap();
        g.bench_with_input(BenchmarkId::new("sweep", name), &(), |b, ()| {
            b.iter(|| {
                let plan = t
                    .plan::<f64>(black_box(&shape), black_box(&perm), &TransposeOptions::default())
                    .unwrap();
                black_box(plan.predicted_ns())
            })
        });
        g.bench_with_input(BenchmarkId::new("default-choice", name), &(), |b, ()| {
            let opts = TransposeOptions { model_sweep: false, ..Default::default() };
            b.iter(|| {
                let plan = t.plan::<f64>(black_box(&shape), black_box(&perm), &opts).unwrap();
                black_box(plan.predicted_ns())
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("predict");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let shape = Shape::new(&[16; 6]).unwrap();
    let perm = Permutation::new(&[4, 1, 2, 5, 3, 0]).unwrap();
    g.bench_function("queryable-api-rank6", |b| {
        b.iter(|| t.predict_transpose_ns::<f64>(black_box(&shape), black_box(&perm)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
