//! Async-submission coalescing study (`BENCH_async.json`).
//!
//! Drives the service's non-blocking [`submit_async`] path with a
//! **duplicate-heavy closed-loop workload at an overload factor**:
//! `ceil(workers * overload)` client threads hammer a small set of
//! identical problems (shared input tensors, so requests are
//! byte-identical in flight), far more concurrency than the executor's
//! worker pool can drain. The study runs the same workload twice —
//! once with in-flight request coalescing disabled (every request
//! executes its own kernel) and once enabled (identical in-flight
//! problems single-flight onto one execution) — and reports what the
//! feature buys: throughput, executions-per-request, the coalesced
//! ratio, and the interactive (client-observed) p50/p95/p99 both ways.
//!
//! [`submit_async`]: ttlg_runtime::TransposeService::submit_async

use crate::serve_study::json_f64;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ttlg::Transposer;
use ttlg_runtime::{AsyncConfig, RuntimeConfig, TransposeRequest, TransposeService};
use ttlg_tensor::{DenseTensor, Permutation, Shape};

/// Executor worker threads for both phases (small on purpose: the
/// overload factor is defined relative to this pool).
const WORKERS: usize = 2;

/// Unique problems in the duplicate-heavy mix. Fewer unique problems
/// than client threads guarantees concurrent duplicates.
const UNIQUE_PROBLEMS: usize = 2;

/// One phase of the study (coalescing off or on).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseOutcome {
    /// Whether in-flight coalescing was enabled.
    pub coalesce: bool,
    /// Requests submitted (and completed — the loop is closed).
    pub requests: u64,
    /// Kernels actually executed.
    pub executed: u64,
    /// Requests that shared another request's execution.
    pub coalesced: u64,
    /// Submissions rejected at a full queue (0 for closed-loop clients).
    pub rejected: u64,
    /// Wall-clock of the drive loop, seconds.
    pub wall_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// `executed / requests` — 1.0 means no sharing.
    pub executions_per_request: f64,
    /// `coalesced / requests`.
    pub coalesced_ratio: f64,
    /// Client-observed latency quantiles, us.
    pub p50_us: f64,
    /// 95th percentile, us.
    pub p95_us: f64,
    /// 99th percentile, us.
    pub p99_us: f64,
}

/// The full study result.
#[derive(Debug, Clone)]
pub struct AsyncStudy {
    /// Offered concurrency as a multiple of the executor's workers.
    pub overload: f64,
    /// Executor worker threads per phase.
    pub workers: usize,
    /// Closed-loop client threads per phase.
    pub clients: usize,
    /// Unique problems in the duplicate-heavy mix.
    pub unique_problems: usize,
    /// Coalescing disabled.
    pub baseline: PhaseOutcome,
    /// Coalescing enabled.
    pub coalesced: PhaseOutcome,
    /// Fractional cut in executions-per-request from coalescing
    /// (`1 - coalesced.epr / baseline.epr`; 0.5 = half the kernels).
    pub execution_cut: f64,
    /// `coalesced.p99 / baseline.p99` — <= 1 means the tail improved.
    pub p99_ratio: f64,
}

/// Nearest-rank quantile over an unsorted sample set, us.
fn quantile_us(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Run one phase: a fresh service, `clients` closed-loop threads
/// cycling through the shared duplicate-heavy problem list for
/// `seconds` of wall clock.
fn run_phase(seconds: f64, clients: usize, coalesce: bool) -> PhaseOutcome {
    let cfg = RuntimeConfig {
        async_exec: AsyncConfig {
            workers: WORKERS,
            submit_capacity: 4096,
            completion_capacity: 4096,
            coalesce,
        },
        ..RuntimeConfig::default()
    };
    let svc: Arc<TransposeService<f64>> =
        Arc::new(TransposeService::with_config(Transposer::new_k40c(), cfg));

    // The duplicate-heavy mix: every client cycles the same problems on
    // the same shared input tensors, so concurrent iterations collide
    // on identical in-flight keys.
    let input = Arc::new(DenseTensor::<f64>::iota(Shape::new(&[32, 16, 8]).unwrap()));
    let perms = [[2usize, 0, 1], [1, 2, 0], [2, 1, 0], [0, 2, 1]];
    let problems: Vec<TransposeRequest<f64>> = perms
        .iter()
        .take(UNIQUE_PROBLEMS)
        .map(|p| TransposeRequest::new(Arc::clone(&input), Permutation::new(p).unwrap()))
        .collect();

    let deadline = Instant::now() + Duration::from_secs_f64(seconds);
    let t0 = Instant::now();
    let latencies: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let problems = &problems;
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let mut i = 0usize;
                    while Instant::now() < deadline {
                        let sent = Instant::now();
                        let ticket = svc.submit_async(problems[i % problems.len()].clone());
                        let out = ticket.wait();
                        assert!(out.result.is_ok(), "async study request failed");
                        lat.push(sent.elapsed().as_secs_f64() * 1e6);
                        i += 1;
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = svc.async_stats().expect("executor started");
    let mut all: Vec<f64> = latencies.into_iter().flatten().collect();
    let requests = stats.submitted;
    PhaseOutcome {
        coalesce,
        requests,
        executed: stats.executed,
        coalesced: stats.coalesced,
        rejected: stats.rejected,
        wall_s,
        throughput_rps: requests as f64 / wall_s.max(1e-9),
        executions_per_request: stats.executed as f64 / requests.max(1) as f64,
        coalesced_ratio: stats.coalesced as f64 / requests.max(1) as f64,
        p50_us: quantile_us(&mut all, 0.50),
        p95_us: quantile_us(&mut all, 0.95),
        p99_us: quantile_us(&mut all, 0.99),
    }
}

/// Run the study: `seconds` of drive time per phase at `overload` times
/// the executor's worker count.
pub fn run(seconds: f64, overload: f64) -> AsyncStudy {
    let clients = ((WORKERS as f64 * overload).ceil() as usize).max(WORKERS + 1);
    let baseline = run_phase(seconds, clients, false);
    let coalesced = run_phase(seconds, clients, true);
    AsyncStudy {
        overload,
        workers: WORKERS,
        clients,
        unique_problems: UNIQUE_PROBLEMS,
        execution_cut: 1.0
            - coalesced.executions_per_request / baseline.executions_per_request.max(1e-9),
        p99_ratio: coalesced.p99_us / baseline.p99_us.max(1e-9),
        baseline,
        coalesced,
    }
}

impl AsyncStudy {
    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "== async submission coalescing study ==").unwrap();
        writeln!(
            s,
            "{} clients over {} workers ({}x overload), {} unique problems",
            self.clients, self.workers, self.overload, self.unique_problems
        )
        .unwrap();
        for ph in [&self.baseline, &self.coalesced] {
            writeln!(
                s,
                "coalesce={:<5} requests {:>7}  executed {:>7}  coalesced {:>7} ({:>5.1}%)  \
                 {:>8.0} req/s  p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us",
                ph.coalesce,
                ph.requests,
                ph.executed,
                ph.coalesced,
                ph.coalesced_ratio * 100.0,
                ph.throughput_rps,
                ph.p50_us,
                ph.p95_us,
                ph.p99_us
            )
            .unwrap();
        }
        writeln!(
            s,
            "executions per request {:.3} -> {:.3} ({:.1}% fewer kernels)  p99 ratio {:.2}",
            self.baseline.executions_per_request,
            self.coalesced.executions_per_request,
            self.execution_cut * 100.0,
            self.p99_ratio
        )
        .unwrap();
        s
    }

    /// The `BENCH_async.json` artifact.
    pub fn to_json(&self) -> String {
        let phase = |ph: &PhaseOutcome| {
            format!(
                "{{\"coalesce\": {}, \"requests\": {}, \"executed\": {}, \"coalesced\": {}, \
                 \"rejected\": {}, \"wall_s\": {}, \"throughput_rps\": {}, \
                 \"executions_per_request\": {}, \"coalesced_ratio\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
                ph.coalesce,
                ph.requests,
                ph.executed,
                ph.coalesced,
                ph.rejected,
                json_f64(ph.wall_s),
                json_f64(ph.throughput_rps),
                json_f64(ph.executions_per_request),
                json_f64(ph.coalesced_ratio),
                json_f64(ph.p50_us),
                json_f64(ph.p95_us),
                json_f64(ph.p99_us)
            )
        };
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"async\",\n");
        s.push_str(&format!("  \"overload\": {},\n", json_f64(self.overload)));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"clients\": {},\n", self.clients));
        s.push_str(&format!(
            "  \"unique_problems\": {},\n",
            self.unique_problems
        ));
        s.push_str(&format!("  \"baseline\": {},\n", phase(&self.baseline)));
        s.push_str(&format!("  \"coalesced\": {},\n", phase(&self.coalesced)));
        s.push_str(&format!(
            "  \"execution_cut\": {},\n",
            json_f64(self.execution_cut)
        ));
        s.push_str(&format!("  \"p99_ratio\": {}\n", json_f64(self.p99_ratio)));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile_us(&mut v, 0.5), 3.0);
        assert_eq!(quantile_us(&mut v, 0.99), 5.0);
        assert!(quantile_us(&mut [], 0.5).is_nan());
    }

    #[test]
    fn duplicate_heavy_overload_coalesces_and_accounts() {
        // A fraction of a second per phase is enough: thousands of
        // closed-loop round trips on the simulator.
        let study = run(0.25, 2.0);
        for ph in [&study.baseline, &study.coalesced] {
            assert!(ph.requests > 0);
            assert_eq!(ph.rejected, 0, "closed-loop clients never overflow");
            assert_eq!(
                ph.executed + ph.coalesced,
                ph.requests,
                "every request either executed or coalesced"
            );
            assert!(ph.p50_us <= ph.p95_us && ph.p95_us <= ph.p99_us);
        }
        assert_eq!(
            study.baseline.coalesced, 0,
            "baseline phase has coalescing disabled"
        );
        assert!(
            (study.baseline.executions_per_request - 1.0).abs() < 1e-9,
            "without coalescing every request executes"
        );
        // More clients than workers over a tiny problem set: duplicates
        // must overlap in flight and share executions.
        assert!(
            study.coalesced.coalesced_ratio > 0.2,
            "duplicate-heavy overload should coalesce >20%, got {}",
            study.coalesced.coalesced_ratio
        );
        assert!(
            study.execution_cut > 0.2,
            "coalescing should cut executions, got {}",
            study.execution_cut
        );
        let json = study.to_json();
        assert!(json.contains("\"study\": \"async\""));
        assert!(json.contains("\"executions_per_request\""));
        assert!(json.contains("\"coalesced_ratio\""));
        assert!(json.contains("\"p99_ratio\""));
        assert!(study.render().contains("fewer kernels"));
    }
}
