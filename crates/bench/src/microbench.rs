//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds fully offline, so the `[[bench]]` targets use
//! this hand-rolled harness (`harness = false`) instead of an external
//! framework. Each target is a plain `fn main()` that calls [`bench`]
//! per case and prints one line per result; they are smoke-level
//! benchmarks meant to keep the hot paths honest, not a statistics
//! suite — the scientific outputs come from the `reproduce` binary.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How long one [`bench`] call is allowed to measure for.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Warm-up budget before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(30);
/// Hard cap on measured iterations (keeps cheap bodies bounded).
const MAX_ITERS: u64 = 10_000;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Case label, as printed.
    pub name: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock time per iteration, ns.
    pub mean_ns: f64,
    /// Fastest single iteration, ns.
    pub min_ns: f64,
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>12.0} ns/iter (min {:>12.0} ns, {} iters)",
            self.name, self.mean_ns, self.min_ns, self.iters
        )
    }
}

/// Time `body` under the fixed warm-up/measure budgets and print the
/// result line. Returns the measurement for callers that post-process.
pub fn bench<R>(name: &str, mut body: impl FnMut() -> R) -> BenchResult {
    // Warm up.
    let warm_start = Instant::now();
    while warm_start.elapsed() < WARMUP_BUDGET {
        black_box(body());
    }

    // Measure.
    let mut iters = 0u64;
    let mut min_ns = f64::INFINITY;
    let measure_start = Instant::now();
    while measure_start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
        let t0 = Instant::now();
        black_box(body());
        let dt = t0.elapsed().as_nanos() as f64;
        min_ns = min_ns.min(dt);
        iters += 1;
    }
    let total_ns = measure_start.elapsed().as_nanos() as f64;
    let result = BenchResult {
        name: name.to_string(),
        iters,
        mean_ns: total_ns / iters.max(1) as f64,
        min_ns: if min_ns.is_finite() { min_ns } else { 0.0 },
    };
    println!("{result}");
    result
}

/// Print a group header, mirroring criterion-style grouping in output.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let r = bench("noop-ish", || std::hint::black_box(3u64).wrapping_mul(7));
        assert!(r.iters > 0);
        assert!(r.mean_ns >= 0.0);
        assert!(r.min_ns <= r.mean_ns * 10.0 + 1.0);
    }
}
