//! Reproduce the paper's tables and figures.
//!
//! ```text
//! cargo run -p ttlg-bench --release --bin reproduce -- all --quick
//! cargo run -p ttlg-bench --release --bin reproduce -- fig6 fig7 table2
//! cargo run -p ttlg-bench --release --bin reproduce -- summary ablations extensions
//! ```
//!
//! Targets: `table1 table2 table3 fig5 fig6..fig14 ablations extensions
//! summary all`.
//!
//! Flags:
//! * `--quick` — subsample the 720-permutation suites and shrink the
//!   training set / TTC-suite volumes (minutes -> seconds).
//! * `--full` — full fidelity (all 720 permutations, paper-size volumes).
//! * `--csv DIR` — write CSVs under DIR (default `results/`).
//!
//! Default fidelity sits between the two (stride 4 on the permutation
//! suites).

use std::path::PathBuf;
use std::sync::Arc;
use ttlg::TimePredictor;
use ttlg_bench::figures::{
    ablations, extensions, fig12, fig13, fig14, fig5, fig_perms, table1, table2, table3,
};
use ttlg_bench::report::Table;
use ttlg_bench::runner::Harness;
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::predictor::TrainedPredictor;
use ttlg_perfmodel::train::TrainConfig;
use ttlg_tensor::generator::DatasetConfig;

struct Options {
    targets: Vec<String>,
    stride: usize,
    fig14_volume: usize,
    fig12_extent: usize,
    train_cfg: TrainConfig,
    csv_dir: PathBuf,
}

fn parse_args() -> Options {
    let mut targets = Vec::new();
    let mut stride = 4;
    let mut fig14_volume = 4 << 20;
    let mut fig12_extent = 16;
    let mut train_cfg = TrainConfig {
        dataset: DatasetConfig {
            ranks: vec![3, 4, 5],
            volumes: vec![1 << 18, 1 << 20],
            max_perms_per_config: 6,
            seed: 0x77C0_FFEE,
        },
        max_configs_per_case: 10,
        split_seed: 0x5EED,
    };
    let mut csv_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => {
                stride = 24;
                fig14_volume = 1 << 20;
                fig12_extent = 8;
                train_cfg = TrainConfig::quick();
            }
            "--full" => {
                stride = 1;
                fig14_volume = fig14::PAPER_VOLUME;
                fig12_extent = 16;
                train_cfg = TrainConfig::default();
            }
            "--csv" => {
                csv_dir = PathBuf::from(args.next().expect("--csv needs a directory"));
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = [
            "table1",
            "table2",
            "table3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "ablations",
            "extensions",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    Options {
        targets,
        stride,
        fig14_volume,
        fig12_extent,
        train_cfg,
        csv_dir,
    }
}

fn emit(opts: &Options, file: &str, table: &Table) {
    println!("{}", table.render());
    let path = opts.csv_dir.join(file);
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[csv written to {}]\n", path.display());
    }
}

fn main() {
    let opts = parse_args();
    let device = DeviceConfig::k40c();

    // Train the Table II models once; TTLG's planner uses them (the
    // paper's configuration), and Fig. 5 plots their predictions.
    let needs_model = opts
        .targets
        .iter()
        .any(|t| matches!(t.as_str(), "table2" | "fig5"))
        || opts.targets.iter().any(|t| t.starts_with("fig"));
    let (models, table2_render) = if needs_model {
        eprintln!("[training Table II models...]");
        let (models, t2) = table2::run(&device, &opts.train_cfg);
        (Some(models), Some(t2))
    } else {
        (None, None)
    };
    let predictor: Arc<dyn TimePredictor> = match &models {
        Some(m) => Arc::new(TrainedPredictor::new(m, device.clone())),
        None => Arc::new(ttlg::AnalyticPredictor::new(device.clone())),
    };
    let harness = Harness::with_predictor(device.clone(), Arc::clone(&predictor));

    let mut perm_cache: std::collections::HashMap<usize, (Table, Table)> =
        std::collections::HashMap::new();
    let mut perm_suite = |extent: usize, harness: &Harness, stride: usize| {
        perm_cache
            .entry(extent)
            .or_insert_with(|| {
                eprintln!("[running 6D all-{extent} suite (stride {stride})...]");
                fig_perms::run(harness, extent, stride)
            })
            .clone()
    };

    for target in opts.targets.clone() {
        match target.as_str() {
            "table1" => emit(&opts, "table1.csv", &table1::run(&device)),
            "table2" => {
                if let Some(t2) = &table2_render {
                    emit(&opts, "table2.csv", t2);
                }
            }
            "table3" => emit(&opts, "table3.csv", &table3::run(&device)),
            "fig5" => {
                let (shape, perm) = fig5::paper_case();
                let t = fig5::run(&device, &predictor, &shape, &perm);
                emit(&opts, "fig5.csv", &t);
                let q = fig5::choice_quality(&device, &predictor, &shape, &perm);
                println!("model slice choice achieves {:.1}% of optimal\n", q * 100.0);
            }
            "fig6" | "fig7" => {
                let (rep, single) = perm_suite(16, &harness, opts.stride);
                if target == "fig6" {
                    emit(&opts, "fig6.csv", &rep);
                } else {
                    emit(&opts, "fig7.csv", &single);
                }
            }
            "fig8" | "fig9" => {
                let (rep, single) = perm_suite(15, &harness, opts.stride);
                if target == "fig8" {
                    emit(&opts, "fig8.csv", &rep);
                } else {
                    emit(&opts, "fig9.csv", &single);
                }
            }
            "fig10" | "fig11" => {
                let (rep, single) = perm_suite(17, &harness, opts.stride);
                if target == "fig10" {
                    emit(&opts, "fig10.csv", &rep);
                } else {
                    emit(&opts, "fig11.csv", &single);
                }
            }
            "fig12" => {
                let (a, b) = fig12::run(&harness, opts.fig12_extent);
                emit(&opts, "fig12a.csv", &a);
                emit(&opts, "fig12b.csv", &b);
            }
            "fig13" => emit(&opts, "fig13.csv", &fig13::run(&harness, &fig13::SIZES)),
            "summary" => {
                let mut t = Table::new(
                    "Summary: mean repeated-use bandwidth (GB/s) per suite",
                    &[
                        "suite",
                        "TTLG",
                        "cuTT-heur",
                        "cuTT-meas",
                        "TTC",
                        "TTLG>=cuTT-m",
                    ],
                );
                for extent in [16usize, 15, 17] {
                    eprintln!("[summarizing all-{extent} suite...]");
                    let s = fig_perms::summarize(&harness, extent, opts.stride);
                    t.push_row(vec![
                        format!("6D all-{extent}"),
                        format!("{:.1}", s.mean_ttlg),
                        format!("{:.1}", s.mean_cutt_h),
                        format!("{:.1}", s.mean_cutt_m),
                        format!("{:.1}", s.mean_ttc),
                        format!("{:.0}%", s.ttlg_win_rate * 100.0),
                    ]);
                }
                emit(&opts, "summary.csv", &t);
            }
            "extensions" => {
                emit(&opts, "ext_devices.csv", &extensions::device_generations());
                emit(&opts, "ext_element_width.csv", &extensions::element_width());
                emit(&opts, "ext_sm_scaling.csv", &extensions::sm_scaling());
            }
            "ablations" => {
                emit(&opts, "ablation_padding.csv", &ablations::padding(&device));
                emit(&opts, "ablation_fusion.csv", &ablations::fusion(&device));
                emit(
                    &opts,
                    "ablation_slice_choice.csv",
                    &ablations::slice_choice(&device),
                );
                emit(
                    &opts,
                    "ablation_taxonomy.csv",
                    &ablations::taxonomy(&device),
                );
                emit(
                    &opts,
                    "ablation_model_quality.csv",
                    &ablations::model_vs_measured(&device),
                );
            }
            "fig14" => emit(
                &opts,
                "fig14.csv",
                &fig14::run(&harness, fig14::PAPER_COUNT, opts.fig14_volume),
            ),
            other => eprintln!("unknown target: {other}"),
        }
    }
}
