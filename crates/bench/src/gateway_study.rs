//! Gateway loopback study (`BENCH_gateway.json`).
//!
//! Stands up a real `ttlg-serve` gateway on an ephemeral loopback port
//! and drives it at a configurable **overload factor**: every tenant
//! paces its keep-alive client at `overload x` its own token-bucket
//! rate, so at the default `2.0` the offered load is twice what
//! admission control will sustain. The study then reports what a
//! capacity review needs:
//!
//! * per-tenant offered/admitted/shed counts and client-side
//!   p50/p95/p99 (exact nearest-rank over every admitted request);
//! * per-class summaries with a **fairness ratio** (min/max admitted
//!   across the class's tenants — 1.0 is perfectly fair);
//! * the global shed rate, and whether the interactive-class p99 held
//!   its SLO while batch traffic was being shed alongside it;
//! * a final `/metrics` scrape, cross-checked against the client-side
//!   shed count so the exported `ttlg_gateway_shed_total` is proven
//!   consistent with what clients actually observed.
//!
//! Clients are closed-loop with pacing, so a response slower than the
//! pacing interval lowers the offered rate (coordinated omission); at
//! the microsecond-scale service times of the simulator this skew is
//! negligible.

use crate::serve_study::json_f64;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ttlg_runtime::TransposeService;
use ttlg_serve::{client::HttpClient, Gateway, GatewayConfig, QuotaConfig, ServerHandle};

/// Outcome for one tenant's client loop.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant id sent in `x-ttlg-tenant`.
    pub tenant: String,
    /// Priority class sent in `x-ttlg-priority`.
    pub class: String,
    /// Requests issued.
    pub offered: u64,
    /// Requests answered 200.
    pub admitted: u64,
    /// Requests answered 429.
    pub shed: u64,
    /// Requests that failed any other way (transport errors, 5xx).
    pub errors: u64,
    /// Client-side latency quantiles over admitted requests, us.
    pub p50_us: f64,
    /// 95th percentile, us.
    pub p95_us: f64,
    /// 99th percentile, us.
    pub p99_us: f64,
}

/// Aggregate over one priority class.
#[derive(Debug, Clone)]
pub struct ClassSummary {
    /// Class label.
    pub class: String,
    /// Admitted requests across the class.
    pub admitted: u64,
    /// Shed requests across the class.
    pub shed: u64,
    /// min/max admitted across the class's tenants (1.0 = perfectly
    /// fair, 0 = a tenant was starved).
    pub fairness: f64,
    /// Client-side quantiles over the class's admitted requests, us.
    pub p50_us: f64,
    /// 95th percentile, us.
    pub p95_us: f64,
    /// 99th percentile, us.
    pub p99_us: f64,
}

/// The full study result.
#[derive(Debug, Clone)]
pub struct GatewayStudy {
    /// Offered-load multiple of the per-tenant quota rate.
    pub overload: f64,
    /// Wall-clock of the drive phase, seconds.
    pub wall_s: f64,
    /// Admitted requests per second of wall clock.
    pub throughput_rps: f64,
    /// Shed fraction of all offered requests.
    pub shed_rate: f64,
    /// Interactive-class p99 SLO target, us.
    pub slo_target_us: f64,
    /// Whether the interactive class's p99 met the target.
    pub interactive_slo_met: bool,
    /// Per-tenant outcomes.
    pub tenants: Vec<TenantOutcome>,
    /// Per-class rollups.
    pub classes: Vec<ClassSummary>,
    /// `ttlg_gateway_shed_total` summed from the final scrape.
    pub scraped_shed_total: f64,
    /// Whether the scrape agreed with the client-observed shed count.
    pub metrics_consistent: bool,
}

/// Nearest-rank quantile over an unsorted sample set, us.
fn quantile_us(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Per-tenant drive plan.
struct TenantPlan {
    tenant: &'static str,
    class: &'static str,
    body: &'static str,
}

const PLANS: [TenantPlan; 4] = [
    TenantPlan {
        tenant: "int-a",
        class: "interactive",
        body: r#"{"extents":[16,8,4],"perm":[2,0,1]}"#,
    },
    TenantPlan {
        tenant: "int-b",
        class: "interactive",
        body: r#"{"extents":[32,16],"perm":[1,0]}"#,
    },
    TenantPlan {
        tenant: "bat-a",
        class: "batch",
        body: r#"{"extents":[8,8,8],"perm":[2,1,0]}"#,
    },
    TenantPlan {
        tenant: "bat-b",
        class: "batch",
        body: r#"{"extents":[64,8],"perm":[1,0]}"#,
    },
];

/// Interactive p99 SLO for the study, us. Generous for CI boxes: the
/// point is that interactive stays orders of magnitude under the
/// request timeout even while batch floods are being shed.
pub const SLO_TARGET_US: f64 = 100_000.0;

/// Run the study: `seconds` of drive time at `overload` times the
/// per-tenant quota rate.
pub fn run(seconds: f64, overload: f64) -> GatewayStudy {
    let quota_rate = 150.0;
    let cfg = GatewayConfig {
        workers: 4,
        queue_capacity: 16,
        interactive_weight: 4,
        quota: QuotaConfig {
            rate_per_sec: quota_rate,
            burst: 10.0,
            max_tenants: 64,
        },
        ..GatewayConfig::default()
    };
    let gw = Gateway::start(Arc::new(TransposeService::new_k40c()), cfg);
    let mut server: ServerHandle =
        ttlg_serve::server::spawn(gw, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // Each tenant offers `overload * quota_rate` rps for `seconds`.
    let per_tenant = ((overload * quota_rate * seconds).ceil() as u64).max(1);
    let interval = Duration::from_secs_f64(1.0 / (overload * quota_rate));

    let t0 = Instant::now();
    let raw: Vec<(TenantOutcome, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = PLANS
            .iter()
            .map(|plan| {
                s.spawn(move || {
                    let mut c = HttpClient::connect(addr).expect("connect loopback");
                    let mut latencies_us: Vec<f64> = Vec::with_capacity(per_tenant as usize);
                    let (mut admitted, mut shed, mut errors) = (0u64, 0u64, 0u64);
                    let start = Instant::now();
                    for i in 0..per_tenant {
                        // Pace against the ideal schedule, not the last
                        // send, so a slow response doesn't shift every
                        // later send.
                        let due = start + interval * i as u32;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let sent = Instant::now();
                        match c.post_json(
                            "/v1/transpose",
                            &[
                                ("x-ttlg-tenant", plan.tenant),
                                ("x-ttlg-priority", plan.class),
                            ],
                            plan.body,
                        ) {
                            Ok(r) if r.status == 200 => {
                                admitted += 1;
                                latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                            }
                            Ok(r) if r.status == 429 => shed += 1,
                            _ => errors += 1,
                        }
                    }
                    (
                        TenantOutcome {
                            tenant: plan.tenant.to_string(),
                            class: plan.class.to_string(),
                            offered: per_tenant,
                            admitted,
                            shed,
                            errors,
                            p50_us: 0.0,
                            p95_us: 0.0,
                            p99_us: 0.0,
                        },
                        latencies_us,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant client"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let mut tenants = Vec::new();
    let mut class_latencies: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for (mut outcome, mut lat) in raw {
        outcome.p50_us = quantile_us(&mut lat, 0.50);
        outcome.p95_us = quantile_us(&mut lat, 0.95);
        outcome.p99_us = quantile_us(&mut lat, 0.99);
        class_latencies
            .entry(outcome.class.clone())
            .or_default()
            .extend_from_slice(&lat);
        tenants.push(outcome);
    }

    let mut classes = Vec::new();
    for class in ["interactive", "batch"] {
        let members: Vec<&TenantOutcome> = tenants.iter().filter(|t| t.class == class).collect();
        let admitted: u64 = members.iter().map(|t| t.admitted).sum();
        let shed: u64 = members.iter().map(|t| t.shed).sum();
        let min = members.iter().map(|t| t.admitted).min().unwrap_or(0);
        let max = members.iter().map(|t| t.admitted).max().unwrap_or(0);
        let mut lat = class_latencies.remove(class).unwrap_or_default();
        classes.push(ClassSummary {
            class: class.to_string(),
            admitted,
            shed,
            fairness: if max == 0 {
                0.0
            } else {
                min as f64 / max as f64
            },
            p50_us: quantile_us(&mut lat, 0.50),
            p95_us: quantile_us(&mut lat, 0.95),
            p99_us: quantile_us(&mut lat, 0.99),
        });
    }

    // Final scrape: the exporter must agree with what clients saw.
    let client_shed: u64 = tenants.iter().map(|t| t.shed).sum();
    let scraped_shed_total = {
        let mut c = HttpClient::connect(addr).expect("connect for scrape");
        let prom = c.get("/metrics").expect("scrape /metrics").body_text();
        prom.lines()
            .filter(|l| l.starts_with("ttlg_gateway_shed_total{"))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
            .sum::<f64>()
    };
    server.stop();

    let offered: u64 = tenants.iter().map(|t| t.offered).sum();
    let admitted: u64 = tenants.iter().map(|t| t.admitted).sum();
    let interactive_p99 = classes
        .iter()
        .find(|c| c.class == "interactive")
        .map(|c| c.p99_us)
        .unwrap_or(f64::NAN);
    GatewayStudy {
        overload,
        wall_s,
        throughput_rps: admitted as f64 / wall_s.max(1e-9),
        shed_rate: client_shed as f64 / offered.max(1) as f64,
        slo_target_us: SLO_TARGET_US,
        interactive_slo_met: interactive_p99.is_finite() && interactive_p99 <= SLO_TARGET_US,
        tenants,
        classes,
        scraped_shed_total,
        metrics_consistent: scraped_shed_total == client_shed as f64,
    }
}

impl GatewayStudy {
    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        writeln!(s, "== gateway loopback study ==").unwrap();
        writeln!(
            s,
            "overload {:.1}x  wall {:.2} s  throughput {:.0} req/s  shed rate {:.1}%",
            self.overload,
            self.wall_s,
            self.throughput_rps,
            self.shed_rate * 100.0
        )
        .unwrap();
        writeln!(
            s,
            "interactive p99 SLO {} us: {}",
            self.slo_target_us,
            if self.interactive_slo_met {
                "met"
            } else {
                "MISSED"
            }
        )
        .unwrap();
        writeln!(
            s,
            "metrics scrape: shed_total={} ({})",
            self.scraped_shed_total,
            if self.metrics_consistent {
                "consistent with clients"
            } else {
                "INCONSISTENT"
            }
        )
        .unwrap();
        for c in &self.classes {
            writeln!(
                s,
                "class {:<12} admitted {:>6}  shed {:>6}  fairness {:.2}  p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us",
                c.class, c.admitted, c.shed, c.fairness, c.p50_us, c.p95_us, c.p99_us
            )
            .unwrap();
        }
        for t in &self.tenants {
            writeln!(
                s,
                "  {:<8} ({:<11}) offered {:>6}  admitted {:>6}  shed {:>6}  errors {:>3}  p99 {:>8.0} us",
                t.tenant, t.class, t.offered, t.admitted, t.shed, t.errors, t.p99_us
            )
            .unwrap();
        }
        s
    }

    /// The `BENCH_gateway.json` artifact.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"gateway\",\n");
        s.push_str(&format!("  \"overload\": {},\n", json_f64(self.overload)));
        s.push_str(&format!("  \"wall_s\": {},\n", json_f64(self.wall_s)));
        s.push_str(&format!(
            "  \"throughput_rps\": {},\n",
            json_f64(self.throughput_rps)
        ));
        s.push_str(&format!("  \"shed_rate\": {},\n", json_f64(self.shed_rate)));
        s.push_str(&format!(
            "  \"slo\": {{\"target_us\": {}, \"interactive_met\": {}}},\n",
            json_f64(self.slo_target_us),
            self.interactive_slo_met
        ));
        s.push_str(&format!(
            "  \"metrics\": {{\"shed_total\": {}, \"consistent\": {}}},\n",
            json_f64(self.scraped_shed_total),
            self.metrics_consistent
        ));
        s.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"class\": \"{}\", \"admitted\": {}, \"shed\": {}, \"fairness\": {}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
                c.class,
                c.admitted,
                c.shed,
                json_f64(c.fairness),
                json_f64(c.p50_us),
                json_f64(c.p95_us),
                json_f64(c.p99_us),
                if i + 1 == self.classes.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"tenant\": \"{}\", \"class\": \"{}\", \"offered\": {}, \"admitted\": {}, \
                 \"shed\": {}, \"errors\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
                t.tenant,
                t.class,
                t.offered,
                t.admitted,
                t.shed,
                t.errors,
                json_f64(t.p50_us),
                json_f64(t.p95_us),
                json_f64(t.p99_us),
                if i + 1 == self.tenants.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile_us(&mut v, 0.5), 3.0);
        assert_eq!(quantile_us(&mut v, 0.99), 5.0);
        assert!(quantile_us(&mut [], 0.5).is_nan());
    }

    #[test]
    fn short_overloaded_run_sheds_and_stays_consistent() {
        // A fraction of a second at 2x overload is enough to exercise
        // every path: admission, shedding, fairness, and the scrape.
        let study = run(0.3, 2.0);
        let offered: u64 = study.tenants.iter().map(|t| t.offered).sum();
        let errors: u64 = study.tenants.iter().map(|t| t.errors).sum();
        assert!(offered > 0);
        assert_eq!(errors, 0, "no transport errors on loopback");
        assert!(study.shed_rate > 0.0, "2x overload must shed");
        assert!(study.shed_rate < 1.0, "but not everything");
        assert!(study.metrics_consistent, "exporter agrees with clients");
        assert!(study.interactive_slo_met, "interactive p99 within SLO");
        let json = study.to_json();
        assert!(json.contains("\"study\": \"gateway\""));
        assert!(json.contains("\"fairness\""));
        assert!(!study.render().is_empty());
    }
}
