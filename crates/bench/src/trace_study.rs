//! Tracing/alerting study: drive the gateway over loopback TCP with a
//! deliberately mis-calibrated prediction model and watch the
//! observability stack react end to end.
//!
//! Phase 1 serves a mixed-permutation workload through the full HTTP
//! path with the skewed model of [`crate::autotune_study`]; every
//! admitted request streams prediction residuals into the merged
//! snapshot, so polling `GET /v1/alerts` walks the `prediction-drift`
//! rule Inactive → Pending → Firing. A synchronous autotune pass then
//! warms measured-best plans, and phase 2 replays the workload until
//! the lifetime geo-mean error falls back under the rule threshold and
//! the alert resolves. Throughout, a deliberately tiny trace ring with
//! a fractional head-sampling rate exercises the sampling and drop
//! accounting: the study ends by fetching the slowest sampled trace
//! back over TCP and reading the drop counters the exporter merges.

use crate::autotune_study::skewed_models;
use crate::serve_study::json_f64;
use std::sync::Arc;
use ttlg::{TimePredictor, Transposer};
use ttlg_gpu_sim::DeviceConfig;
use ttlg_perfmodel::online::OnlineConfig;
use ttlg_perfmodel::{MeasurementSink, OnlinePredictor};
use ttlg_runtime::{AutotuneConfig, RuntimeConfig, TraceStoreConfig, TransposeService};
use ttlg_serve::json::Json;
use ttlg_serve::{client::HttpClient, Gateway, GatewayConfig, QuotaConfig};

/// Outcome of one tracing/alerting study run.
#[derive(Debug, Clone)]
pub struct TraceStudy {
    /// Distinct permutations (= distinct plan keys) in the workload.
    pub distinct_perms: usize,
    /// Passes over those permutations in phase 1.
    pub rounds: usize,
    /// Requests sent while the skewed model was serving.
    pub requests_phase1: u64,
    /// Requests replayed after the autotune pass.
    pub requests_phase2: u64,
    /// Geo-mean prediction error when the drift alert was checked.
    pub geo_error_before: f64,
    /// Lifetime geo-mean prediction error at the end of phase 2.
    pub geo_error_after: f64,
    /// The `prediction-drift` rule reached Firing in phase 1.
    pub drift_fired: bool,
    /// Alert-engine evaluations consumed when firing was observed.
    pub drift_fired_after_evals: u64,
    /// The rule returned to Inactive after the autotune pass.
    pub drift_resolved: bool,
    /// Total alert-engine evaluations over the whole study.
    pub alert_evaluations: u64,
    /// Requests offered to the trace store.
    pub offered_traces: u64,
    /// Requests retained (head-sampled or tail-forced).
    pub sampled_traces: u64,
    /// Requests the head sampler declined.
    pub unsampled_traces: u64,
    /// Sampled traces the ring evicted before they could be read.
    pub dropped_traces: u64,
    /// Traces resident in the ring at the end.
    pub resident_traces: usize,
    /// Span count of the slowest resident trace.
    pub slowest_trace_spans: usize,
    /// End-to-end duration of the slowest resident trace, µs.
    pub slowest_trace_total_us: f64,
    /// `GET /v1/traces?slowest=1` + `GET /v1/trace/:id` round-tripped
    /// the full span tree over TCP.
    pub trace_fetch_ok: bool,
    /// Snapshots ingested into the metrics history store (one per
    /// drive pass).
    pub history_scrapes: u64,
    /// Points retained across the store's series at the end.
    pub history_points: u64,
    /// Worst in-window per-schema geo-mean error read back from the
    /// store via `max_over_time(ttlg_prediction_geo_mean_error)` after
    /// phase 1 — the windowed signal the alert engine evaluates, which
    /// a two-snapshot diff cannot reconstruct once the skew is diluted.
    pub windowed_drift_value: f64,
}

/// Tenants the drive loop rotates through.
const TENANTS: [&str; 3] = ["acme", "globex", "initech"];

/// Upper bound on phase-2 replay passes while waiting for the drift
/// rule to resolve. The rule watches the *worst* per-schema lifetime
/// geo-mean, and the skew can push a single schema's phase-1 error to
/// 10^3-10^4x; diluting that below the 1.5x threshold takes dozens of
/// well-predicted passes. Requests are cache hits by then, so passes
/// are cheap; the loop breaks as soon as the rule goes inactive.
const MAX_REPLAY_PASSES: usize = 200;

/// All rank-4 permutations in lexicographic order, first `distinct`.
fn perm_bodies(distinct: usize) -> Vec<String> {
    assert!((1..=24).contains(&distinct), "rank-4 has 24 permutations");
    let mut bodies = Vec::new();
    for a in 0..4usize {
        for b in 0..4usize {
            for c in 0..4usize {
                for d in 0..4usize {
                    let p = [a, b, c, d];
                    let mut seen = [false; 4];
                    p.iter().for_each(|&i| seen[i] = true);
                    if seen.iter().all(|&s| s) {
                        bodies.push(format!(
                            "{{\"extents\":[6,5,4,3],\"perm\":[{},{},{},{}]}}",
                            p[0], p[1], p[2], p[3]
                        ));
                    }
                }
            }
        }
    }
    bodies.truncate(distinct);
    bodies
}

/// One pass over the workload; returns requests sent.
fn drive_pass(client: &mut HttpClient, bodies: &[String]) -> u64 {
    let mut sent = 0u64;
    for (i, body) in bodies.iter().enumerate() {
        let r = client
            .post_json(
                "/v1/transpose",
                &[("x-ttlg-tenant", TENANTS[i % TENANTS.len()])],
                body,
            )
            .expect("study request");
        assert!(
            r.status == 200 || r.status == 429,
            "unexpected status {}: {}",
            r.status,
            r.body_text()
        );
        sent += 1;
    }
    sent
}

/// Current state of the `prediction-drift` rule as reported by
/// `GET /v1/alerts` (each call advances the engine one evaluation).
fn drift_state(client: &mut HttpClient) -> String {
    let body = client.get("/v1/alerts").expect("alerts").body_text();
    let doc = ttlg_serve::json::parse(body.as_bytes()).expect("alerts json");
    if let Some(Json::Arr(rules)) = doc.get("rules") {
        for rule in rules {
            if rule.get("rule").and_then(|v| v.as_str()) == Some("prediction-drift") {
                return rule
                    .get("state")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string();
            }
        }
    }
    "?".to_string()
}

/// Run the study: phase 1 with the skewed model until the drift rule
/// fires, one synchronous autotune pass, phase 2 until it resolves.
pub fn run(distinct: usize, rounds: usize) -> TraceStudy {
    let device = DeviceConfig::k40c();
    let online = Arc::new(OnlinePredictor::from_pair(
        &skewed_models(),
        device.clone(),
        OnlineConfig {
            forgetting: 1.0,
            min_points: 8,
            prior_strength: 1e-9,
        },
    ));
    let transposer =
        Transposer::with_predictor(device, Arc::clone(&online) as Arc<dyn TimePredictor>);
    let cfg = RuntimeConfig {
        autotune: AutotuneConfig {
            enabled: true,
            hot_threshold: 1,
            topk: 4,
            budget_per_key: 8,
            threads: 1,
            poll_interval_ms: 1,
            ..AutotuneConfig::default()
        },
        ..RuntimeConfig::default()
    };
    let svc = Arc::new(
        TransposeService::<f64>::with_config(transposer, cfg)
            .with_measurement_sink(Arc::clone(&online) as Arc<dyn MeasurementSink>),
    );
    let gw_cfg = GatewayConfig {
        workers: 2,
        queue_capacity: 32,
        quota: QuotaConfig {
            rate_per_sec: 1e9,
            burst: 1e9,
            max_tenants: 16,
        },
        // A deliberately tiny ring with fractional head sampling so
        // drop accounting has something to count.
        trace: TraceStoreConfig {
            capacity: 8,
            sample_rate: 0.5,
        },
        ..GatewayConfig::default()
    };
    let gw = Gateway::start(Arc::clone(&svc), gw_cfg);
    let mut server = ttlg_serve::server::spawn(Arc::clone(&gw), "127.0.0.1:0").expect("bind");
    let mut client = HttpClient::connect(server.addr()).expect("connect loopback");

    let bodies = perm_bodies(distinct);

    // Phase 1: serve with the skewed model, then poll the alert
    // endpoint until the drift rule walks Pending -> Firing.
    let mut requests_phase1 = 0u64;
    for _ in 0..rounds {
        requests_phase1 += drive_pass(&mut client, &bodies);
        // One history scrape per pass: the store sees the drift build
        // up sample by sample instead of as one opaque total.
        svc.scrape_history_once();
    }
    let geo_before = svc.metrics().prediction().overall_geo_mean_error();
    // Read the drift back out of the history store the way the
    // windowed alert path does: worst per-schema geo-mean error across
    // every retained scrape.
    let windowed_drift_value = svc
        .history()
        .last_ingest_ms()
        .and_then(|end| {
            ttlg_runtime::eval_range(
                svc.history(),
                "max_over_time(ttlg_prediction_geo_mean_error)",
                end,
                600_000,
                1_000,
            )
            .ok()
        })
        .map(|r| {
            r.series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(_, v)| v))
                .filter(|v| v.is_finite())
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(0.0);
    let mut drift_fired = false;
    for _ in 0..6 {
        if drift_state(&mut client) == "firing" {
            drift_fired = true;
            break;
        }
    }
    let drift_fired_after_evals = gw.alerts().evaluations();

    // One synchronous tuning pass: every key is already hot.
    while svc.autotune_once() > 0 {}

    // Phase 2: replay until the lifetime geo-mean falls back under the
    // rule threshold and two consecutive clean evaluations resolve it.
    let mut requests_phase2 = 0u64;
    let mut drift_resolved = false;
    for _ in 0..MAX_REPLAY_PASSES {
        requests_phase2 += drive_pass(&mut client, &bodies);
        svc.scrape_history_once();
        if drift_state(&mut client) == "inactive" {
            drift_resolved = true;
            break;
        }
    }
    let geo_after = svc.metrics().prediction().overall_geo_mean_error();

    // Fetch the slowest sampled trace back over the wire — the same
    // path an operator's tooling would take.
    let trace_fetch_ok = (|| {
        let list = client.get("/v1/traces?slowest=1").ok()?;
        let doc = ttlg_serve::json::parse(&list.body).ok()?;
        let traces = match doc.get("traces") {
            Some(Json::Arr(t)) if !t.is_empty() => t,
            _ => return None,
        };
        let id = traces[0].get("trace_id")?.as_str()?.to_string();
        let one = client.get(&format!("/v1/trace/{id}")).ok()?;
        if one.status != 200 {
            return None;
        }
        let tree = ttlg_serve::json::parse(&one.body).ok()?;
        (tree.get("root")?.get("name")?.as_str()? == "request").then_some(())
    })()
    .is_some();

    let store = gw.trace_store();
    let slowest = store.slowest(1);
    let (slowest_spans, slowest_us) = slowest
        .first()
        .map(|t| (t.root.span_count(), t.total_ns as f64 / 1e3))
        .unwrap_or((0, 0.0));
    let study = TraceStudy {
        distinct_perms: distinct,
        rounds,
        requests_phase1,
        requests_phase2,
        geo_error_before: geo_before,
        geo_error_after: geo_after,
        drift_fired,
        drift_fired_after_evals,
        drift_resolved,
        alert_evaluations: gw.alerts().evaluations(),
        offered_traces: store.offered(),
        sampled_traces: store.sampled(),
        unsampled_traces: store.unsampled(),
        dropped_traces: store.evicted(),
        resident_traces: store.resident(),
        slowest_trace_spans: slowest_spans,
        slowest_trace_total_us: slowest_us,
        trace_fetch_ok,
        history_scrapes: svc.history().scrapes(),
        history_points: svc.history().point_count() as u64,
        windowed_drift_value,
    };
    server.stop();
    study
}

impl TraceStudy {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("== tracing & drift-alert study ==\n");
        s.push_str(&format!(
            "workload: {} distinct permutations, {} rounds skewed ({} reqs), {} reqs replayed tuned\n",
            self.distinct_perms, self.rounds, self.requests_phase1, self.requests_phase2
        ));
        s.push_str(&format!(
            "prediction geo-mean error: {:.3}x skewed -> {:.3}x after autotune\n",
            self.geo_error_before, self.geo_error_after
        ));
        s.push_str(&format!(
            "prediction-drift rule: fired={} (after {} evaluations), resolved={} ({} evaluations total)\n",
            self.drift_fired,
            self.drift_fired_after_evals,
            self.drift_resolved,
            self.alert_evaluations
        ));
        s.push_str(&format!(
            "trace store: {} offered, {} sampled, {} unsampled, {} dropped, {} resident\n",
            self.offered_traces,
            self.sampled_traces,
            self.unsampled_traces,
            self.dropped_traces,
            self.resident_traces
        ));
        s.push_str(&format!(
            "slowest sampled trace: {} spans, {:.2} us end-to-end (fetched over TCP: {})\n",
            self.slowest_trace_spans, self.slowest_trace_total_us, self.trace_fetch_ok
        ));
        s.push_str(&format!(
            "metrics history: {} scrapes, {} points; windowed drift (max over history) {:.3}x\n",
            self.history_scrapes, self.history_points, self.windowed_drift_value
        ));
        s
    }

    /// Serialize as a machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"study\": \"trace\",\n");
        s.push_str(&format!("  \"distinct_perms\": {},\n", self.distinct_perms));
        s.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        s.push_str(&format!(
            "  \"requests_phase1\": {},\n",
            self.requests_phase1
        ));
        s.push_str(&format!(
            "  \"requests_phase2\": {},\n",
            self.requests_phase2
        ));
        s.push_str(&format!(
            "  \"geo_error_before\": {},\n",
            json_f64(self.geo_error_before)
        ));
        s.push_str(&format!(
            "  \"geo_error_after\": {},\n",
            json_f64(self.geo_error_after)
        ));
        s.push_str(&format!("  \"drift_fired\": {},\n", self.drift_fired));
        s.push_str(&format!(
            "  \"drift_fired_after_evals\": {},\n",
            self.drift_fired_after_evals
        ));
        s.push_str(&format!("  \"drift_resolved\": {},\n", self.drift_resolved));
        s.push_str(&format!(
            "  \"alert_evaluations\": {},\n",
            self.alert_evaluations
        ));
        s.push_str(&format!("  \"offered_traces\": {},\n", self.offered_traces));
        s.push_str(&format!("  \"sampled_traces\": {},\n", self.sampled_traces));
        s.push_str(&format!(
            "  \"unsampled_traces\": {},\n",
            self.unsampled_traces
        ));
        s.push_str(&format!("  \"dropped_traces\": {},\n", self.dropped_traces));
        s.push_str(&format!(
            "  \"resident_traces\": {},\n",
            self.resident_traces
        ));
        s.push_str(&format!(
            "  \"slowest_trace_spans\": {},\n",
            self.slowest_trace_spans
        ));
        s.push_str(&format!(
            "  \"slowest_trace_total_us\": {},\n",
            json_f64(self.slowest_trace_total_us)
        ));
        s.push_str(&format!("  \"trace_fetch_ok\": {},\n", self.trace_fetch_ok));
        s.push_str(&format!(
            "  \"history_scrapes\": {},\n",
            self.history_scrapes
        ));
        s.push_str(&format!("  \"history_points\": {},\n", self.history_points));
        s.push_str(&format!(
            "  \"windowed_drift_value\": {}\n",
            json_f64(self.windowed_drift_value)
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_alert_fires_under_skew_and_resolves_after_autotune() {
        let study = run(6, 2);
        assert_eq!(study.requests_phase1, 12);
        // Acceptance: the drift rule fires under the skewed model and
        // resolves once autotuned plans bring predictions back in line.
        assert!(study.drift_fired, "{study:?}");
        assert!(study.drift_resolved, "{study:?}");
        assert!(
            study.geo_error_after < study.geo_error_before,
            "replay must pull the lifetime error down: {study:?}"
        );
        // Acceptance: sampling and drop accounting are live.
        assert!(study.sampled_traces > 0, "{study:?}");
        assert!(study.unsampled_traces > 0, "{study:?}");
        assert!(
            study.dropped_traces > 0,
            "an 8-deep ring must evict under this load: {study:?}"
        );
        assert!(study.trace_fetch_ok, "{study:?}");
        assert!(study.slowest_trace_spans >= 4, "{study:?}");
        // Acceptance: the history store consumed one scrape per pass
        // and the windowed drift signal read back from it exceeds the
        // alert threshold (1.5x) — the skewed phase stays visible in
        // the window even after phase-2 replay dilutes the lifetime
        // geo-mean, which the two-snapshot path cannot see.
        assert!(study.history_scrapes >= study.rounds as u64, "{study:?}");
        assert!(study.history_points > 0, "{study:?}");
        assert!(
            study.windowed_drift_value > 1.5,
            "windowed drift from the store must exceed the rule threshold: {study:?}"
        );

        let json = study.to_json();
        assert!(json.contains("\"drift_fired\": true"));
        assert!(json.contains("\"drift_resolved\": true"));
        assert!(json.contains("\"dropped_traces\""));
        let rendered = study.render();
        assert!(rendered.contains("prediction-drift rule"));
        assert!(rendered.contains("trace store"));
    }

    #[test]
    fn perm_bodies_are_distinct_rank4_permutations() {
        let bodies = perm_bodies(24);
        assert_eq!(bodies.len(), 24);
        let unique: std::collections::BTreeSet<&String> = bodies.iter().collect();
        assert_eq!(unique.len(), 24);
        assert!(bodies[0].contains("\"extents\":[6,5,4,3]"));
    }
}
