//! Tabular reporting: aligned text tables plus CSV export.

use std::io::Write as _;
use std::path::Path;

/// A simple column-labelled table of f64/text cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure/table id + description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut s = format!("== {} ==\n", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        s.push_str(&header.join("  "));
        s.push('\n');
        s.push_str(&"-".repeat(header.join("  ").len()));
        s.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            s.push_str(&line.join("  "));
            s.push('\n');
        }
        s
    }

    /// Write as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.columns.join(","))?;
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            writeln!(f, "{}", escaped.join(","))?;
        }
        Ok(())
    }
}

/// Format a bandwidth cell.
pub fn bw(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a time-in-ns cell as microseconds.
pub fn us(v_ns: f64) -> String {
    format!("{:.2}", v_ns / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.0".into()]);
        t.push_row(vec!["longer-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip_basics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "2".into()]);
        let dir = std::env::temp_dir().join("ttlg-bench-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"x,y\",2"));
    }

    #[test]
    fn formatters() {
        assert_eq!(bw(123.456), "123.5");
        assert_eq!(us(1500.0), "1.50");
    }
}
